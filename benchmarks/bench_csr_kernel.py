"""CSR bitset-MSBFS kernel vs. legacy per-source BFS (batched set reachability).

The paper's per-partition work is a *batched* multi-source traversal; PR 3
replaced the dict/set walk with a compressed-sparse-row snapshot
(:mod:`repro.graph.csr`) plus an integer-bitset frontier kernel
(:mod:`repro.reachability.bitset_msbfs`).  This benchmark pits three
evaluations of the same ``W x W`` set-reachability query (``W >= 64``) on the
Fig-5-sized dataset analogues against each other:

* ``per-source`` — the legacy reference path: one early-terminating BFS per
  source over the ``dict``/``set`` adjacency
  (:func:`repro.graph.traversal.multi_source_reachability`);
* ``dict-msbfs`` — the pre-PR-3 shared-frontier MSBFS with per-vertex dict
  bitsets (re-implemented here verbatim as the historical baseline);
* ``csr-kernel`` — the CSR bitset kernel, measured both amortised (snapshot
  already cached, the steady-state serving case) and cold (snapshot build
  included, the first-query-after-update case).

Asserted: the kernel answers identically and is **>= 3x** faster than the
legacy per-source path on the batched query (the ISSUE-3 acceptance bar);
the printed table records the exact factors for the BENCH trajectory.
"""

import time
from typing import Dict, Set

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.graph.traversal import multi_source_reachability
from repro.reachability import bitset_msbfs

DATASETS = ["livej68", "twitter"]
NUM_SOURCES = 96  # the acceptance bar asks for W >= 64
NUM_TARGETS = 96
REPEATS = 5  # best-of-N to shave scheduler noise off the asserted ratio
MIN_SPEEDUP = 3.0


def _legacy_dict_msbfs(graph, sources, targets) -> Dict[int, Set[int]]:
    """The pre-PR-3 MultiSourceBFS batch: dict-of-bitsets over DiGraph sets."""
    target_set = set(targets)
    result: Dict[int, Set[int]] = {source: set() for source in sources}
    batch = [source for source in sources if graph.has_vertex(source)]
    bit_of = {source: 1 << position for position, source in enumerate(batch)}
    seen: Dict[int, int] = {}
    frontier: Dict[int, int] = {}
    for source in batch:
        seen[source] = seen.get(source, 0) | bit_of[source]
        frontier[source] = frontier.get(source, 0) | bit_of[source]
    while frontier:
        next_frontier: Dict[int, int] = {}
        for vertex, bits in frontier.items():
            for succ in graph.successors(vertex):
                new_bits = bits & ~seen.get(succ, 0)
                if new_bits:
                    seen[succ] = seen.get(succ, 0) | new_bits
                    next_frontier[succ] = next_frontier.get(succ, 0) | new_bits
        frontier = next_frontier
    for position, source in enumerate(batch):
        bit = 1 << position
        result[source] = {v for v in target_set if seen.get(v, 0) & bit}
    return result


def _best_of(repeats, fn):
    best, answer = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        answer = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, answer


@pytest.mark.parametrize("name", DATASETS)
def test_csr_kernel_speedup(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, NUM_SOURCES, NUM_TARGETS, seed=BENCH_SEED)

    def run_all():
        legacy_s, legacy_answer = _best_of(
            REPEATS, lambda: multi_source_reachability(graph, sources, targets)
        )
        dict_s, dict_answer = _best_of(
            REPEATS, lambda: _legacy_dict_msbfs(graph, sources, targets)
        )

        def cold_kernel():
            graph._invalidate_csr()
            return bitset_msbfs.set_reachability(graph.csr(), sources, targets)

        cold_s, _ = _best_of(REPEATS, cold_kernel)
        csr = graph.csr()  # steady state: snapshot cached until next update
        kernel_s, kernel_answer = _best_of(
            REPEATS, lambda: bitset_msbfs.set_reachability(csr, sources, targets)
        )
        assert kernel_answer == legacy_answer == dict_answer
        return legacy_s, dict_s, cold_s, kernel_s

    legacy_s, dict_s, cold_s, kernel_s = run_once(benchmark, run_all)

    rows = [
        {"path": "per-source BFS (legacy)", "seconds": round(legacy_s, 5), "speedup": "1.0x"},
        {
            "path": "dict MSBFS (pre-PR3)",
            "seconds": round(dict_s, 5),
            "speedup": f"{legacy_s / dict_s:.1f}x",
        },
        {
            "path": "csr kernel (cold: +snapshot build)",
            "seconds": round(cold_s, 5),
            "speedup": f"{legacy_s / cold_s:.1f}x",
        },
        {
            "path": "csr kernel (amortised)",
            "seconds": round(kernel_s, 5),
            "speedup": f"{legacy_s / kernel_s:.1f}x",
        },
    ]
    print()
    print(
        format_table(
            rows,
            title=(
                f"CSR bitset kernel — {name} "
                f"(|S|=|T|={NUM_SOURCES}, |V|={graph.num_vertices}, "
                f"|E|={graph.num_edges})"
            ),
        )
    )

    # The ISSUE-3 acceptance bar: >= 3x over the legacy per-source path for a
    # W >= 64 batched set-reachability query on a Fig-5-sized graph.  The
    # kernel-vs-dict-MSBFS ratio is only ~1.15x, too tight to gate on without
    # flaking CI — the printed table records it instead.
    assert legacy_s / kernel_s >= MIN_SPEEDUP, (
        f"CSR kernel only {legacy_s / kernel_s:.2f}x faster than per-source BFS"
    )
