"""Figure 5 (b, f, j, n) — Communication cost versus number of slaves.

Paper setup: same graphs and queries as the strong-scaling plots; the y-axis
is the total message volume (KB) exchanged while answering one 10x10 query.

Expected shape (asserted): DSR exchanges (often orders of magnitude) less data
than vertex-centric Giraph, and the equivalence-set optimisation keeps
Giraph++wEq at or below plain Giraph++.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import random_query

DATASETS = ["livej68", "freebase", "twitter", "lubm"]
SLAVE_COUNTS = [2, 4, 6, 8]
APPROACHES = ["dsr", "giraph++weq", "giraph++", "giraph"]


@pytest.mark.parametrize("name", DATASETS)
def test_communication_cost(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)

    def sweep():
        series = {approach: [] for approach in APPROACHES}
        for slaves in SLAVE_COUNTS:
            runner = ExperimentRunner(
                graph, num_partitions=slaves, local_index="msbfs", seed=BENCH_SEED
            )
            results = {
                r.approach: r for r in runner.run(APPROACHES, sources, targets)
            }
            for approach in APPROACHES:
                series[approach].append(round(results[approach].bytes_sent / 1024, 3))
            # DSR never needs more than its single round of handle messages
            # (a few bytes per reachable source/handle pair), whereas Giraph's
            # volume grows with the traversal.  On very sparse instances both
            # are tiny, so compare against a small floor.
            assert (
                results["dsr"].bytes_sent <= results["giraph"].bytes_sent
                or results["dsr"].bytes_sent <= 2048
            )
            assert results["giraph++weq"].messages <= results["giraph++"].messages
        return series

    series = run_once(benchmark, sweep)
    print()
    print(
        format_series(
            series,
            x_values=SLAVE_COUNTS,
            x_label="#slaves",
            title=f"Figure 5 communication cost (KB) — {name}",
        )
    )
