"""Bitset-native query pipeline — packed rows vs. set materialisation.

End-to-end ``engine.run()`` latency on the Figure-5 query-size workload
(LiveJournal analogue, random ``|S| = |T|`` samples), evaluated twice over
the *same* engine and index: once with ``representation="sets"`` (the
original ``Set[int]`` pipeline) and once with ``representation="bits"``
(packed rows from the kernel through the compound-graph expansion to the
cross-partition wire).  Exact reachable-pair parity is asserted for every
query size, plus ground truth on the smallest size.

Expected shape (asserted): the bits pipeline is at least
``REPRO_BENCH_PIPELINE_MIN_SPEEDUP``x faster over the whole sweep (default
2x; CI smoke runs relax this).  The measured numbers are recorded to
``BENCH_query_latency.json`` at the repository root — the first entry of the
benchmark trajectory described in ``docs/BENCHMARKS.md``.

Environment knobs (for CI smoke tiers):

* ``REPRO_BENCH_PIPELINE_SCALE`` — dataset scale (default 1.0);
* ``REPRO_BENCH_PIPELINE_SIZES`` — comma-separated ``|S|=|T|`` sizes
  (default ``100,200,400``);
* ``REPRO_BENCH_PIPELINE_MIN_SPEEDUP`` — asserted floor (default 2.0);
* ``REPRO_BENCH_TRACE_OVERHEAD_MAX`` — allowed trace-off/baseline latency
  ratio in :func:`test_tracing_overhead` (default 1.05; CI smoke relaxes it).
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series, write_bench_json
from repro.bench.workloads import query_size_sweep
from repro.graph.traversal import reachable_pairs

REPO_ROOT = Path(__file__).resolve().parent.parent
DATASET = "livej68"
NUM_SLAVES = 5
ROUNDS = 3

SCALE = float(os.environ.get("REPRO_BENCH_PIPELINE_SCALE", "1.0"))
SIZES = [
    int(size)
    for size in os.environ.get("REPRO_BENCH_PIPELINE_SIZES", "100,200,400").split(",")
]
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PIPELINE_MIN_SPEEDUP", "2.0"))


def test_query_pipeline_bits_vs_sets(benchmark):
    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    engine = open_engine(
        graph,
        DSRConfig(num_partitions=NUM_SLAVES, local_index="msbfs", seed=BENCH_SEED),
    )
    sweep = query_size_sweep(graph, SIZES, seed=BENCH_SEED)
    queries = {
        representation: [
            (size, ReachQuery(tuple(sources), tuple(targets), representation=representation))
            for size, sources, targets in sweep
        ]
        for representation in ("sets", "bits")
    }

    def run_query(query):
        start = time.perf_counter()
        result = engine.run(query)
        return time.perf_counter() - start, result.pairs

    def measure():
        # Warm both paths (CSR snapshots, handle masks, member masks).
        for representation in ("sets", "bits"):
            for _, query in queries[representation]:
                run_query(query)
        timings = {"sets": [], "bits": []}
        answers = {"sets": [], "bits": []}
        for representation in ("sets", "bits"):
            for _, query in queries[representation]:
                best = float("inf")
                pairs = None
                for _ in range(ROUNDS):
                    seconds, pairs = run_query(query)
                    best = min(best, seconds)
                timings[representation].append(best)
                answers[representation].append(pairs)
        return timings, answers

    timings, answers = run_once(benchmark, measure)

    # Exact parity at every size; ground truth on the smallest one.
    for index, (size, _, _) in enumerate(sweep):
        assert answers["bits"][index] == answers["sets"][index], (
            f"bits/sets answers diverge at {size}x{size}"
        )
    _, sources, targets = sweep[0]
    assert answers["bits"][0] == reachable_pairs(graph, sources, targets)

    set_seconds = sum(timings["sets"])
    bits_seconds = sum(timings["bits"])
    speedup = set_seconds / bits_seconds if bits_seconds else float("inf")

    print()
    print(
        format_series(
            {
                "sets_ms": [round(t * 1000, 3) for t in timings["sets"]],
                "bits_ms": [round(t * 1000, 3) for t in timings["bits"]],
                "speedup": [
                    round(s / b, 2) if b else float("inf")
                    for s, b in zip(timings["sets"], timings["bits"])
                ],
            },
            x_values=[f"{size}x{size}" for size in SIZES],
            x_label="|S|x|T|",
            title=f"Query pipeline bits vs sets — {DATASET} (scale {SCALE})",
        )
    )
    print(f"sweep: sets {set_seconds*1000:.1f}ms  bits {bits_seconds*1000:.1f}ms  "
          f"speedup {speedup:.2f}x (floor {MIN_SPEEDUP}x)")

    write_bench_json(
        "query_latency",
        {
            "dataset": DATASET,
            "scale": SCALE,
            "num_slaves": NUM_SLAVES,
            "sizes": SIZES,
            "set_seconds": round(set_seconds, 6),
            "bits_seconds": round(bits_seconds, 6),
            "speedup": round(speedup, 3),
            "per_size": [
                {
                    "size": size,
                    "set_seconds": round(timings["sets"][index], 6),
                    "bits_seconds": round(timings["bits"][index], 6),
                    "pairs": len(answers["bits"][index]),
                }
                for index, size in enumerate(SIZES)
            ],
        },
        directory=REPO_ROOT,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"bits pipeline speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"(sets {set_seconds:.4f}s, bits {bits_seconds:.4f}s)"
    )


TRACE_OVERHEAD_MAX = float(os.environ.get("REPRO_BENCH_TRACE_OVERHEAD_MAX", "1.05"))
OVERHEAD_PASSES = 8


def test_tracing_overhead(benchmark):
    """Disabled tracing must be free: trace-off latency stays within
    ``REPRO_BENCH_TRACE_OVERHEAD_MAX`` of the recorded pre-instrumentation
    baseline in ``BENCH_query_latency.json`` (the observability layer's
    hot-path cost is one flag check per recording point).  Trace-on latency
    is measured and printed for inspection, not asserted — collecting spans
    is allowed to cost something.

    Re-record the baseline by running :func:`test_query_pipeline_bits_vs_sets`
    on this machine if the hardware changed since it was written.
    """
    baseline_path = REPO_ROOT / "BENCH_query_latency.json"
    if not baseline_path.exists():
        pytest.skip("no recorded BENCH_query_latency.json baseline")
    baseline = json.loads(baseline_path.read_text())["data"]
    if baseline.get("sizes") != SIZES or baseline.get("scale") != SCALE:
        pytest.skip(
            "baseline was recorded for a different workload shape "
            f"(sizes {baseline.get('sizes')} scale {baseline.get('scale')})"
        )

    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    engine = open_engine(
        graph,
        DSRConfig(num_partitions=NUM_SLAVES, local_index="msbfs", seed=BENCH_SEED),
    )
    sweep = query_size_sweep(graph, SIZES, seed=BENCH_SEED)
    workload = {
        traced: [
            ReachQuery(
                tuple(sources), tuple(targets), representation="bits", trace=traced
            )
            for _, sources, targets in sweep
        ]
        for traced in (False, True)
    }

    def sweep_pass(traced):
        total = 0.0
        for query in workload[traced]:
            best = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                engine.run(query)
                best = min(best, time.perf_counter() - start)
            total += best
        return total

    def measure():
        for traced in (False, True):  # warm both paths
            for query in workload[traced]:
                engine.run(query)
        # The sweep total swings ~15% run-to-run on shared hardware, so a
        # single pass cannot support a 5% cross-session assertion.  Seek the
        # floor instead: repeat full passes, keep the per-mode minimum, and
        # stop early once the trace-off floor is inside the tolerance.
        timings = {False: float("inf"), True: float("inf")}
        for _ in range(OVERHEAD_PASSES):
            for traced in (False, True):
                timings[traced] = min(timings[traced], sweep_pass(traced))
            if timings[False] <= baseline["bits_seconds"] * TRACE_OVERHEAD_MAX:
                break
        return timings

    timings = run_once(benchmark, measure)
    baseline_seconds = baseline["bits_seconds"]
    off_ratio = timings[False] / baseline_seconds if baseline_seconds else 1.0
    on_ratio = timings[True] / timings[False] if timings[False] else 1.0

    print()
    print(
        f"tracing overhead — baseline {baseline_seconds*1000:.1f}ms, "
        f"trace-off {timings[False]*1000:.1f}ms ({off_ratio:.3f}x, "
        f"max {TRACE_OVERHEAD_MAX}x), trace-on {timings[True]*1000:.1f}ms "
        f"({on_ratio:.3f}x of trace-off)"
    )

    assert off_ratio <= TRACE_OVERHEAD_MAX, (
        f"trace-off run is {off_ratio:.3f}x the recorded baseline "
        f"(allowed {TRACE_OVERHEAD_MAX}x) — instrumentation leaked onto the "
        f"disabled hot path, or the baseline needs re-recording"
    )
