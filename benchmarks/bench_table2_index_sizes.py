"""Table 2 — Index sizes for DSR variants.

Paper columns: per-slave compound-graph size before ("Original") and after
("DAG") SCC condensation, total byte size, and the dependency-graph sizes that
DSR-Fan (one graph per query) and DSR-Naïve (one graph per pair) build.

Expected shape (asserted): SCC condensation shrinks the compound graphs of
highly connected graphs (twitter/livej analogues) far more than of the almost
acyclic LUBM analogue, and the dynamic dependency graphs of DSR-Fan are built
per query rather than precomputed.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.core.fan import DSRFan
from repro.core.index import DSRIndex
from repro.core.naive import DSRNaive
from repro.partition.partition import make_partitioning

DATASETS = ["amazon", "berkstan", "google", "notredame", "stanford", "livej20",
            "livej68", "twitter", "freebase", "lubm"]
NUM_SLAVES = 5

_rows = []


def _setting(name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    partitioning = make_partitioning(graph, NUM_SLAVES, strategy="metis", seed=BENCH_SEED)
    return graph, partitioning


@pytest.mark.parametrize("name", DATASETS)
def test_dsr_compound_graph_sizes(benchmark, name):
    """Build the DSR index and record compound-graph sizes (paper: DSR columns)."""
    graph, partitioning = _setting(name)

    def build():
        index = DSRIndex(partitioning, use_equivalence=True, local_strategy="dfs")
        index.build()
        return index

    index = run_once(benchmark, build)
    report = index.build_report
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)
    fan = DSRFan(partitioning)
    fan.query(sources, targets)
    naive = DSRNaive(partitioning)
    naive.query(sources[:3], targets[:3])

    row = {
        "graph": name,
        "original_edges": report.max_original_edges,
        "dag_edges": report.max_dag_edges,
        "size_kb": round(report.total_bytes / 1024, 1),
        "fan_dep_edges": fan.last_dependency_edges,
        "naive_avg_dep_edges": round(naive.last_average_dependency_edges, 1),
    }
    _rows.append(row)
    print()
    print(format_table([row], title=f"Table 2 row — {name}"))

    # Shape assertions: condensation never grows the graph, and the dynamic
    # dependency graph is non-trivial for every query.
    assert report.max_dag_edges <= report.max_original_edges
    assert fan.last_dependency_edges > 0


def test_condensation_strongest_on_social_graphs(benchmark):
    """Twitter-like graphs condense much more than the LUBM-like analogue."""
    ratios = {}
    for name in ("twitter", "lubm"):
        _, partitioning = _setting(name)
        index = DSRIndex(partitioning, use_equivalence=True)
        index.build()
        report = index.build_report
        ratios[name] = report.max_dag_edges / max(1, report.max_original_edges)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\nTable 2 condensation ratio (DAG/original): {ratios}")
    assert ratios["twitter"] < ratios["lubm"]
