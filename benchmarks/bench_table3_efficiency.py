"""Table 3 — Efficiency evaluation (indexing and query times).

Paper setup: 6 compute nodes (5 slaves + 1 master), 10 random sources and 10
random targets per graph (1000x1000 for LUBM, scaled to 100x100 here), and the
approaches DSR, Giraph++, Giraph++wEq, Giraph, DSR-Fan and DSR-Naïve.

Expected shape (asserted): DSR's one-round indexed evaluation answers the
query faster than the iterative Giraph variants and than the per-query
dependency-graph baselines on every graph.
"""

import time

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import random_query

SMALL = ["amazon", "berkstan", "google", "notredame", "stanford", "livej20"]
LARGE = ["livej68", "freebase", "twitter", "lubm"]
NUM_SLAVES = 5

# DSR-Naïve is only run on the small graphs (the paper marks it "n/a" beyond).
SMALL_APPROACHES = ["dsr", "giraph++", "giraph++weq", "giraph", "dsr-fan", "dsr-naive"]
LARGE_APPROACHES = ["dsr", "giraph++", "giraph++weq", "giraph"]


def _run_dataset(name, approaches, query_size):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    runner = ExperimentRunner(
        graph, num_partitions=NUM_SLAVES, local_index="msbfs", seed=BENCH_SEED
    )
    sources, targets = random_query(graph, query_size, query_size, seed=BENCH_SEED)
    results = runner.run(approaches, sources, targets)
    return graph, results


@pytest.mark.parametrize("name", SMALL)
def test_small_graphs(benchmark, name):
    graph, results = run_once(benchmark, _run_dataset, name, SMALL_APPROACHES, 10)
    rows = [result.as_row() for result in results]
    print()
    print(format_table(rows, title=f"Table 3(a) — {name} (|V|={graph.num_vertices})"))
    by_name = {result.approach: result for result in results}
    # DSR beats the per-query baselines on query time and never iterates.
    assert by_name["dsr"].query_seconds <= by_name["dsr-naive"].query_seconds
    assert by_name["dsr"].rounds == 1
    assert by_name["dsr"].query_seconds <= max(
        by_name["giraph"].query_seconds * 1.5,
        by_name["giraph"].query_seconds + 0.005,
    )


@pytest.mark.parametrize("name", LARGE)
def test_large_graphs(benchmark, name):
    query_size = 100 if name == "lubm" else 10
    graph, results = run_once(benchmark, _run_dataset, name, LARGE_APPROACHES, query_size)
    rows = [result.as_row() for result in results]
    print()
    print(format_table(rows, title=f"Table 3(b) — {name} (|V|={graph.num_vertices})"))
    by_name = {result.approach: result for result in results}
    assert by_name["dsr"].rounds == 1
    assert by_name["dsr"].query_seconds <= max(
        by_name["giraph"].query_seconds * 1.5,
        by_name["giraph"].query_seconds + 0.005,
    )


def test_indexing_time_is_paid_once(benchmark):
    """DSR pays an indexing cost once, then every query is cheap (Table 3's
    'Indexing Time' column versus its 'Query Time' column)."""
    graph = load_dataset("google", scale=BENCH_SCALE, seed=BENCH_SEED)
    runner = ExperimentRunner(graph, num_partitions=NUM_SLAVES, local_index="msbfs",
                              seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=1)
    first = runner.run_approach("dsr", sources, targets)

    def repeated_queries():
        start = time.perf_counter()
        for offset in range(5):
            s, t = random_query(graph, 10, 10, seed=offset)
            runner.run_approach("dsr", s, t)
        return time.perf_counter() - start

    elapsed = run_once(benchmark, repeated_queries)
    print(f"\nTable 3 — google: index {first.index_seconds:.3f}s, "
          f"5 follow-up queries {elapsed:.3f}s")
    assert elapsed < first.index_seconds * 20
