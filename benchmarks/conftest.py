"""Shared helpers for the benchmark suite.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (Section 4) on the scaled-down dataset analogues from
:mod:`repro.bench.datasets`.  The absolute numbers are not expected to match
the paper (the substrate is a pure-Python simulator, not a 10-node C++/MPI
cluster); the *shape* — which approach wins, by roughly what factor, and how
the curves move — is asserted where it is stable and printed for inspection.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the paper-style tables that each benchmark prints.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


# Default scale for dataset analogues: large enough that the paper's
# qualitative gaps (indexed one-round DSR vs. iterative traversal) are visible
# above Python timer noise, small enough that the whole suite finishes in a
# few minutes on a laptop.  Increase for more faithful (but slower) runs.
BENCH_SCALE = 0.6
BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed():
    return BENCH_SEED


def run_once(benchmark, fn, *args, **kwargs):
    """Measure ``fn`` with a single round (most workloads are not micro)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
