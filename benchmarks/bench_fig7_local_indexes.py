"""Figure 7 — Comparison of local reachability indexes inside DSR.

Paper setup: LiveJ-68M and Freebase-1B, query sizes 10x10, 100x100 and 1kx1k,
DSR combined with plain DFS, FERRARI and MS-BFS as the local search strategy
(all over SCC-condensed compound graphs).

Expected shape (asserted): all three strategies return identical answers, and
for the largest query size the index-assisted strategies (FERRARI) and the
shared-traversal strategy (MS-BFS) do not lose badly to per-source DFS —
the paper's observation is that DFS is the slowest for large query sets.
"""

import time

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series
from repro.bench.workloads import query_size_sweep
from repro.api import DSRConfig, ReachQuery, open_engine

DATASETS = ["livej68", "freebase"]
QUERY_SIZES = [10, 50, 100]
STRATEGIES = ["dfs", "ferrari", "msbfs"]
NUM_SLAVES = 5


@pytest.mark.parametrize("name", DATASETS)
def test_local_reachability_strategies(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    sweep = query_size_sweep(graph, QUERY_SIZES, seed=BENCH_SEED)

    engines = {}
    for strategy in STRATEGIES:
        engines[strategy] = open_engine(
            graph,
            DSRConfig(num_partitions=NUM_SLAVES, local_index=strategy, seed=BENCH_SEED),
        )

    def run_sweep():
        series = {strategy: [] for strategy in STRATEGIES}
        for size, sources, targets in sweep:
            answers = {}
            for strategy, engine in engines.items():
                start = time.perf_counter()
                answers[strategy] = engine.run(
                    ReachQuery(tuple(sources), tuple(targets))
                ).pairs
                series[strategy].append(round(time.perf_counter() - start, 4))
            assert answers["dfs"] == answers["ferrari"] == answers["msbfs"]
        return series

    series = run_once(benchmark, run_sweep)
    print()
    print(
        format_series(
            series,
            x_values=[f"{s}x{s}" for s in QUERY_SIZES],
            x_label="|S|x|T|",
            title=f"Figure 7 — local strategies on {name} (DSR-DFS / DSR-FERRARI / DSR-MSBFS)",
        )
    )
    # For the largest query the shared/multi-source strategies must not be
    # drastically slower than per-source DFS (the paper shows them winning).
    largest = -1
    assert series["msbfs"][largest] <= series["dfs"][largest] * 3 + 0.05
