"""Fleet serving — sustained QPS and p99 of a skewed multi-tenant workload.

A :class:`~repro.fleet.ReplicaFleet` of three heterogeneous replicas serves
the same sustained workload as a single default-configured engine, through
the same :class:`~repro.service.DSRService` front end.  The workload is the
kind a fleet exists for: three tenants with very different query shapes
(pointwise CRM lookups, mid-size search batches, wide analytics sweeps),
each re-asking queries from its own working set — and the *combined*
working set is larger than one result cache can hold.

Why the fleet wins — and why honestly
-------------------------------------
On this pure-Python, often single-core substrate the local index strategies
answer at nearly identical wall-clock speed (the per-query one-round
protocol dominates), so strategy specialisation alone cannot buy 1.3x; the
routing/tuning loop optimises *modeled* cost.  What a fleet of three
machines really brings is threefold resources — in particular three result
caches.  Because :class:`~repro.fleet.QueryRouter` is a pure function of the
query fingerprint, every tenant/shape class keeps landing on the same
replica, and each replica's cache holds exactly its own tenants' working
set (cache affinity).  The single engine's one cache thrashes on the union.
Both services answer every request exactly (asserted pairwise), from the
identical graph.

Asserted: the fleet sustains at least ``REPRO_BENCH_FLEET_MIN_SPEEDUP``x
the single engine's QPS (default 1.3x) with exact answer parity on every
request.  Numbers land in ``BENCH_fleet_qps.json``.

Environment knobs (smoke tier uses small values):

* ``REPRO_BENCH_FLEET_REQUESTS`` — measured requests (default 1500);
* ``REPRO_BENCH_FLEET_WARMUP`` — warm-up requests (default 600);
* ``REPRO_BENCH_FLEET_SCALE`` — dataset scale multiplier (default 1.0);
* ``REPRO_BENCH_FLEET_MIN_SPEEDUP`` — asserted QPS floor (default 1.3).
"""

import os
import random
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, run_once
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table, write_bench_json
from repro.service import DSRService

REPO_ROOT = Path(__file__).resolve().parent.parent

DATASET = "freebase"  # near-acyclic hierarchy: the paper's Freebase analogue
NUM_SLAVES = 5
NUM_REPLICAS = 3
#: Per-cache capacity — one cache for the single engine, one *per replica*
#: for the fleet.  The tenants' combined working set (240 distinct queries)
#: overflows one cache but each tenant's share fits its routed replica's.
CACHE_CAPACITY = 160

SCALE = float(os.environ.get("REPRO_BENCH_FLEET_SCALE", "1.0"))
NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_FLEET_REQUESTS", "1500"))
NUM_WARMUP = int(os.environ.get("REPRO_BENCH_FLEET_WARMUP", "600"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_FLEET_MIN_SPEEDUP", "1.3"))

#: (tenant, |S|, |T|, distinct queries in the tenant's working set, draw weight)
TENANTS = [
    ("crm", 1, 1, 100, 0.70),
    ("search", 8, 8, 50, 0.15),
    ("analytics", 64, 16, 90, 0.15),
]


def _tenant_pools(graph):
    rng = random.Random(BENCH_SEED)
    vertices = sorted(graph.vertices())
    pools = {}
    for tenant, num_sources, num_targets, distinct, _ in TENANTS:
        pools[tenant] = [
            ReachQuery(
                tuple(rng.sample(vertices, num_sources)),
                tuple(rng.sample(vertices, num_targets)),
                tenant=tenant,
            )
            for _ in range(distinct)
        ]
    return pools


def _draw(pools, count, seed):
    """A sustained request stream: weighted tenants, uniform within each."""
    rng = random.Random(seed)
    tenants = [row[0] for row in TENANTS]
    weights = [row[4] for row in TENANTS]
    return [
        rng.choice(pools[rng.choices(tenants, weights)[0]]) for _ in range(count)
    ]


def _build_service(graph, replicas=None):
    config = dict(num_partitions=NUM_SLAVES, seed=BENCH_SEED)
    if replicas:
        config["replicas"] = replicas
    engine = open_engine(graph, DSRConfig(**config))
    return DSRService(engine, cache_capacity=CACHE_CAPACITY)


def _sweep(service, requests):
    """Serve the stream sequentially; returns (qps, p99_seconds, answers)."""
    latencies = []
    answers = []
    start = time.perf_counter()
    for request in requests:
        issued = time.perf_counter()
        answers.append(service.handle(request).pairs)
        latencies.append(time.perf_counter() - issued)
    elapsed = time.perf_counter() - start
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return len(requests) / elapsed, p99, answers


def test_fleet_vs_single_engine_qps(benchmark):
    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    pools = _tenant_pools(graph)
    single = _build_service(graph)
    fleet_service = _build_service(graph, replicas=NUM_REPLICAS)
    fleet = fleet_service.engine

    # Warm-up serves double duty: it fills both sides' caches AND feeds the
    # router's workload histogram, so the retune below clusters real demand.
    warmup = _draw(pools, NUM_WARMUP, BENCH_SEED + 1)
    for request in warmup:
        expected = single.handle(request).pairs
        assert fleet_service.handle(request).pairs == expected

    # One online re-tuning round between warm-up and measurement: the tuner
    # re-clusters the observed classes, pins the routing table and rebuilds
    # any re-specialised replica off the hot path.  Waiting for the rebuilds
    # keeps the measured phase deterministic.
    retune = fleet.retune()
    for replica in fleet.replicas:
        replica.wait_for_rebuild(timeout=60.0)

    requests = _draw(pools, NUM_REQUESTS, BENCH_SEED + 2)

    def run_sweep():
        single_qps, single_p99, single_answers = _sweep(single, requests)
        fleet_qps, fleet_p99, fleet_answers = _sweep(fleet_service, requests)
        # Exact answer parity on every single request — caches and routing
        # are invisible to correctness.
        assert single_answers == fleet_answers
        return {
            "single": {"qps": single_qps, "p99_seconds": single_p99},
            "fleet": {"qps": fleet_qps, "p99_seconds": fleet_p99},
        }

    results = run_once(benchmark, run_sweep)
    single_stats = single.stats()
    fleet_stats = fleet_service.stats()
    speedup = results["fleet"]["qps"] / results["single"]["qps"]

    rows = []
    for name, stats in (("single", single_stats), ("fleet", fleet_stats)):
        rows.append(
            {
                "service": name,
                "qps": round(results[name]["qps"], 1),
                "p99_ms": round(results[name]["p99_seconds"] * 1000.0, 3),
                "cache_hit_rate": stats["cache"]["hit_rate"],
                "cache_entries": stats["cache_entries"],
            }
        )
    print()
    print(
        format_table(
            rows,
            title=(
                f"Fleet serving — {DATASET} x{SCALE}, {NUM_REQUESTS} requests, "
                f"{len(TENANTS)} tenants, cache {CACHE_CAPACITY}/side"
            ),
        )
    )
    replica_rows = [
        {
            "replica": row["replica"],
            "strategy": row["strategy"],
            "routes": row["routes"],
            "cache_entries": row.get("cache_entries", 0),
            "cache_hits": row.get("cache_hits", 0),
        }
        for row in fleet_stats["fleet"]["replicas"]
    ]
    print(format_table(replica_rows, title="fleet routing (affinity per tenant class)"))
    print(f"speedup {speedup:.2f}x (floor {MIN_SPEEDUP}x)")

    write_bench_json(
        "fleet_qps",
        {
            "dataset": DATASET,
            "scale": SCALE,
            "num_requests": NUM_REQUESTS,
            "num_replicas": NUM_REPLICAS,
            "cache_capacity": CACHE_CAPACITY,
            "tenants": [
                {"tenant": t, "sources": s, "targets": g, "distinct": d, "weight": w}
                for t, s, g, d, w in TENANTS
            ],
            "single_qps": round(results["single"]["qps"], 1),
            "fleet_qps": round(results["fleet"]["qps"], 1),
            "speedup": round(speedup, 3),
            "single_p99_ms": round(results["single"]["p99_seconds"] * 1000.0, 3),
            "fleet_p99_ms": round(results["fleet"]["p99_seconds"] * 1000.0, 3),
            "single_cache_hit_rate": single_stats["cache"]["hit_rate"],
            "fleet_cache_hit_rate": fleet_stats["cache"]["hit_rate"],
            "replica_strategies": [
                row["strategy"] for row in fleet_stats["fleet"]["replicas"]
            ],
            "retune_applied": retune.applied,
            "retune_cost_trajectory": [
                round(cost, 3) for cost in retune.cost_trajectory
            ],
        },
        directory=REPO_ROOT,
    )

    single.close()
    fleet_service.close()
    assert speedup >= MIN_SPEEDUP, (
        f"fleet-of-{NUM_REPLICAS} sustained {speedup:.2f}x the single engine's "
        f"QPS, below the {MIN_SPEEDUP}x floor"
    )
