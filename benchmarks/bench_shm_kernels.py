"""Zero-copy shm epoch publish vs. pickled hydration + numpy kernel speedup.

PR 8 moved the per-partition CSR shard payloads out of the worker pipes and
into ``multiprocessing.shared_memory`` segments: an epoch publish now writes
each shard image once and ships only the segment *name*; workers attach and
wrap the bytes zero-copy (``CSRGraph.from_shared``).  This benchmark
quantifies the two claims behind the change on an 8-partition engine:

* **publish bytes** — what actually crosses the master→worker pipes per
  epoch (the ``dsr_epoch_publish_bytes`` gauge).  In shm mode the blobs are
  name-only husks; the acceptance bar is **<= 10%** of the pickled baseline
  (``REPRO_SHM=0``), and in practice it is well under 1%.
* **kernel speedup** — the vectorised numpy backend vs. the pure-python
  bitset kernels on the same batched ``set_reachability_rows`` call, byte
  identical answers required, **>= 2x** required.

Both measurements are merged into ``BENCH_query_latency.json`` (the query
pipeline's trajectory file) so one JSON tracks the serving path end to end.
"""

import time
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table, write_bench_json
from repro.bench.workloads import random_query
from repro.cluster.shm import shm_available
from repro.obs.runtime import global_registry
from repro.reachability import bitset_msbfs
from repro.reachability.kernels import numpy_available, use_kernels

REPO_ROOT = Path(__file__).resolve().parent.parent

DATASET = "livej68"
SCALE = 0.6
NUM_PARTITIONS = 8  # the ISSUE-8 acceptance bar is stated at 8 partitions
PUBLISH_BYTES_MAX_FRACTION = 0.10
KERNEL_SOURCES = 256
KERNEL_REPEATS = 5
MIN_KERNEL_SPEEDUP = 2.0


def _publish_stats(graph):
    """Build an 8-partition processes engine; return its epoch-0 publish
    stats (pipe bytes, shm attaches, build seconds) and close it."""
    registry = global_registry()
    registry.reset()
    start = time.perf_counter()
    engine = open_engine(
        graph.copy(),
        DSRConfig(
            num_partitions=NUM_PARTITIONS,
            local_index="msbfs",
            executor="processes",
            seed=BENCH_SEED,
        ),
    )
    build_seconds = time.perf_counter() - start
    try:
        # Sanity: the engine actually serves through the measured publish.
        sources, targets = random_query(graph, 16, 16, seed=BENCH_SEED)
        engine.run(ReachQuery(tuple(sources), tuple(targets)))
        return {
            "publish_bytes": registry.gauge_value("dsr_epoch_publish_bytes"),
            "shm_attaches": registry.counter_total("dsr_shard_shm_attach_total"),
            "build_seconds": build_seconds,
        }
    finally:
        engine.close()


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
def test_epoch_publish_shm_vs_pickled(benchmark, monkeypatch):
    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    registry = global_registry()
    was_enabled = registry.enabled
    registry.enabled = True
    try:

        def run_both():
            monkeypatch.setenv("REPRO_SHM", "0")
            pickled = _publish_stats(graph)
            monkeypatch.setenv("REPRO_SHM", "1")
            shared = _publish_stats(graph)
            return pickled, shared

        pickled, shared = run_once(benchmark, run_both)
    finally:
        registry.enabled = was_enabled
        registry.reset()

    fraction = shared["publish_bytes"] / pickled["publish_bytes"]
    print()
    print(
        format_table(
            [
                {
                    "mode": "pickled (REPRO_SHM=0)",
                    "pipe_bytes": int(pickled["publish_bytes"]),
                    "shm_attaches": int(pickled["shm_attaches"]),
                    "build_s": round(pickled["build_seconds"], 3),
                },
                {
                    "mode": "shm (attach-by-name)",
                    "pipe_bytes": int(shared["publish_bytes"]),
                    "shm_attaches": int(shared["shm_attaches"]),
                    "build_s": round(shared["build_seconds"], 3),
                },
            ],
            title=(
                f"Epoch publish — {DATASET} (scale {SCALE}, "
                f"{NUM_PARTITIONS} partitions, processes executor)"
            ),
        )
    )
    print(f"pipe-bytes fraction: {fraction:.4f} (bar {PUBLISH_BYTES_MAX_FRACTION})")

    write_bench_json(
        "query_latency",
        {
            "shm_publish": {
                "num_partitions": NUM_PARTITIONS,
                "pickled_publish_bytes": int(pickled["publish_bytes"]),
                "shm_publish_bytes": int(shared["publish_bytes"]),
                "publish_bytes_fraction": round(fraction, 5),
                "shm_attach_total": int(shared["shm_attaches"]),
            }
        },
        directory=REPO_ROOT,
        merge=True,
    )

    # Attach-by-name really happened: every partition was hydrated via a
    # named segment, none via pickled CSR bytes.
    assert shared["shm_attaches"] >= NUM_PARTITIONS
    assert pickled["shm_attaches"] == 0
    assert fraction <= PUBLISH_BYTES_MAX_FRACTION, (
        f"shm publish still ships {fraction:.2%} of the pickled bytes "
        f"(bar {PUBLISH_BYTES_MAX_FRACTION:.0%})"
    )


def _best_of(repeats, fn):
    best, answer = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        answer = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, answer


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_kernel_speedup(benchmark):
    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    sources, _ = random_query(graph, KERNEL_SOURCES, KERNEL_SOURCES, seed=BENCH_SEED)
    csr = graph.csr()

    def run_both():
        with use_kernels("python"):
            python_s, python_rows = _best_of(
                KERNEL_REPEATS,
                lambda: bitset_msbfs.set_reachability_rows(csr, sources),
            )
        with use_kernels("numpy"):
            numpy_s, numpy_rows = _best_of(
                KERNEL_REPEATS,
                lambda: bitset_msbfs.set_reachability_rows(csr, sources),
            )
        assert numpy_rows == python_rows  # byte-identical ints
        return python_s, numpy_s

    python_s, numpy_s = run_once(benchmark, run_both)
    speedup = python_s / numpy_s

    print()
    print(
        format_table(
            [
                {"kernels": "python", "seconds": round(python_s, 5), "speedup": "1.0x"},
                {
                    "kernels": "numpy",
                    "seconds": round(numpy_s, 5),
                    "speedup": f"{speedup:.1f}x",
                },
            ],
            title=(
                f"set_reachability_rows — {DATASET} (scale {SCALE}, "
                f"|S|={KERNEL_SOURCES}, |V|={csr.num_vertices}, m={csr.num_edges})"
            ),
        )
    )

    write_bench_json(
        "query_latency",
        {
            "kernels": {
                "num_sources": KERNEL_SOURCES,
                "python_seconds": round(python_s, 6),
                "numpy_seconds": round(numpy_s, 6),
                "speedup": round(speedup, 3),
            }
        },
        directory=REPO_ROOT,
        merge=True,
    )

    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"numpy kernels only {speedup:.2f}x faster than python "
        f"(bar {MIN_KERNEL_SPEEDUP}x)"
    )
