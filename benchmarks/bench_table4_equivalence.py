"""Table 4 — The equivalence-sets optimisation in DSR.

Paper columns: query time and boundary-graph sizes (#forward; #backward
entries) with and without the equivalence optimisation, on the small graphs.

Expected shape (asserted): the optimisation never increases the number of
forward/backward entries and typically shrinks them substantially, while query
answers are identical.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.partition.partition import make_partitioning

DATASETS = ["amazon", "berkstan", "google", "notredame", "stanford"]
NUM_SLAVES = 5

_rows = []


@pytest.mark.parametrize("name", DATASETS)
def test_equivalence_optimisation(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    partitioning = make_partitioning(graph, NUM_SLAVES, strategy="metis", seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)

    def run(use_equivalence):
        engine = open_engine(
            graph,
            DSRConfig(local_index="msbfs", use_equivalence=use_equivalence),
            partitioning=partitioning,
        )
        result = engine.run(ReachQuery(tuple(sources), tuple(targets)))
        forward, backward = engine.index.total_boundary_entries()
        return result, forward, backward

    (opt_result, opt_forward, opt_backward) = run_once(benchmark, run, True)
    (plain_result, plain_forward, plain_backward) = run(False)

    row = {
        "graph": name,
        "time_nonopt_s": round(plain_result.parallel_seconds, 4),
        "time_opt_s": round(opt_result.parallel_seconds, 4),
        "forward_nonopt": plain_forward,
        "forward_opt": opt_forward,
        "backward_nonopt": plain_backward,
        "backward_opt": opt_backward,
    }
    _rows.append(row)
    print()
    print(format_table([row], title=f"Table 4 row — {name}"))

    assert opt_result.pairs == plain_result.pairs
    assert opt_forward <= plain_forward
    assert opt_backward <= plain_backward
