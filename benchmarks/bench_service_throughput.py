"""Service-layer throughput — queries per second with and without the cache.

This benchmark goes beyond the paper's batch experiments: it measures the
online serving layer (:mod:`repro.service`) under a production-shaped
workload in which a small set of popular queries is asked over and over —
the regime a result cache exists for.

* **hot workload** — ``NUM_REQUESTS`` query requests drawn round-robin from a
  pool of ``POOL_SIZE`` distinct 10×10 queries, submitted through the
  service's admission queue; run once with the cache enabled and once
  without.  Expected shape (asserted): the cached service answers the same
  workload measurably faster, because all but the first occurrence of each
  pooled query is a dictionary lookup instead of a full one-round distributed
  evaluation.
* **mixed workload** — the same pool interleaved with structural edge
  updates.  Every update invalidates the cache, so hits only accrue between
  updates; the assertion here is *exactness*, not speed: after the workload
  drains, every pooled query answered through the (cached) service equals a
  direct traversal of the updated graph.
"""

import threading


from benchmarks.conftest import BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.api import DSRConfig, open_engine
from repro.graph.traversal import reachable_pairs
from repro.service import DSRService, QueryRequest, UpdateRequest

DATASET = "amazon"
SCALE = 0.3
NUM_SLAVES = 4
POOL_SIZE = 8
NUM_REQUESTS = 160
NUM_WORKERS = 4


def _build_service(enable_cache):
    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    engine = open_engine(
        graph,
        DSRConfig(num_partitions=NUM_SLAVES, local_index="msbfs", seed=BENCH_SEED),
    )
    service = DSRService(
        engine, num_workers=NUM_WORKERS, max_queue_depth=NUM_REQUESTS + 8,
        enable_cache=enable_cache,
    )
    return graph, service


def _query_pool(graph):
    return [random_query(graph, 10, 10, seed=BENCH_SEED + i) for i in range(POOL_SIZE)]


def _drive(service, pool, num_requests):
    """Submit ``num_requests`` pooled queries and wait for every answer."""
    futures = []
    for i in range(num_requests):
        sources, targets = pool[i % len(pool)]
        futures.append(service.submit(QueryRequest(tuple(sources), tuple(targets))))
    return [future.result() for future in futures]


def test_hot_query_throughput(benchmark):
    """Cache on vs. off over the identical hot query workload."""
    rows = []
    qps = {}

    def run():
        import time

        for label, enable_cache in (("cached", True), ("uncached", False)):
            graph, service = _build_service(enable_cache)
            pool = _query_pool(graph)
            start = time.perf_counter()
            responses = _drive(service, pool, NUM_REQUESTS)
            seconds = time.perf_counter() - start
            stats = service.stats()
            service.close()
            # Every response is exact regardless of where it came from.
            for i, response in enumerate(responses[:POOL_SIZE]):
                sources, targets = pool[i % POOL_SIZE]
                assert response.pair_set == reachable_pairs(graph, sources, targets)
            qps[label] = NUM_REQUESTS / seconds
            rows.append(
                {
                    "service": label,
                    "requests": NUM_REQUESTS,
                    "seconds": round(seconds, 4),
                    "qps": round(qps[label], 1),
                    "hit_rate": stats["cache_hit_rate"],
                    "p50_ms": stats.get("query_p50_ms", 0.0),
                    "p95_ms": stats.get("query_p95_ms", 0.0),
                }
            )
        return rows

    run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"service throughput — {DATASET} (scale {SCALE})"))
    # The cache turns all but POOL_SIZE requests into lookups; the gap must be
    # clearly measurable even on a noisy machine.
    assert qps["cached"] > 1.5 * qps["uncached"], qps


def test_mixed_query_update_workload(benchmark):
    """Concurrent queries interleaved with structural updates stay exact."""

    def run():
        graph, service = _build_service(True)
        pool = _query_pool(graph)
        vertices = sorted(graph.vertices())
        edges = sorted(graph.edges())

        errors = []

        def update_driver():
            for step in range(6):
                u, v = vertices[step], vertices[-1 - step]
                response = service.submit(UpdateRequest("insert-edge", u, v)).result()
                if response.op != "insert-edge":
                    errors.append(response)
                remove = edges[step]
                service.submit(UpdateRequest("delete-edge", *remove)).result()

        updater = threading.Thread(target=update_driver)
        updater.start()
        _drive(service, pool, NUM_REQUESTS // 2)
        updater.join()
        assert not errors

        # After the dust settles every answer must match the updated graph.
        for sources, targets in pool:
            response = service.submit(
                QueryRequest(tuple(sources), tuple(targets))
            ).result()
            assert response.pair_set == reachable_pairs(graph, sources, targets)
        stats = service.stats()
        service.close()
        return stats

    stats = run_once(benchmark, run)
    print()
    print(
        f"mixed workload: {stats['queries']} queries, {stats['updates']} updates, "
        f"hit rate {stats['cache_hit_rate']}, p95 {stats.get('query_p95_ms', 0)}ms"
    )
