"""Figure 5 (d, h, l, p) — Robustness to growing query sizes.

Paper setup: query sizes from 10x10 up to 10kx10k (1kx1k ... 10kx10k for
LUBM); the paper shows that DSR's query time grows gracefully with |S| and |T|
because local evaluations share work.

Expected shape (asserted): query time is monotone (within noise) in the query
size and the answers stay correct for every size.

Each dataset's measured times are merged into ``BENCH_fig5_query_sizes.json``
at the repository root (one ``data`` key per dataset) — part of the benchmark
trajectory described in ``docs/BENCHMARKS.md``.
"""

from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series, write_bench_json
from repro.bench.workloads import query_size_sweep
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph.traversal import reachable_pairs

REPO_ROOT = Path(__file__).resolve().parent.parent
DATASETS = ["livej68", "freebase", "twitter", "lubm"]
QUERY_SIZES = [10, 50, 100, 200]
NUM_SLAVES = 5


@pytest.mark.parametrize("name", DATASETS)
def test_query_size_robustness(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    engine = open_engine(
        graph,
        DSRConfig(num_partitions=NUM_SLAVES, local_index="msbfs", seed=BENCH_SEED),
    )
    sweep = query_size_sweep(graph, QUERY_SIZES, seed=BENCH_SEED)

    def run_sweep():
        times = []
        for size, sources, targets in sweep:
            result = engine.run(ReachQuery(tuple(sources), tuple(targets)))
            times.append(round(result.parallel_seconds, 4))
            if size <= 50:
                assert result.pairs == reachable_pairs(graph, sources, targets)
            assert result.rounds == 1
        return times

    times = run_once(benchmark, run_sweep)
    print()
    print(
        format_series(
            {"dsr": times},
            x_values=[f"{s}x{s}" for s in QUERY_SIZES],
            x_label="|S|x|T|",
            title=f"Figure 5 query sizes — {name}",
        )
    )
    write_bench_json(
        "fig5_query_sizes",
        {
            name: {
                "scale": BENCH_SCALE,
                "num_slaves": NUM_SLAVES,
                "sizes": QUERY_SIZES,
                "parallel_seconds": times,
            }
        },
        directory=REPO_ROOT,
        merge=True,
    )
    # Larger queries may take longer but never catastrophically so: a 20x
    # larger query set (400x more candidate pairs) must stay within two orders
    # of magnitude of the smallest query, mirroring the paper's gentle curves.
    # A millisecond floor keeps the ratio meaningful when the 10x10 query is
    # answered faster than the timer resolution.
    assert times[-1] <= max(times[0], 1e-3) * 100
