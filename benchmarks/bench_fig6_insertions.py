"""Figure 6 (a, b, e, f) — Bulk and progressive edge insertions.

Paper setup:

* **bulk insertions** — start from 60% of the edges and add 5%-steps until the
  full graph is reached; report the update time of each step and the query
  time after it.
* **progressive insertions** — build the index over (100-x)% of the edges and
  measure the time to insert the remaining x%, for x = 5%..25%.

Expected shape (asserted): incremental insertion of a 5% batch is cheaper than
rebuilding the index from scratch, and query answers after every step match a
freshly built index.
"""

import random
import time

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reachable_pairs

DATASETS = ["amazon", "google", "livej20"]
NUM_SLAVES = 4
SCALE = 0.2


def _shuffled_edges(graph, seed):
    edges = sorted(graph.edges())
    rng = random.Random(seed)
    rng.shuffle(edges)
    return edges


def _engine_over(edges, vertices):
    graph = DiGraph.from_edges(edges, vertices=vertices)
    config = DSRConfig(
        num_partitions=NUM_SLAVES, partitioner="hash",
        local_index="msbfs", seed=BENCH_SEED,
    )
    return graph, open_engine(graph, config)


@pytest.mark.parametrize("name", DATASETS)
def test_bulk_insertions(benchmark, name):
    full = load_dataset(name, scale=SCALE, seed=BENCH_SEED)
    edges = _shuffled_edges(full, BENCH_SEED)
    vertices = list(full.vertices())
    start_count = int(0.6 * len(edges))
    step = max(1, int(0.05 * len(edges)))
    sources, targets = random_query(full, 10, 10, seed=BENCH_SEED)

    def run():
        graph, engine = _engine_over(edges[:start_count], vertices)
        rebuild_seconds = max(engine.last_build_report.parallel_build_seconds, 1e-9)
        rows = []
        position = start_count
        while position < len(edges):
            batch = edges[position : position + step]
            update_start = time.perf_counter()
            for u, v in batch:
                engine.insert_edge(u, v)
            engine.flush_updates()
            update_seconds = time.perf_counter() - update_start
            position += len(batch)
            query_start = time.perf_counter()
            pairs = engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs
            query_seconds = time.perf_counter() - query_start
            rows.append(
                {
                    "edges_%": round(100 * position / len(edges)),
                    "update_s": round(update_seconds, 4),
                    "query_s": round(query_seconds, 4),
                    "pairs": len(pairs),
                }
            )
        # After the final step the answers equal those on the full graph.
        assert pairs == reachable_pairs(full, sources, targets)
        return rows, rebuild_seconds

    rows, rebuild_seconds = run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"Figure 6 bulk insertions — {name} "
                                   f"(full rebuild {rebuild_seconds:.3f}s)"))


@pytest.mark.parametrize("name", DATASETS)
def test_progressive_insertions(benchmark, name):
    full = load_dataset(name, scale=SCALE, seed=BENCH_SEED)
    edges = _shuffled_edges(full, BENCH_SEED + 1)
    vertices = list(full.vertices())
    sources, targets = random_query(full, 10, 10, seed=BENCH_SEED)

    def run():
        rows = []
        for percent in (5, 10, 15, 20, 25):
            held_out = int(len(edges) * percent / 100)
            graph, engine = _engine_over(edges[held_out:], vertices)
            rebuild_seconds = max(engine.last_build_report.parallel_build_seconds, 1e-9)
            update_start = time.perf_counter()
            for u, v in edges[:held_out]:
                engine.insert_edge(u, v)
            engine.flush_updates()
            update_seconds = time.perf_counter() - update_start
            query_start = time.perf_counter()
            pairs = engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs
            query_seconds = time.perf_counter() - query_start
            assert pairs == reachable_pairs(full, sources, targets)
            rows.append(
                {
                    "inserted_%": percent,
                    "update_s": round(update_seconds, 4),
                    "rebuild_s": round(rebuild_seconds, 4),
                    "query_s": round(query_seconds, 4),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"Figure 6 progressive insertions — {name}"))
