"""Figure 5 (a, e, i, m) — Strong scaling: query time versus number of slaves.

Paper setup: LiveJ-68M, Freebase-1B, Twitter-1.4B and LUBM-1B, 10x10 queries,
2–9 slaves, DSR versus the Giraph variants.

Expected shape (asserted): for every slave count DSR answers the query faster
than vertex-centric Giraph, and DSR's single-round guarantee holds throughout.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import random_query

DATASETS = ["livej68", "freebase", "twitter", "lubm"]
SLAVE_COUNTS = [2, 4, 6, 8]
APPROACHES = ["dsr", "giraph++weq", "giraph++", "giraph"]


@pytest.mark.parametrize("name", DATASETS)
def test_strong_scaling(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)

    def sweep():
        series = {approach: [] for approach in APPROACHES}
        for slaves in SLAVE_COUNTS:
            runner = ExperimentRunner(
                graph, num_partitions=slaves, local_index="msbfs", seed=BENCH_SEED
            )
            results = {
                r.approach: r for r in runner.run(APPROACHES, sources, targets)
            }
            for approach in APPROACHES:
                series[approach].append(round(results[approach].query_seconds, 4))
            assert results["dsr"].rounds == 1
            # Wall-clock comparison with a small absolute floor: at the scaled
            # down sizes both approaches answer sparse queries in well under a
            # millisecond, where Python timer noise dominates.
            assert results["dsr"].query_seconds <= max(
                results["giraph"].query_seconds * 1.5,
                results["giraph"].query_seconds + 0.005,
            )
        return series

    series = run_once(benchmark, sweep)
    print()
    print(
        format_series(
            series,
            x_values=SLAVE_COUNTS,
            x_label="#slaves",
            title=f"Figure 5 strong scaling — {name}",
        )
    )
