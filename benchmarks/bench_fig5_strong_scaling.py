"""Figure 5 (a, e, i, m) — Strong scaling: query time versus number of slaves.

Paper setup: LiveJ-68M, Freebase-1B, Twitter-1.4B and LUBM-1B, 10x10 queries,
2–9 slaves, DSR versus the Giraph variants.

Expected shape (asserted): for every slave count DSR answers the query faster
than vertex-centric Giraph, and DSR's single-round guarantee holds throughout.

Executor sweep (``test_executor_real_speedup``): the same DSR engine is run
through every :class:`~repro.cluster.executors.ExecutorBackend` — ``serial``,
``threads`` and ``processes`` — over one partitioning and one heavy batch
query.  For each executor the *simulated* parallel time (slowest-worker model,
what the paper reports) is printed alongside the *real* wall-clock on this
machine, and both land in the pytest-benchmark JSON report via ``extra_info``.
On a host with enough usable cores, the ``processes`` executor — whose
workers each own their partition's hydrated CSR shard — is asserted to beat
``serial`` by ≥ 1.5x real wall-clock at 4 partitions (the paper's actual
distributed speed-up claim, reproduced rather than simulated).

Environment knobs for the CI smoke run:

* ``REPRO_BENCH_EXECUTOR_WORKERS`` — partitions/workers (default 4);
* ``REPRO_BENCH_EXECUTOR_VERTICES`` — DAG size (default 8000 vertices).
"""

import json
import os
import time

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import random_query
from repro.graph import generators

DATASETS = ["livej68", "freebase", "twitter", "lubm"]
SLAVE_COUNTS = [2, 4, 6, 8]
APPROACHES = ["dsr", "giraph++weq", "giraph++", "giraph"]

EXECUTORS = ["serial", "threads", "processes"]


@pytest.mark.parametrize("name", DATASETS)
def test_strong_scaling(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)

    def sweep():
        series = {approach: [] for approach in APPROACHES}
        for slaves in SLAVE_COUNTS:
            runner = ExperimentRunner(
                graph, num_partitions=slaves, local_index="msbfs", seed=BENCH_SEED
            )
            results = {
                r.approach: r for r in runner.run(APPROACHES, sources, targets)
            }
            for approach in APPROACHES:
                series[approach].append(round(results[approach].query_seconds, 4))
            assert results["dsr"].rounds == 1
            # Wall-clock comparison with a small absolute floor: at the scaled
            # down sizes both approaches answer sparse queries in well under a
            # millisecond, where Python timer noise dominates.
            assert results["dsr"].query_seconds <= max(
                results["giraph"].query_seconds * 1.5,
                results["giraph"].query_seconds + 0.005,
            )
        return series

    series = run_once(benchmark, sweep)
    print()
    print(
        format_series(
            series,
            x_values=SLAVE_COUNTS,
            x_label="#slaves",
            title=f"Figure 5 strong scaling — {name}",
        )
    )


# --------------------------------------------------------------------- #
# real (not simulated) strong scaling across executor backends
# --------------------------------------------------------------------- #
def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_executor_real_speedup(benchmark):
    """Real wall-clock speed-up of sharded process workers over serial.

    The workload is a partition-heavy batch query over a DAG (condensation
    keeps its size, so every worker does real traversal work on its shard).
    """
    workers = int(os.environ.get("REPRO_BENCH_EXECUTOR_WORKERS", "4"))
    num_vertices = int(os.environ.get("REPRO_BENCH_EXECUTOR_VERTICES", "8000"))
    graph = generators.dag(num_vertices, 4 * num_vertices, seed=BENCH_SEED)
    sources, targets = random_query(graph, 128, 128, seed=BENCH_SEED)
    query = ReachQuery(tuple(sources), tuple(targets))

    def measure(executor: str):
        engine = open_engine(
            graph,
            DSRConfig(
                num_partitions=workers,
                local_index="msbfs",
                seed=BENCH_SEED,
                executor=executor,
            ),
        )
        try:
            engine.run(query)  # warm-up: shard hydration, CSR snapshots
            best_real = float("inf")
            last = None
            for _ in range(2):
                start = time.perf_counter()
                last = engine.run(query)
                best_real = min(best_real, time.perf_counter() - start)
            return {
                "executor": executor,
                "real_seconds": best_real,
                "simulated_parallel_seconds": last.parallel_seconds,
                "worker_cpu_seconds": last.total_seconds,
                "pairs": last.num_pairs,
            }
        finally:
            engine.close()

    def sweep():
        return {executor: measure(executor) for executor in EXECUTORS}

    rows = run_once(benchmark, sweep)
    baseline = rows["serial"]["real_seconds"]
    for record in rows.values():
        record["speedup_vs_serial"] = round(baseline / record["real_seconds"], 3)

    # Both timing models go into the pytest-benchmark JSON report.
    benchmark.extra_info["executor_sweep"] = {
        executor: {
            "real_seconds": round(record["real_seconds"], 6),
            "simulated_parallel_seconds": round(
                record["simulated_parallel_seconds"], 6
            ),
            "speedup_vs_serial": record["speedup_vs_serial"],
        }
        for executor, record in rows.items()
    }
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["usable_cpus"] = _usable_cpus()

    print()
    print(
        format_table(
            [
                {
                    "executor": executor,
                    "real_s": record["real_seconds"],
                    "simulated_s": record["simulated_parallel_seconds"],
                    "cpu_s": record["worker_cpu_seconds"],
                    "speedup": record["speedup_vs_serial"],
                }
                for executor, record in rows.items()
            ],
            title=f"Figure 5 executor sweep — {workers} partitions, "
            f"{_usable_cpus()} usable CPUs",
        )
    )
    print(json.dumps(benchmark.extra_info["executor_sweep"], indent=2))

    # Every executor must compute the identical answer.
    answers = {record["pairs"] for record in rows.values()}
    assert len(answers) == 1, f"executors disagree on the answer: {rows}"

    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(
            f"only {cpus} usable CPU(s): real parallel speed-up is physically "
            "impossible here (sweep numbers above are still recorded)"
        )
    if workers >= 4 and cpus >= 4:
        # The paper's actual claim, reproduced: real sharded execution beats
        # serial by a real factor at 4 partitions.
        assert rows["processes"]["speedup_vs_serial"] >= 1.5, (
            "processes executor did not reach 1.5x over serial: "
            f"{rows['processes']['speedup_vs_serial']}x"
        )
    else:
        # Smoke configuration (e.g. CI with 2 workers on a shared runner):
        # timings there are noise-sensitive, so only a sanity bound is
        # asserted — process dispatch must not be catastrophically slower
        # than serial.  The numbers themselves are always recorded above.
        assert rows["processes"]["speedup_vs_serial"] >= 0.75, (
            "processes executor catastrophically slower than serial: "
            f"{rows['processes']['speedup_vs_serial']}x"
        )
