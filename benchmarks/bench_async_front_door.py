"""Async binary front door vs. thread-per-connection server under load.

Measures the serving edge itself — not the engine: a hot, cacheable query
is asked over N concurrent connections, so almost every request is a cache
hit and the cost that differs is the transport (one event loop multiplexing
binary v5 frames vs. one OS thread per connection speaking newline JSON).

For each connection tier (default 1k / 5k / 10k) and each server flavour,
a **forked client driver** (its own process, so the 20k-fd limit applies
per side, not to the sum) opens the connections with a single asyncio
loop, pipelines up to ``PIPELINE`` requests per connection, and reports
QPS, latency percentiles and an error breakdown:

* ``typed_errors`` — the server said no in-protocol (``ServiceOverloadedError``
  shed, rate limit): **graceful degradation**;
* ``transport_errors`` — resets, refusals, timeouts: **collapse**.

After every tier the server must still answer a health query.  The numbers
land in ``BENCH_async_qps.json``; the acceptance bar is async ≥ 1.5× the
thread server's QPS at the 1k tier and a 10 k-connection tier that
completes with zero transport errors on the async side.

Environment knobs: ``REPRO_BENCH_CONN_TIERS`` (comma list, default
``1000,5000,10000``), ``REPRO_BENCH_TOTAL_REQUESTS`` (per tier, default
8000), ``REPRO_BENCH_PIPELINE`` (in-flight per connection, default 4),
``REPRO_BENCH_SKIP_THREAD_TIERS`` (comma list of tiers too big for the
thread server to even attempt, default ``10000`` — 10k OS threads on one
box is the collapse mode the async server exists to avoid).
"""

import asyncio
import json
import multiprocessing
import os
import time

from benchmarks.conftest import BENCH_SEED, run_once
from repro.api import DSRConfig, open_engine
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table, write_bench_json
from repro.service import DSRService, DSRSocketServer
from repro.service.aio import DSRAsyncServer
from repro.service.protocol import (
    PROTOCOL_VERSION,
    QueryRequest,
    dumps,
    pack_frame,
)

DATASET = "amazon"
SCALE = 0.3
NUM_SLAVES = 3
NUM_WORKERS = 4
QUEUE_DEPTH = 256

CONN_TIERS = tuple(
    int(t)
    for t in os.environ.get("REPRO_BENCH_CONN_TIERS", "1000,5000,10000").split(",")
    if t.strip()
)
TOTAL_REQUESTS = int(os.environ.get("REPRO_BENCH_TOTAL_REQUESTS", "8000"))
PIPELINE = int(os.environ.get("REPRO_BENCH_PIPELINE", "8"))
SKIP_THREAD_TIERS = tuple(
    int(t)
    for t in os.environ.get("REPRO_BENCH_SKIP_THREAD_TIERS", "10000").split(",")
    if t.strip()
)
CONNECT_BATCH = 500
REQUEST_TIMEOUT = 120.0


# --------------------------------------------------------------------- #
# forked client driver (runs in its own process: own fd table, own loop)
# --------------------------------------------------------------------- #
async def _drive_connection(host, port, binary, requests, latencies, errors, ready, go):
    """One connection: pipeline up to PIPELINE requests, closed-loop.

    Connects immediately but only starts sending once ``go`` fires, so QPS
    is measured over the steady-state request phase — connection setup
    (and the thread server's per-connection thread spawn) is timed
    separately, as a load generator would.
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        errors["connect"] += 1
        ready.append(None)
        return
    # The driver is a byte pump: the (identical) request is encoded once and
    # replies are only scanned for the error marker, never fully parsed —
    # client-side JSON work would otherwise dwarf the transport under test.
    query = QueryRequest((0, 1, 2), (5, 6, 7))
    if binary:
        wire = pack_frame(query, request_id=0)
    else:
        wire = (dumps(query) + "\n").encode("utf-8")
    ready.append(None)
    try:
        await go.wait()
        pending = []
        sent = 0

        async def read_response():
            if binary:
                header = await reader.readexactly(5)
                length = int.from_bytes(header[:4], "big")
                body = await reader.readexactly(length - 1)
            else:
                body = await reader.readline()
                if not body:
                    raise ConnectionResetError("EOF")
            if body.startswith(b'{"error":'):
                errors["typed"] += 1

        while sent < requests or pending:
            while sent < requests and len(pending) < PIPELINE:
                writer.write(wire)
                sent += 1
                pending.append(time.perf_counter())
            await writer.drain()
            started = pending.pop(0)
            await asyncio.wait_for(read_response(), REQUEST_TIMEOUT)
            latencies.append(time.perf_counter() - started)
    except (OSError, asyncio.IncompleteReadError, asyncio.TimeoutError, ValueError):
        errors["transport"] += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def _drive_tier(host, port, binary, connections, total_requests):
    per_conn = max(1, total_requests // connections)
    latencies: list = []
    errors = {"connect": 0, "typed": 0, "transport": 0}
    ready: list = []
    tasks = []
    go = asyncio.Event()
    # Staggered connect storm: the kernel accept backlog is finite.
    connect_started = time.perf_counter()
    for begin in range(0, connections, CONNECT_BATCH):
        batch = range(begin, min(begin + CONNECT_BATCH, connections))
        tasks.extend(
            asyncio.ensure_future(
                _drive_connection(
                    host, port, binary, per_conn, latencies, errors, ready, go
                )
            )
            for _ in batch
        )
        await asyncio.sleep(0.01)
    # Let every connection finish its handshake (and the thread server spawn
    # its per-connection threads) before the measured request phase begins.
    while len(ready) < connections:
        await asyncio.sleep(0.05)
    connect_wall = time.perf_counter() - connect_started
    go.set()
    started = time.perf_counter()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    latencies.sort()

    def pct(p):
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p / 100.0 * len(latencies)))]

    return {
        "connections": connections,
        "requests": len(latencies),
        "connect_seconds": round(connect_wall, 3),
        "wall_seconds": round(wall, 3),
        "qps": round(len(latencies) / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(pct(50) * 1000.0, 3),
        "p99_ms": round(pct(99) * 1000.0, 3),
        "connect_errors": errors["connect"],
        "typed_errors": errors["typed"],
        "transport_errors": errors["transport"],
    }


def _driver_main(pipe, host, port, binary, connections, total_requests):
    result = asyncio.run(
        _drive_tier(host, port, binary, connections, total_requests)
    )
    pipe.send(result)
    pipe.close()


def _run_client_driver(host, port, binary, connections, total_requests):
    context = multiprocessing.get_context("fork")
    parent, child = context.Pipe()
    process = context.Process(
        target=_driver_main,
        args=(child, host, port, binary, connections, total_requests),
        daemon=True,
    )
    process.start()
    child.close()
    if not parent.poll(600.0):
        process.terminate()
        raise RuntimeError(f"client driver hung at {connections} connections")
    result = parent.recv()
    parent.close()
    process.join(timeout=10.0)
    return result


# --------------------------------------------------------------------- #
# the benchmark
# --------------------------------------------------------------------- #
def _build_service():
    graph = load_dataset(DATASET, scale=SCALE, seed=BENCH_SEED)
    engine = open_engine(
        graph,
        DSRConfig(num_partitions=NUM_SLAVES, local_index="msbfs", seed=BENCH_SEED),
    )
    service = DSRService(
        engine, num_workers=NUM_WORKERS, max_queue_depth=QUEUE_DEPTH
    )
    # Warm the cache: the benchmark measures the front door, not the engine.
    service.handle(QueryRequest((0, 1, 2), (5, 6, 7)))
    return service


def _health_check(host, port, binary):
    return _run_client_driver(host, port, binary, 1, 1)["transport_errors"] == 0


def test_async_front_door_vs_thread_server(benchmark):
    rows = []
    data = {
        "tiers": {},
        "pipeline_depth": PIPELINE,
        "total_requests_per_tier": TOTAL_REQUESTS,
        "protocol_version": PROTOCOL_VERSION,
    }

    def run():
        for flavour in ("thread", "async"):
            service = _build_service()
            if flavour == "async":
                server = DSRAsyncServer(service, high_watermark=QUEUE_DEPTH)
                server.start_in_thread()
                address = server.address
            else:
                server = DSRSocketServer(service).start()
                address = server.address
            try:
                for connections in CONN_TIERS:
                    if flavour == "thread" and connections in SKIP_THREAD_TIERS:
                        data["tiers"].setdefault(str(connections), {})[
                            flavour
                        ] = {"skipped": "thread-per-connection does not scale here"}
                        continue
                    tier = _run_client_driver(
                        address[0], address[1], flavour == "async",
                        connections, TOTAL_REQUESTS,
                    )
                    tier["alive_after"] = _health_check(
                        address[0], address[1], flavour == "async"
                    )
                    data["tiers"].setdefault(str(connections), {})[flavour] = tier
                    rows.append({"server": flavour, **tier})
            finally:
                if flavour == "async":
                    server.stop_from_thread()
                else:
                    server.stop()
                service.close()

    run_once(benchmark, run)
    print()
    print(format_table(rows, title="async binary front door vs thread server"))

    # Graceful degradation: every async tier completed with zero transport
    # errors and a live server afterwards.
    for connections in CONN_TIERS:
        tier = data["tiers"][str(connections)]["async"]
        assert tier["transport_errors"] == 0, (connections, tier)
        assert tier["connect_errors"] == 0, (connections, tier)
        assert tier["alive_after"], (connections, tier)

    lowest = str(min(CONN_TIERS))
    thread_tier = data["tiers"][lowest].get("thread", {})
    if "qps" in thread_tier and thread_tier["qps"] > 0:
        ratio = data["tiers"][lowest]["async"]["qps"] / thread_tier["qps"]
        data["async_over_thread_qps_at_lowest_tier"] = round(ratio, 2)
        if min(CONN_TIERS) >= 1000:
            assert ratio >= 1.5, (
                f"async front door only {ratio:.2f}x the thread server "
                f"at {lowest} connections"
            )

    path = write_bench_json(
        "async_qps", data, directory=os.path.dirname(os.path.dirname(__file__))
    )
    print(f"wrote {path}")
    print(json.dumps(data.get("async_over_thread_qps_at_lowest_tier"), indent=0))
