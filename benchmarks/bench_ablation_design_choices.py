"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not a table/figure of the paper, but the knobs a practitioner would tune:

* number of partitions per fixed graph (index size vs. query cost trade-off);
* the local strategy used while *building* summaries (DFS vs MS-BFS);
* SCC condensation of the compound graphs on/off is implicit in Table 2, so
  here we measure the query-time effect of the condensation indirectly via
  dense vs. sparse graphs.
"""

import time


from benchmarks.conftest import BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series, format_table
from repro.bench.workloads import random_query
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.core.index import DSRIndex
from repro.partition.partition import make_partitioning

SCALE = 0.4


def test_partition_count_ablation(benchmark):
    """More partitions → smaller local graphs but more boundary handles."""
    graph = load_dataset("livej68", scale=SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)
    counts = [2, 4, 8, 12]

    def sweep():
        rows = []
        answers = set()
        for slaves in counts:
            engine = open_engine(
                graph,
                DSRConfig(num_partitions=slaves, local_index="msbfs", seed=BENCH_SEED),
            )
            report = engine.last_build_report
            result = engine.run(ReachQuery(tuple(sources), tuple(targets)))
            answers.add(frozenset(result.pairs))
            forward, backward = engine.index.total_boundary_entries()
            rows.append(
                {
                    "slaves": slaves,
                    "build_s": round(report.parallel_build_seconds, 3),
                    "query_s": round(result.parallel_seconds, 4),
                    "cut_edges": engine.partitioning.cut_size(),
                    "forward_handles": forward,
                    "backward_handles": backward,
                }
            )
        assert len(answers) == 1  # the partition count never changes answers
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="Ablation — number of partitions (livej68 analogue)"))
    # The cut (and hence the handle count) grows with the partition count.
    assert rows[-1]["cut_edges"] >= rows[0]["cut_edges"]


def test_summary_strategy_ablation(benchmark):
    """MS-BFS summaries amortise traversals over the boundary set vs plain DFS."""
    graph = load_dataset("berkstan", scale=SCALE, seed=BENCH_SEED)
    partitioning = make_partitioning(graph, 5, strategy="metis", seed=BENCH_SEED)

    def build(strategy):
        start = time.perf_counter()
        index = DSRIndex(partitioning, summary_strategy=strategy, local_strategy="dfs")
        index.build()
        return time.perf_counter() - start

    msbfs_seconds = run_once(benchmark, build, "msbfs")
    dfs_seconds = build("dfs")
    print(
        f"\nAblation — summary strategy on berkstan analogue: "
        f"msbfs {msbfs_seconds:.3f}s vs dfs {dfs_seconds:.3f}s"
    )
    # Both must produce a working index; relative speed depends on boundary
    # sizes, so only sanity-bound the ratio.
    assert msbfs_seconds <= dfs_seconds * 5 + 0.2


def test_local_strategy_query_ablation(benchmark):
    """Query-time effect of the pluggable local strategy on a dense analogue."""
    graph = load_dataset("twitter", scale=SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, 25, 25, seed=BENCH_SEED)
    strategies = ["dfs", "msbfs", "ferrari"]

    def sweep():
        series = {}
        answers = set()
        for strategy in strategies:
            engine = open_engine(
                graph,
                DSRConfig(num_partitions=5, local_index=strategy, seed=BENCH_SEED),
            )
            start = time.perf_counter()
            pairs = engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs
            series[strategy] = [round(time.perf_counter() - start, 4)]
            answers.add(frozenset(pairs))
        assert len(answers) == 1
        return series

    series = run_once(benchmark, sweep)
    print()
    print(
        format_series(
            series, x_values=["25x25"], x_label="|S|x|T|",
            title="Ablation — local strategy on twitter analogue",
        )
    )
