"""Table 7 — Community connectedness using DSR.

Paper setup: LiveJ-68M and Twitter-1.4B, Louvain communities, 10–1000
representatives per community, report query time and the number of reachable
pairs.

Expected shape (asserted): query time grows with the representative-set size,
and every reported pair is a genuine reachable pair.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.analytics.connectedness import CommunityConnectedness
from repro.bench.reporting import format_table
from repro.graph import generators
from repro.graph.traversal import reachable_pairs

GRAPHS = {
    "livej_like": lambda: generators.community_graph(
        num_communities=8, community_size=60, intra_prob=0.06, inter_prob=0.002,
        seed=BENCH_SEED,
    ),
    "twitter_like": lambda: generators.community_graph(
        num_communities=10, community_size=70, intra_prob=0.08, inter_prob=0.004,
        seed=BENCH_SEED + 1,
    ),
}
QUERY_SIZES = [10, 50, 100]


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_community_connectedness(benchmark, graph_name):
    graph = GRAPHS[graph_name]()

    def build():
        return CommunityConnectedness(graph, num_partitions=5, seed=BENCH_SEED)

    analysis = run_once(benchmark, build)

    rows = []
    previous_pairs = -1
    for size in QUERY_SIZES:
        report = analysis.analyse(representatives=size, rng_seed=size)
        rows.append(
            {
                "|S|x|T|": f"{report.num_sources}x{report.num_targets}",
                "query_s": round(report.seconds, 4),
                "pairs": report.num_pairs,
            }
        )
        # Spot-check soundness of a few reported pairs.
        for s, t in list(report.pairs)[:20]:
            assert reachable_pairs(graph, [s], [t]) == {(s, t)}
        assert report.num_pairs >= previous_pairs
        previous_pairs = report.num_pairs

    print()
    print(
        format_table(
            rows,
            title=(
                f"Table 7 — {graph_name}: {analysis.communities.num_communities} "
                f"communities over {graph.num_vertices} vertices"
            ),
        )
    )
