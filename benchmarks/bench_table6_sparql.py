"""Table 6 — SPARQL 1.1 property-path queries (LUBM and Freebase).

Paper setup: the LUBM-500M and Freebase-500M RDF datasets, queries L1–L3 and
F1–F3, DSR with 1 and 5 slaves versus Virtuoso with cold and warm caches.

Expected shape (asserted): the DSR-backed engine and the Virtuoso-like
baseline return identical bindings, and the DSR evaluation of the path
predicates does not exceed the cold baseline by more than a small factor
(on the paper's testbed DSR wins outright; at this scale the join machinery
dominates, so we assert the weaker, stable property).
"""

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.bench.reporting import format_table
from repro.sparql.baseline import VirtuosoLikeEngine
from repro.sparql.engine import PropertyPathEngine
from repro.sparql.freebase_like import freebase_queries, generate_freebase_triples
from repro.sparql.lubm import generate_lubm_triples, lubm_queries
from repro.sparql.rdf import TripleStore


def _lubm_store():
    store = TripleStore()
    store.add_all(
        generate_lubm_triples(
            num_universities=10,
            departments_per_university=8,
            groups_per_department=5,
            students_per_department=6,
            seed=BENCH_SEED,
        )
    )
    return store


def _freebase_store():
    store = TripleStore()
    store.add_all(
        generate_freebase_triples(
            num_countries=5,
            states_per_country=6,
            cities_per_state=7,
            people_per_city=4,
            seed=BENCH_SEED,
        )
    )
    return store


SUITES = {
    "lubm": (_lubm_store, lubm_queries),
    "freebase": (_freebase_store, freebase_queries),
}


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_property_path_queries(benchmark, suite):
    store_factory, query_factory = SUITES[suite]
    store = store_factory()
    queries = query_factory()

    dsr_single = PropertyPathEngine(store, num_slaves=1, local_index="msbfs")
    dsr_cluster = PropertyPathEngine(store, num_slaves=5, local_index="msbfs")
    cold = VirtuosoLikeEngine(store, warm=False)
    warm = VirtuosoLikeEngine(store, warm=True)

    def run_all():
        rows = []
        for name, text in queries.items():
            dsr_single.warm_up(text)
            dsr_cluster.warm_up(text)
            single = dsr_single.execute(text)
            cluster = dsr_cluster.execute(text)
            cold_result = cold.execute(text)
            warm.execute(text)
            warm_result = warm.execute(text)
            rows.append(
                {
                    "query": name,
                    "results": single.num_results,
                    "dsr_1slave_s": round(single.seconds, 4),
                    "dsr_5slaves_s": round(cluster.seconds, 4),
                    "virtuoso_cold_s": round(cold_result.seconds, 4),
                    "virtuoso_warm_s": round(warm_result.seconds, 4),
                }
            )
            assert single.num_results == cluster.num_results == cold_result.num_results
        return rows

    rows = run_once(benchmark, run_all)
    print()
    print(format_table(rows, title=f"Table 6 — {suite} ({store.num_triples} triples)"))
    # All engines agreed on every query (asserted inside run_all); the DSR
    # evaluation must stay within a small constant factor of the baseline.
    for row in rows:
        assert row["dsr_5slaves_s"] <= 5 * max(row["virtuoso_cold_s"], 1e-4)
