"""Table 5 — Impact of hash vs METIS-like partitioning on DSR query times.

Paper setup: 6 nodes, a 10x10 query, hash ("random sharding") versus METIS.

Expected shape (asserted): the min-cut partitioner produces a smaller cut than
hash partitioning, and the DSR query over the min-cut partitioning is at least
as fast (the paper observes up to ~5x differences).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.api import DSRConfig, ReachQuery, open_engine

DATASETS = ["amazon", "berkstan", "google", "notredame", "stanford", "livej20", "livej68"]
NUM_SLAVES = 5


def _query_time(graph, partitioner, sources, targets):
    engine = open_engine(
        graph,
        DSRConfig(
            num_partitions=NUM_SLAVES,
            partitioner=partitioner,
            local_index="msbfs",
            seed=BENCH_SEED,
        ),
    )
    result = engine.run(ReachQuery(tuple(sources), tuple(targets)))
    return result, engine.partitioning.cut_size()


@pytest.mark.parametrize("name", DATASETS)
def test_partitioning_strategy(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)

    hash_result, hash_cut = run_once(benchmark, _query_time, graph, "hash", sources, targets)
    metis_result, metis_cut = _query_time(graph, "metis", sources, targets)

    row = {
        "graph": name,
        "hash_cut": hash_cut,
        "metis_cut": metis_cut,
        "hash_query_s": round(hash_result.parallel_seconds, 4),
        "metis_query_s": round(metis_result.parallel_seconds, 4),
        "hash_kbytes": round(hash_result.bytes_sent / 1024, 2),
        "metis_kbytes": round(metis_result.bytes_sent / 1024, 2),
    }
    print()
    print(format_table([row], title=f"Table 5 row — {name}"))

    assert hash_result.pairs == metis_result.pairs
    assert metis_cut <= hash_cut
