"""Figure 6 (c, d, g, h) — Bulk and progressive edge deletions.

Paper setup: bulk deletions remove 5%-steps from the full graph down to 65%;
progressive deletions remove x% (5..25) from the full graph.  The paper notes
that deletions are the expensive direction — they cost roughly as much as
rebuilding the affected partitions' boundary information — while query times
tend to *increase* as the graph becomes sparser (larger condensed DAGs).

Expected shape (asserted): answers after every deletion step match a plain
traversal of the remaining graph.
"""

import random
import time

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reachable_pairs

DATASETS = ["amazon", "google", "livej20"]
NUM_SLAVES = 4
SCALE = 0.2


@pytest.mark.parametrize("name", DATASETS)
def test_bulk_deletions(benchmark, name):
    full = load_dataset(name, scale=SCALE, seed=BENCH_SEED)
    edges = sorted(full.edges())
    rng = random.Random(BENCH_SEED)
    rng.shuffle(edges)
    step = max(1, int(0.05 * len(edges)))
    sources, targets = random_query(full, 10, 10, seed=BENCH_SEED)

    def run():
        graph = full.copy()
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=NUM_SLAVES, partitioner="hash",
                      local_index="msbfs", seed=BENCH_SEED),
        )
        rows = []
        removed = 0
        for step_index in range(4):  # 100% -> 80%
            batch = edges[removed : removed + step]
            update_start = time.perf_counter()
            for u, v in batch:
                engine.delete_edge(u, v)
            engine.flush_updates()
            update_seconds = time.perf_counter() - update_start
            removed += len(batch)
            query_start = time.perf_counter()
            pairs = engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs
            query_seconds = time.perf_counter() - query_start
            rows.append(
                {
                    "edges_%": round(100 * (len(edges) - removed) / len(edges)),
                    "update_s": round(update_seconds, 4),
                    "query_s": round(query_seconds, 4),
                    "pairs": len(pairs),
                }
            )
        remaining = DiGraph.from_edges(edges[removed:], vertices=full.vertices())
        assert pairs == reachable_pairs(remaining, sources, targets)
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"Figure 6 bulk deletions — {name}"))


@pytest.mark.parametrize("name", DATASETS)
def test_progressive_deletions(benchmark, name):
    full = load_dataset(name, scale=SCALE, seed=BENCH_SEED)
    edges = sorted(full.edges())
    rng = random.Random(BENCH_SEED + 1)
    rng.shuffle(edges)
    sources, targets = random_query(full, 10, 10, seed=BENCH_SEED)

    def run():
        rows = []
        for percent in (5, 10, 15):
            to_remove = edges[: int(len(edges) * percent / 100)]
            graph = full.copy()
            engine = open_engine(
                graph,
                DSRConfig(num_partitions=NUM_SLAVES, partitioner="hash",
                          local_index="msbfs", seed=BENCH_SEED),
            )
            update_start = time.perf_counter()
            for u, v in to_remove:
                engine.delete_edge(u, v)
            engine.flush_updates()
            update_seconds = time.perf_counter() - update_start
            query_start = time.perf_counter()
            pairs = engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs
            query_seconds = time.perf_counter() - query_start
            remaining = DiGraph.from_edges(
                [e for e in edges if e not in set(to_remove)], vertices=full.vertices()
            )
            assert pairs == reachable_pairs(remaining, sources, targets)
            rows.append(
                {
                    "deleted_%": percent,
                    "update_s": round(update_seconds, 4),
                    "query_s": round(query_seconds, 4),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"Figure 6 progressive deletions — {name}"))
