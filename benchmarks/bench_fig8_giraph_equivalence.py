"""Figure 8 — The equivalence-sets optimisation applied to Giraph.

Paper setup: the small graphs; for Giraph, Giraph++ and Giraph++wEq report the
number of supersteps and the communication volume of one 10x10 DSR query.

Expected shape (asserted): Giraph++ needs no more supersteps than vertex-centric
Giraph, and Giraph++wEq sends no more network messages than Giraph++ — while
all three return identical answers.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.giraph.giraph_dsr import GiraphDSR
from repro.giraph.giraphpp_dsr import GiraphPlusPlusDSR
from repro.giraph.giraphpp_eq_dsr import GiraphPlusPlusEqDSR
from repro.partition.partition import make_partitioning

DATASETS = ["amazon", "berkstan", "google", "notredame", "stanford", "livej20"]
NUM_SLAVES = 5


@pytest.mark.parametrize("name", DATASETS)
def test_giraph_equivalence_optimisation(benchmark, name):
    graph = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    partitioning = make_partitioning(graph, NUM_SLAVES, strategy="metis", seed=BENCH_SEED)
    sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)

    def run():
        giraph = GiraphDSR(graph, partitioning).query(sources, targets)
        giraph_pp = GiraphPlusPlusDSR(graph, partitioning).query(sources, targets)
        giraph_eq = GiraphPlusPlusEqDSR(graph, partitioning).query(sources, targets)
        return giraph, giraph_pp, giraph_eq

    giraph, giraph_pp, giraph_eq = run_once(benchmark, run)
    rows = [
        {
            "variant": "Giraph",
            "supersteps": giraph.rounds,
            "messages": giraph.messages_sent,
            "kbytes": round(giraph.bytes_sent / 1024, 2),
        },
        {
            "variant": "Giraph++",
            "supersteps": giraph_pp.rounds,
            "messages": giraph_pp.messages_sent,
            "kbytes": round(giraph_pp.bytes_sent / 1024, 2),
        },
        {
            "variant": "Giraph++wEq",
            "supersteps": giraph_eq.rounds,
            "messages": giraph_eq.messages_sent,
            "kbytes": round(giraph_eq.bytes_sent / 1024, 2),
        },
    ]
    print()
    print(format_table(rows, title=f"Figure 8 — {name}"))

    assert giraph.pairs == giraph_pp.pairs == giraph_eq.pairs
    assert giraph_pp.rounds <= giraph.rounds
    assert giraph_eq.messages_sent <= giraph_pp.messages_sent
