"""Figure 5 (c, g, k, o) — Weak scaling: data size grows with the slave count.

Paper setup: 2 slaves hold 20% of the graph, 9 slaves hold 90%; query time of
a 10x10 DSR query is reported for every configuration.

Expected shape (asserted): DSR stays within one round of communication at
every configuration and remains faster than vertex-centric Giraph.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.bench.datasets import load_dataset
from repro.bench.reporting import format_series
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import random_query, random_vertex_sample

DATASETS = ["livej68", "freebase", "twitter", "lubm"]
# (#slaves, fraction of the data they hold) as in the paper's x-axis labels.
CONFIGURATIONS = [(2, 0.2), (4, 0.4), (6, 0.6), (8, 0.8)]
APPROACHES = ["dsr", "giraph++", "giraph"]


def _subgraph_fraction(graph, fraction, seed):
    """Vertex-induced subgraph over a deterministic sample of the vertices."""
    count = max(10, int(graph.num_vertices * fraction))
    vertices = random_vertex_sample(graph, count, seed=seed)
    return graph.induced_subgraph(vertices)


@pytest.mark.parametrize("name", DATASETS)
def test_weak_scaling(benchmark, name):
    full = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)

    def sweep():
        series = {approach: [] for approach in APPROACHES}
        labels = []
        for slaves, fraction in CONFIGURATIONS:
            graph = _subgraph_fraction(full, fraction, seed=BENCH_SEED)
            sources, targets = random_query(graph, 10, 10, seed=BENCH_SEED)
            runner = ExperimentRunner(
                graph, num_partitions=slaves, local_index="msbfs", seed=BENCH_SEED
            )
            results = {
                r.approach: r for r in runner.run(APPROACHES, sources, targets)
            }
            labels.append(f"{slaves}[{int(fraction * 100)}%]")
            for approach in APPROACHES:
                series[approach].append(round(results[approach].query_seconds, 4))
            assert results["dsr"].rounds == 1
            # Small absolute floor: sub-millisecond timings at this scale are
            # dominated by interpreter noise, not by the algorithms.
            assert results["dsr"].query_seconds <= max(
                results["giraph"].query_seconds * 1.5,
                results["giraph"].query_seconds + 0.005,
            )
        return labels, series

    labels, series = run_once(benchmark, sweep)
    print()
    print(
        format_series(
            series,
            x_values=labels,
            x_label="#slaves[%data]",
            title=f"Figure 5 weak scaling — {name}",
        )
    )
