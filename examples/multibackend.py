#!/usr/bin/env python
"""One query, every backend: the ``repro.api`` registry in action.

The paper (Gurajada & Theobald, SIGMOD'16) is a comparison of interchangeable
execution strategies for the same set-reachability query.  With the unified
API that comparison is a loop: one :class:`DSRConfig` per strategy, one
:func:`open_engine` call, one :class:`ReachQuery` — and every backend must
return exactly the same set of reachable pairs (the statistics show *how*
they got there: the DSR index needs one communication round, the traversal
baselines need one per partition hop).

Run with:  python examples/multibackend.py
"""

from repro.api import DSRConfig, ReachQuery, available_backends, open_engine
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.graph import generators
from repro.graph.traversal import reachable_pairs


def main() -> None:
    print("=== Distributed Set Reachability: one query, every backend ===\n")

    graph = generators.web_graph(num_vertices=400, avg_degree=5, seed=13)
    sources, targets = random_query(graph, 8, 8, seed=4)
    query = ReachQuery(sources=tuple(sources), targets=tuple(targets))
    expected = reachable_pairs(graph, sources, targets)
    print(
        f"data graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"query |S|={len(sources)} |T|={len(targets)} "
        f"-> {len(expected)} reachable pairs (ground truth by traversal)"
    )
    print(f"registered backends: {', '.join(available_backends())}\n")

    rows = []
    for backend in available_backends():
        config = DSRConfig(backend=backend, num_partitions=4, local_index="msbfs")
        engine = open_engine(graph, config)
        result = engine.run(query)
        assert result.pairs == expected, f"backend {backend!r} disagrees!"
        rows.append(
            {
                "backend": backend,
                "pairs": result.num_pairs,
                "messages": result.messages_sent,
                "kbytes": round(result.bytes_sent / 1024.0, 2),
                "rounds": result.rounds,
            }
        )
    print(format_table(rows, title="same answer, different strategies"))
    print("\nall backends returned the identical reachable-pair set")


if __name__ == "__main__":
    main()
