#!/usr/bin/env python
"""Incremental index maintenance (paper Section 3.3.3 / Figure 6).

Builds a DSR index over 90% of a graph's edges, then inserts the remaining
10% incrementally and finally deletes a slice again, reporting per-update cost
relative to a full rebuild and verifying that query answers always match a
freshly built index.

Run with:  python examples/incremental_updates.py
"""

import random
import time

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.graph import generators
from repro.graph.digraph import DiGraph


def main() -> None:
    full_graph = generators.web_graph(500, avg_degree=5, seed=21)
    edges = sorted(full_graph.edges())
    rng = random.Random(5)
    rng.shuffle(edges)
    held_out = edges[: len(edges) // 10]

    # Start from the graph without the held-out edges.
    base_graph = DiGraph.from_edges(
        (edge for edge in edges[len(edges) // 10 :]), vertices=full_graph.vertices()
    )
    config = DSRConfig(num_partitions=4, local_index="msbfs", seed=1)
    engine = open_engine(base_graph, config)
    build_report = engine.last_build_report
    full_build_seconds = max(build_report.parallel_build_seconds, 1e-9)
    print(
        f"initial index over {base_graph.num_edges} edges built in "
        f"{full_build_seconds:.3f}s (simulated parallel)"
    )

    sources, targets = random_query(full_graph, 8, 8, seed=2)

    rows = []
    insert_start = time.perf_counter()
    for u, v in held_out:
        engine.insert_edge(u, v)
    engine.flush_updates()
    insert_seconds = time.perf_counter() - insert_start
    rows.append(
        {
            "operation": f"insert {len(held_out)} edges",
            "seconds": round(insert_seconds, 3),
            "per_update_ms": round(1000 * insert_seconds / len(held_out), 3),
        }
    )

    # The incrementally maintained index must agree with a fresh build.
    fresh = open_engine(full_graph, config)
    query = ReachQuery(tuple(sources), tuple(targets))
    assert engine.run(query).pairs == fresh.run(query).pairs

    delete_slice = held_out[: max(1, len(held_out) // 2)]
    delete_start = time.perf_counter()
    for u, v in delete_slice:
        engine.delete_edge(u, v)
    engine.flush_updates()
    delete_seconds = time.perf_counter() - delete_start
    rows.append(
        {
            "operation": f"delete {len(delete_slice)} edges",
            "seconds": round(delete_seconds, 3),
            "per_update_ms": round(1000 * delete_seconds / len(delete_slice), 3),
        }
    )
    print(format_table(rows, title="incremental maintenance"))

    pairs = engine.run(query).pairs
    print(f"query after maintenance: {len(pairs)} reachable pairs")


if __name__ == "__main__":
    main()
