#!/usr/bin/env python
"""Quickstart: build a DSR index over a partitioned graph and query it.

Walks through the full public API:

1. generate a synthetic social graph (a scaled-down LiveJournal analogue);
2. partition it with the METIS-like min-cut partitioner;
3. build the distributed DSR index (equivalence sets + compound graphs);
4. run a set-reachability query and inspect the communication statistics;
5. apply a few incremental updates and query again.

Run with:  python examples/quickstart.py
"""

from repro import DSREngine
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.graph import generators


def main() -> None:
    print("=== Distributed Set Reachability: quickstart ===\n")

    # 1. A synthetic social graph (LiveJournal-like structure).
    graph = generators.social_graph(num_vertices=1500, avg_degree=8, seed=7)
    print(f"data graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2-3. Partition into 5 slaves and build the DSR index.
    engine = DSREngine(
        graph,
        num_partitions=5,
        partitioner="metis",
        local_index="msbfs",
        use_equivalence=True,
    )
    report = engine.build_index()
    print("\npartitioning:", engine.partition_summary())
    print(
        "index build: "
        f"{report.parallel_build_seconds:.3f}s simulated-parallel, "
        f"max compound graph {report.max_original_edges} edges "
        f"({report.max_dag_edges} after SCC condensation)"
    )

    # 4. A 10x10 set-reachability query.
    sources, targets = random_query(graph, 10, 10, seed=3)
    pairs = engine.query(sources, targets)
    stats = engine.last_query_stats
    print(f"\nquery |S|=10 |T|=10  ->  {len(pairs)} reachable pairs")
    print(format_table([stats], title="query statistics"))

    # 5. Incremental updates: insert two edges, delete one, query again.
    vertices = sorted(graph.vertices())
    engine.insert_edge(vertices[0], vertices[-1])
    engine.insert_edge(vertices[1], vertices[-2])
    engine.delete_edge(*next(iter(graph.edges())))
    pairs_after = engine.query(sources, targets)
    print(f"\nafter updates: {len(pairs_after)} reachable pairs")


if __name__ == "__main__":
    main()
