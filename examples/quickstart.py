#!/usr/bin/env python
"""Quickstart: build a DSR index over a partitioned graph and query it.

Walks through the full public API (:mod:`repro.api`):

1. generate a synthetic social graph (a scaled-down LiveJournal analogue);
2. describe the engine with a typed, serialisable :class:`DSRConfig`;
3. open it through the backend registry (:func:`open_engine`) — the config's
   ``backend`` field selects the execution strategy;
4. run a set-reachability :class:`ReachQuery` and inspect the communication
   statistics;
5. apply a few incremental updates and query again.

Run with:  python examples/quickstart.py
"""

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.graph import generators


def main() -> None:
    print("=== Distributed Set Reachability: quickstart ===\n")

    # 1. A synthetic social graph (LiveJournal-like structure).
    graph = generators.social_graph(num_vertices=1500, avg_degree=8, seed=7)
    print(f"data graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2-3. One typed config describes the whole engine; the registry opens a
    # ready-to-query backend from it.  The same dict round-trips through JSON
    # (DSRConfig.from_dict(config.to_dict()) == config), so the CLI, the
    # service layer and the benchmarks all build engines the same way.
    config = DSRConfig(
        backend="dsr",
        num_partitions=5,
        partitioner="metis",
        local_index="msbfs",
        use_equivalence=True,
    )
    engine = open_engine(graph, config)
    report = engine.last_build_report
    print("\npartitioning:", engine.partition_summary())
    print(
        "index build: "
        f"{report.parallel_build_seconds:.3f}s simulated-parallel, "
        f"max compound graph {report.max_original_edges} edges "
        f"({report.max_dag_edges} after SCC condensation)"
    )

    # 4. A 10x10 set-reachability query — one query object for every backend.
    sources, targets = random_query(graph, 10, 10, seed=3)
    query = ReachQuery(sources=tuple(sources), targets=tuple(targets))
    result = engine.run(query)
    print(f"\nquery |S|=10 |T|=10  ->  {result.num_pairs} reachable pairs")
    print(format_table([result.as_dict()], title="query statistics"))

    # 5. Incremental updates: insert two edges, delete one, query again.
    vertices = sorted(graph.vertices())
    engine.insert_edge(vertices[0], vertices[-1])
    engine.insert_edge(vertices[1], vertices[-2])
    engine.delete_edge(*next(iter(graph.edges())))
    pairs_after = engine.run(query).pairs
    print(f"\nafter updates: {len(pairs_after)} reachable pairs")


if __name__ == "__main__":
    main()
