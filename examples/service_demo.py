#!/usr/bin/env python
"""Online service demo: plan, cache and serve DSR queries under updates.

Walks through the serving layer on top of the batch engine:

1. build a DSR index over a synthetic web graph;
2. wrap it in a :class:`DSRService` (planner + result cache + worker pool);
3. fire a hot query workload through the admission queue and watch the
   cache hit rate climb;
4. apply incremental updates — the cache invalidates itself precisely, so
   answers stay exact;
5. talk to the very same service over a local socket with the JSON protocol.

Run with:  python examples/service_demo.py
"""

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.bench.reporting import format_table
from repro.bench.workloads import random_query
from repro.graph import generators
from repro.service import (
    DSRClient,
    DSRService,
    DSRSocketServer,
    StatsRequest,
    UpdateRequest,
)


def main() -> None:
    print("=== Distributed Set Reachability: online query service ===\n")

    # 1. Data graph + index (backward index too, so the planner has a choice).
    graph = generators.web_graph(num_vertices=1200, avg_degree=6, seed=11)
    engine = open_engine(
        graph,
        DSRConfig(num_partitions=4, local_index="msbfs", enable_backward=True),
    )
    print(f"data graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. The service: 4 workers, LRU cache of 512 exact answers.
    service = DSRService(engine, num_workers=4, cache_capacity=512)

    # 3. A hot workload: 5 distinct queries, each asked 8 times.  The service
    # accepts the same ReachQuery object the engine itself answers.
    pool = [random_query(graph, 10, 10, seed=seed) for seed in range(5)]
    futures = [
        service.submit(ReachQuery(tuple(sources), tuple(targets)))
        for _ in range(8)
        for sources, targets in pool
    ]
    answered = [future.result() for future in futures]
    hits = sum(1 for response in answered if response.cached)
    print(f"\nhot workload: {len(answered)} requests, {hits} served from cache")
    chosen = {response.direction for response in answered}
    print(f"planner directions used: {sorted(chosen)}")

    # 4. Updates invalidate precisely; answers stay exact.  Deleting an edge
    # is always a structural change, so the cache must go cold.
    removed = next(iter(graph.edges()))
    service.submit(UpdateRequest("delete-edge", *removed)).result()
    response = service.submit(
        ReachQuery(tuple(pool[0][0]), tuple(pool[0][1]))
    ).result()
    print(f"\nafter delete-edge: cached={response.cached} (cache was invalidated)")

    stats = service.handle(StatsRequest()).stats
    print(
        format_table(
            [
                {
                    "queries": stats["queries"],
                    "hit_rate": stats["cache_hit_rate"],
                    "p50_ms": stats.get("query_p50_ms", 0.0),
                    "p95_ms": stats.get("query_p95_ms", 0.0),
                    "messages": stats["messages_sent"],
                }
            ],
            title="serving metrics",
        )
    )

    # 5. The same service over a local socket.
    with DSRSocketServer(service) as server:
        host, port = server.address
        print(f"\nsocket server on {host}:{port}")
        with DSRClient(host, port) as client:
            remote = client.query(pool[0][0], pool[0][1])
            print(
                f"remote query over JSON protocol: {len(remote.pairs)} pairs, "
                f"cached={remote.cached}"
            )
    service.close()


if __name__ == "__main__":
    main()
