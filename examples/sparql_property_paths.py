#!/usr/bin/env python
"""SPARQL 1.1 property paths evaluated through DSR (paper Section 4.5-A).

Generates LUBM-like and Freebase-like RDF data, runs the paper's L1–L3 and
F1–F3 queries through the DSR-backed property-path engine and through the
Virtuoso-like baseline (cold and warm), and prints a Table-6-style comparison.

Run with:  python examples/sparql_property_paths.py
"""

import time

from repro.bench.reporting import format_table
from repro.sparql import PropertyPathEngine, TripleStore, VirtuosoLikeEngine
from repro.sparql.freebase_like import freebase_queries, generate_freebase_triples
from repro.sparql.lubm import generate_lubm_triples, lubm_queries


def run_suite(title: str, store: TripleStore, queries: dict) -> None:
    print(f"\n=== {title}: {store.num_triples} triples ===")
    dsr_engine = PropertyPathEngine(store, num_slaves=5, local_index="msbfs")
    cold = VirtuosoLikeEngine(store, warm=False)
    warm = VirtuosoLikeEngine(store, warm=True)

    rows = []
    for name, text in queries.items():
        # Pre-build the DSR index outside the timed region (the paper builds
        # its index offline as well).
        dsr_engine.warm_up(text)
        start = time.perf_counter()
        dsr_result = dsr_engine.execute(text)
        dsr_seconds = time.perf_counter() - start

        cold_result = cold.execute(text)
        warm.execute(text)  # first run fills the memo ("warming")
        warm_result = warm.execute(text)

        if dsr_result.num_results != cold_result.num_results:
            raise AssertionError(f"{name}: DSR and baseline disagree")
        rows.append(
            {
                "query": name,
                "results": dsr_result.num_results,
                "dsr_s": round(dsr_seconds, 4),
                "virtuoso_cold_s": round(cold_result.seconds, 4),
                "virtuoso_warm_s": round(warm_result.seconds, 4),
            }
        )
    print(format_table(rows))


def main() -> None:
    lubm_store = TripleStore()
    lubm_store.add_all(
        generate_lubm_triples(
            num_universities=8,
            departments_per_university=6,
            groups_per_department=4,
            students_per_department=10,
            seed=0,
        )
    )
    run_suite("LUBM-like", lubm_store, lubm_queries())

    freebase_store = TripleStore()
    freebase_store.add_all(
        generate_freebase_triples(
            num_countries=4,
            states_per_country=5,
            cities_per_state=6,
            people_per_city=4,
            seed=0,
        )
    )
    run_suite("Freebase-like", freebase_store, freebase_queries())


if __name__ == "__main__":
    main()
