#!/usr/bin/env python
"""Community-connectedness analysis via DSR (paper Section 4.5-B, Table 7).

Detects communities in a synthetic social network with the Louvain method,
samples representatives from two communities and finds every reachable pair
between them with a single DSR query — the "which billionaires also fund
non-profits" use case from the paper's introduction.

Run with:  python examples/social_communities.py
"""

from repro.analytics import CommunityConnectedness
from repro.bench.reporting import format_table
from repro.graph import generators


def main() -> None:
    graph = generators.community_graph(
        num_communities=8, community_size=60, intra_prob=0.07, inter_prob=0.003, seed=11
    )
    print(f"social graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    analysis = CommunityConnectedness(graph, num_partitions=4, seed=3)
    detection = analysis.communities
    print(
        f"Louvain found {detection.num_communities} communities "
        f"(modularity {detection.modularity:.3f}); "
        f"largest sizes: {[size for _, size in detection.communities_by_size()[:5]]}"
    )

    rows = []
    for representatives in (10, 25, 50):
        report = analysis.analyse(representatives=representatives, rng_seed=representatives)
        rows.append(
            {
                "|S|x|T|": f"{report.num_sources}x{report.num_targets}",
                "communities": f"{report.community_a} -> {report.community_b}",
                "reachable_pairs": report.num_pairs,
                "seconds": round(report.seconds, 4),
            }
        )
    print(format_table(rows, title="community connectedness (Table-7 style)"))


if __name__ == "__main__":
    main()
