"""Pregel-style bulk-synchronous-parallel engines.

Two engines are provided:

* :class:`PregelEngine` — the classical vertex-centric model (Pregel, Apache
  Giraph): in every superstep each *active* vertex (one that received
  messages, or every vertex in superstep 0) runs a vertex program that may
  update its value and send messages; messages are delivered at the next
  superstep barrier.
* :class:`PartitionCentricEngine` — the graph-centric model of Giraph++
  (Tian et al. [31]): the compute function is invoked once per *partition*
  per superstep, sees all messages addressed to its vertices at once and may
  propagate information inside the partition without spending supersteps;
  only cross-partition messages hit the network.

Both engines count the statistics reported in Figures 5 and 8: supersteps,
network messages (messages whose endpoints live in different partitions) and
their byte volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.message import payload_size
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


@dataclass
class PregelStats:
    """Execution statistics of one BSP run."""

    supersteps: int = 0
    network_messages: int = 0
    network_bytes: int = 0
    local_messages: int = 0

    @property
    def kilobytes(self) -> float:
        return self.network_bytes / 1024.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "supersteps": self.supersteps,
            "network_messages": self.network_messages,
            "network_kilobytes": round(self.kilobytes, 3),
            "local_messages": self.local_messages,
        }


class VertexContext:
    """What a vertex program can see and do during one superstep."""

    def __init__(self, engine: "PregelEngine", vertex: int) -> None:
        self._engine = engine
        self.vertex = vertex

    @property
    def superstep(self) -> int:
        return self._engine.superstep

    @property
    def value(self) -> Any:
        return self._engine.values[self.vertex]

    @value.setter
    def value(self, new_value: Any) -> None:
        self._engine.values[self.vertex] = new_value

    def out_neighbors(self) -> Tuple[int, ...]:
        """Out-neighbours from the engine's CSR snapshot (frozen per run)."""
        return self._engine.adjacency[self.vertex]

    def send_message(self, destination: int, payload: Any) -> None:
        self._engine.enqueue(self.vertex, destination, payload)


class PregelEngine:
    """Vertex-centric BSP execution (Pregel / Apache Giraph)."""

    def __init__(
        self,
        graph: DiGraph,
        partitioning: Optional[GraphPartitioning] = None,
        max_supersteps: int = 10_000,
    ) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.max_supersteps = max_supersteps
        self.values: Dict[int, Any] = {}
        self.stats = PregelStats()
        self.superstep = 0
        self._incoming: Dict[int, List[Any]] = {}
        self._next_incoming: Dict[int, List[Any]] = {}
        self._csr: Optional[CSRGraph] = None

    @property
    def csr(self) -> CSRGraph:
        """The CSR snapshot all vertex programs traverse during :meth:`run`."""
        if self._csr is None:
            self._csr = self.graph.csr()
        return self._csr

    @property
    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """The snapshot's cached id-space successor table (see CSRGraph)."""
        return self.csr.successor_table()

    def _crosses_partition(self, u: int, v: int) -> bool:
        if self.partitioning is None:
            return True
        return self.partitioning.partition_of(u) != self.partitioning.partition_of(v)

    def enqueue(self, source: int, destination: int, payload: Any) -> None:
        """Queue a message for delivery at the next superstep."""
        self._next_incoming.setdefault(destination, []).append(payload)
        if self._crosses_partition(source, destination):
            self.stats.network_messages += 1
            self.stats.network_bytes += payload_size(payload)
        else:
            self.stats.local_messages += 1

    def run(
        self,
        vertex_program: Callable[[VertexContext, List[Any]], None],
        initial_values: Dict[int, Any],
    ) -> PregelStats:
        """Run supersteps until no messages remain (or the cap is hit)."""
        self.values = dict(initial_values)
        self.stats = PregelStats()
        self.superstep = 0
        self._incoming = {}
        self._next_incoming = {}
        # One CSR snapshot per run: the graph must not mutate mid-computation.
        # ctx.out_neighbors() serves cached tuples from the snapshot's
        # successor table (translated once here, not per visit).
        self._csr = self.graph.csr()
        self._csr.successor_table()

        while self.superstep < self.max_supersteps:
            if self.superstep == 0:
                active = list(self.graph.vertices())
            else:
                active = list(self._incoming)
                if not active:
                    break
            self.stats.supersteps += 1
            for vertex in active:
                messages = self._incoming.pop(vertex, [])
                vertex_program(VertexContext(self, vertex), messages)
            # Superstep barrier.
            self._incoming = self._next_incoming
            self._next_incoming = {}
            self.superstep += 1
        return self.stats


class PartitionCentricEngine:
    """Graph-centric BSP execution (Giraph++).

    The partition program receives, per superstep, the mapping
    ``{vertex: [messages]}`` restricted to its own vertices and a ``send``
    callable for addressing vertices of other partitions.  Messages to local
    vertices should be handled inside the partition program itself (that is
    exactly the point of the graph-centric model).
    """

    def __init__(
        self,
        graph: DiGraph,
        partitioning: GraphPartitioning,
        max_supersteps: int = 10_000,
    ) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.max_supersteps = max_supersteps
        self.stats = PregelStats()
        self.superstep = 0
        self._incoming: Dict[int, List[Any]] = {}
        self._next_incoming: Dict[int, List[Any]] = {}
        # Overridable so that synthetic addresses (e.g. equivalence-class
        # vertices in Giraph++wEq) can be mapped onto a home partition.
        self.resolve_partition: Callable[[int], int] = partitioning.partition_of

    def send(self, source: int, destination: int, payload: Any) -> None:
        """Send a message to a vertex (delivered at the next superstep)."""
        self._next_incoming.setdefault(destination, []).append(payload)
        if self.resolve_partition(source) != self.resolve_partition(destination):
            self.stats.network_messages += 1
            self.stats.network_bytes += payload_size(payload)
        else:
            self.stats.local_messages += 1

    def run(
        self,
        partition_program: Callable[["PartitionCentricEngine", int, Dict[int, List[Any]]], None],
    ) -> PregelStats:
        """Run the partition programs superstep by superstep until quiescence."""
        self.stats = PregelStats()
        self.superstep = 0
        self._incoming = {}
        self._next_incoming = {}

        while self.superstep < self.max_supersteps:
            if self.superstep > 0 and not self._incoming:
                break
            self.stats.supersteps += 1
            for pid in range(self.partitioning.num_partitions):
                local_vertices = self.partitioning.vertices_of(pid)
                inbox = {
                    vertex: self._incoming.pop(vertex)
                    for vertex in list(self._incoming)
                    if vertex in local_vertices
                }
                partition_program(self, pid, inbox)
            # Superstep barrier.
            self._incoming = self._next_incoming
            self._next_incoming = {}
            self.superstep += 1
        return self.stats
