"""DSR on vertex-centric Giraph (Appendix 8.4.1).

Every vertex keeps the set of query sources that reach it.  In superstep 0
each source vertex adds itself and notifies its out-neighbours; afterwards a
vertex that learns about *new* sources forwards exactly those to all its
out-neighbours.  The computation needs as many supersteps as the longest
shortest source-to-anywhere path — the diameter in the worst case — which is
the iterative behaviour the DSR index eliminates.

The vertex program's ``ctx.out_neighbors()`` reads the engine's per-run CSR
snapshot (:mod:`repro.graph.csr`), not the mutable adjacency sets.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.core.query import QueryResult
from repro.giraph.pregel import PregelEngine, PregelStats, VertexContext
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


class GiraphDSR:
    """Vertex-centric evaluation of DSR queries."""

    def __init__(
        self,
        graph: DiGraph,
        partitioning: Optional[GraphPartitioning] = None,
        max_supersteps: int = 10_000,
    ) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.max_supersteps = max_supersteps
        self.last_stats: Optional[PregelStats] = None

    def query(self, sources: Iterable[int], targets: Iterable[int]) -> QueryResult:
        source_set = set(sources)
        target_set = set(targets)
        engine = PregelEngine(
            self.graph, self.partitioning, max_supersteps=self.max_supersteps
        )

        def program(ctx: VertexContext, messages: List[int]) -> None:
            if ctx.superstep == 0:
                new_sources = {ctx.vertex} if ctx.vertex in source_set else set()
            else:
                new_sources = set(messages) - ctx.value
            if not new_sources:
                return
            ctx.value = ctx.value | new_sources
            for neighbour in ctx.out_neighbors():
                for source in new_sources:
                    ctx.send_message(neighbour, source)

        initial = {vertex: set() for vertex in self.graph.vertices()}
        # Seed: each source reaches itself.
        stats = engine.run(program, initial)
        self.last_stats = stats

        pairs: Set[Tuple[int, int]] = set()
        for target in target_set:
            if not self.graph.has_vertex(target):
                continue
            for source in engine.values.get(target, set()):
                pairs.add((source, target))
            if target in source_set:
                pairs.add((target, target))
        return QueryResult(
            pairs=pairs,
            messages_sent=stats.network_messages,
            bytes_sent=stats.network_bytes,
            rounds=stats.supersteps,
        )

    def reachable(self, source: int, target: int) -> bool:
        return (source, target) in self.query([source], [target]).pairs
