"""DSR on Giraph++ with the equivalence-set optimisation (Appendix 8.4.3).

The paper prepares the input graph for this variant by attaching, to every
boundary-crossing edge, the *in-virtual vertex* (forward-equivalence class) of
the target boundary.  During the BSP computation, newly learnt sources are
then sent once per equivalence class instead of once per boundary neighbour;
the receiving partition expands the class back to its member vertices before
the local propagation.  This reduces the number and volume of network messages
(Figure 8) while leaving the superstep structure of Giraph++ unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.equivalence import ClassIdAllocator, EquivalenceClass, compute_forward_classes
from repro.core.query import QueryResult
from repro.giraph.giraphpp_dsr import GiraphPlusPlusDSR
from repro.giraph.pregel import PartitionCentricEngine, PregelStats
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


class GiraphPlusPlusEqDSR(GiraphPlusPlusDSR):
    """Giraph++ DSR with class-addressed boundary messages."""

    def __init__(
        self,
        graph: DiGraph,
        partitioning: GraphPartitioning,
        max_supersteps: int = 10_000,
    ) -> None:
        super().__init__(graph, partitioning, max_supersteps=max_supersteps)
        self._prepare_equivalence()

    # ------------------------------------------------------------------ #
    def _prepare_equivalence(self) -> None:
        """Precompute forward classes and the per-edge class routing."""
        highest = max(self.graph.vertices(), default=-1)
        allocator = ClassIdAllocator(highest + 1)
        self._class_members: Dict[int, Tuple[int, ...]] = {}
        # member boundary vertex -> class id (per its home partition)
        member_to_class: Dict[int, int] = {}

        for pid in range(self.partitioning.num_partitions):
            local_graph = self.partitioning.local_subgraph(pid)
            in_boundaries = self.partitioning.in_boundaries(pid)
            out_boundaries = self.partitioning.out_boundaries(pid)
            classes: List[EquivalenceClass] = compute_forward_classes(
                local_graph, in_boundaries, out_boundaries, pid, allocator
            )
            for cls in classes:
                self._class_members[cls.class_id] = tuple(sorted(cls.members))
                for member in cls.members:
                    member_to_class[member] = cls.class_id

        # For every cut edge (u, v): route through v's class when it has one,
        # otherwise keep addressing the member directly (overlap boundaries).
        self._route: Dict[Tuple[int, int], int] = {}
        self._class_home: Dict[int, int] = {}
        for u, v in self.partitioning.cut_edges():
            destination = member_to_class.get(v, v)
            self._route[(u, v)] = destination
            self._class_home[destination] = self.partitioning.partition_of(v)

    # ------------------------------------------------------------------ #
    def _emit_remote(
        self,
        engine: PartitionCentricEngine,
        pid: int,
        gained: Dict[int, Set[int]],
    ) -> None:
        """Send newly gained sources once per (equivalence class, source).

        Class-level routing is bypassed for classes containing a query target:
        marking every member of a class as "reached" is harmless for onward
        propagation (the members are forward-equivalent) but would produce
        false positives if one of those members is itself a target, so those
        edges keep member-level addressing.
        """
        local_vertices = self.partitioning.vertices_of(pid)
        emitted: Set[Tuple[int, int]] = set()
        adjacency = self._csr.successor_table()
        for vertex, sources in gained.items():
            for neighbour in adjacency[vertex]:
                if neighbour in local_vertices:
                    continue
                destination = self._route[(vertex, neighbour)]
                members = self._class_members.get(destination)
                if members is not None and any(
                    member in self._current_targets for member in members
                ):
                    destination = neighbour
                for source in sources:
                    if (destination, source) in emitted:
                        continue
                    emitted.add((destination, source))
                    engine.send(vertex, destination, source)

    def query(self, sources: Iterable[int], targets: Iterable[int]) -> QueryResult:
        source_set = set(sources)
        target_set = set(targets)
        self._current_targets = target_set
        self._csr = self.graph.csr()
        self.values = {vertex: set() for vertex in self.graph.vertices()}
        engine = PartitionCentricEngine(
            self.graph, self.partitioning, max_supersteps=self.max_supersteps
        )

        def partition_of(vertex: int) -> int:
            # Class vertices live at the partition that owns their members.
            if vertex in self._class_home:
                return self._class_home[vertex]
            return self.partitioning.partition_of(vertex)

        engine.resolve_partition = partition_of

        def program(
            eng: PartitionCentricEngine, pid: int, inbox: Dict[int, List[int]]
        ) -> None:
            if eng.superstep == 0:
                seeds = {
                    vertex: {vertex}
                    for vertex in self.partitioning.vertices_of(pid)
                    if vertex in source_set
                }
            else:
                seeds = {}
                for vertex, messages in inbox.items():
                    seeds.setdefault(vertex, set()).update(messages)
            if not seeds:
                return
            gained = self._local_process(pid, seeds)
            self._emit_remote(eng, pid, gained)

        # Run a custom superstep loop because class-addressed messages must be
        # expanded to member vertices of the receiving partition.
        stats = self._run_with_class_expansion(engine, program, partition_of)
        self.last_stats = stats

        pairs: Set[Tuple[int, int]] = set()
        for target in target_set:
            for source in self.values.get(target, set()):
                pairs.add((source, target))
            if target in source_set:
                pairs.add((target, target))
        return QueryResult(
            pairs=pairs,
            messages_sent=stats.network_messages,
            bytes_sent=stats.network_bytes,
            rounds=stats.supersteps,
        )

    def _run_with_class_expansion(self, engine, program, partition_of) -> PregelStats:
        """Superstep loop that expands class-addressed messages on delivery."""
        engine.stats = PregelStats()
        engine.superstep = 0
        engine._incoming = {}
        engine._next_incoming = {}

        while engine.superstep < engine.max_supersteps:
            if engine.superstep > 0 and not engine._incoming:
                break
            engine.stats.supersteps += 1
            for pid in range(self.partitioning.num_partitions):
                inbox: Dict[int, List[int]] = {}
                for destination in list(engine._incoming):
                    if partition_of(destination) != pid:
                        continue
                    messages = engine._incoming.pop(destination)
                    if destination in self._class_members:
                        for member in self._class_members[destination]:
                            inbox.setdefault(member, []).extend(messages)
                    else:
                        inbox.setdefault(destination, []).extend(messages)
                program(engine, pid, inbox)
            engine._incoming = engine._next_incoming
            engine._next_incoming = {}
            engine.superstep += 1
        return engine.stats
