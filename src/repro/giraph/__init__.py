"""Pregel/Giraph-style baselines.

Contract: iterative BSP evaluation of the same DSR queries — no index, one
superstep per frontier hop (vertex-centric) or per partition crossing
(graph-centric) — used as the comparison baselines for Figures 5 and 8.
Compute functions traverse a per-run CSR snapshot of the data graph; results
must match the indexed engine pair-for-pair (see ``docs/ARCHITECTURE.md``).

The paper compares its DSR index against three implementations on top of
vertex-centric / graph-centric BSP engines (Appendix 8.4):

* **Giraph** — purely vertex-centric: every vertex propagates the set of query
  sources that reach it to its neighbours, one superstep per hop.
* **Giraph++** — graph-centric ("think like a graph"): each partition first
  propagates new sources internally with a local computation, then sends
  messages only across partition boundaries.
* **Giraph++wEq** — Giraph++ extended with the equivalence-set optimisation:
  boundary-crossing messages are addressed to in-virtual vertices (class
  representatives) instead of every individual neighbour.

The BSP engine counts supersteps, messages and bytes, which is what
Figures 5 and 8 of the paper report.
"""

from repro.giraph.giraph_dsr import GiraphDSR
from repro.giraph.giraphpp_dsr import GiraphPlusPlusDSR
from repro.giraph.giraphpp_eq_dsr import GiraphPlusPlusEqDSR
from repro.giraph.pregel import PregelEngine, PregelStats

__all__ = [
    "PregelEngine",
    "PregelStats",
    "GiraphDSR",
    "GiraphPlusPlusDSR",
    "GiraphPlusPlusEqDSR",
]
