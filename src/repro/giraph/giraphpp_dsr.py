"""DSR on graph-centric Giraph++ (Appendix 8.4.2).

Like the vertex-centric program, every vertex accumulates the set of query
sources reaching it, but each partition propagates newly learnt sources
*transitively inside the partition* within the same superstep (``localProcess``
in the paper's listing) and only boundary-crossing messages cost a superstep.
The number of supersteps therefore drops from the graph diameter to the number
of times a path alternates between partitions.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.query import QueryResult
from repro.giraph.pregel import PartitionCentricEngine, PregelStats
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


class GiraphPlusPlusDSR:
    """Graph-centric evaluation of DSR queries."""

    def __init__(
        self,
        graph: DiGraph,
        partitioning: GraphPartitioning,
        max_supersteps: int = 10_000,
    ) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.max_supersteps = max_supersteps
        self.last_stats: Optional[PregelStats] = None
        # value[v] = set of query sources known to reach v.
        self.values: Dict[int, Set[int]] = {}
        # CSR snapshot pinned at the start of each query(); all local
        # propagation reads it.  Not built here: constructing eagerly would
        # be wasted work if the graph mutates before the first query.
        self._csr: Optional[CSRGraph] = None

    # ------------------------------------------------------------------ #
    def _local_process(
        self, pid: int, seeds: Dict[int, Set[int]]
    ) -> Dict[int, Set[int]]:
        """Propagate new sources transitively inside partition ``pid``.

        ``seeds`` maps vertices to the set of sources newly learnt for them.
        Returns the per-vertex sets of sources that became new during this
        local propagation (including the seeds themselves).
        """
        local_vertices = self.partitioning.vertices_of(pid)
        gained: Dict[int, Set[int]] = {}
        queue = deque()
        for vertex, sources in seeds.items():
            fresh = sources - self.values[vertex]
            if fresh:
                self.values[vertex] |= fresh
                gained.setdefault(vertex, set()).update(fresh)
                queue.append((vertex, fresh))
        adjacency = self._csr.successor_table()
        while queue:
            vertex, fresh = queue.popleft()
            for neighbour in adjacency[vertex]:
                if neighbour not in local_vertices:
                    continue
                new_for_neighbour = fresh - self.values[neighbour]
                if new_for_neighbour:
                    self.values[neighbour] |= new_for_neighbour
                    gained.setdefault(neighbour, set()).update(new_for_neighbour)
                    queue.append((neighbour, new_for_neighbour))
        return gained

    def _emit_remote(
        self,
        engine: PartitionCentricEngine,
        pid: int,
        gained: Dict[int, Set[int]],
    ) -> None:
        """Send newly gained sources across partition-boundary edges."""
        local_vertices = self.partitioning.vertices_of(pid)
        adjacency = self._csr.successor_table()
        for vertex, sources in gained.items():
            for neighbour in adjacency[vertex]:
                if neighbour in local_vertices:
                    continue
                for source in sources:
                    engine.send(vertex, neighbour, source)

    # ------------------------------------------------------------------ #
    def query(self, sources: Iterable[int], targets: Iterable[int]) -> QueryResult:
        source_set = set(sources)
        target_set = set(targets)
        self._csr = self.graph.csr()
        self.values = {vertex: set() for vertex in self.graph.vertices()}
        engine = PartitionCentricEngine(
            self.graph, self.partitioning, max_supersteps=self.max_supersteps
        )

        def program(
            eng: PartitionCentricEngine, pid: int, inbox: Dict[int, List[int]]
        ) -> None:
            if eng.superstep == 0:
                seeds = {
                    vertex: {vertex}
                    for vertex in self.partitioning.vertices_of(pid)
                    if vertex in source_set
                }
            else:
                seeds = {vertex: set(messages) for vertex, messages in inbox.items()}
            if not seeds:
                return
            gained = self._local_process(pid, seeds)
            self._emit_remote(eng, pid, gained)

        stats = engine.run(program)
        self.last_stats = stats

        pairs: Set[Tuple[int, int]] = set()
        for target in target_set:
            for source in self.values.get(target, set()):
                pairs.add((source, target))
            if target in source_set:
                pairs.add((target, target))
        return QueryResult(
            pairs=pairs,
            messages_sent=stats.network_messages,
            bytes_sent=stats.network_bytes,
            rounds=stats.supersteps,
        )

    def reachable(self, source: int, target: int) -> bool:
        return (source, target) in self.query([source], [target]).pairs
