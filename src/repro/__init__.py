"""repro — a full reproduction of "Distributed Set Reachability" (SIGMOD 2016).

The package implements the paper's DSR index and query protocol together with
every substrate it depends on: a graph kernel, partitioners, centralized
reachability indexes, a simulated message-passing cluster, Pregel/Giraph-style
baselines, a SPARQL 1.1 property-path application and a social-network
community application.

Quickstart
----------
>>> from repro import DSREngine
>>> from repro.graph import generators
>>> graph = generators.social_graph(1000, avg_degree=6, seed=7)
>>> engine = DSREngine(graph, num_partitions=4, local_index="msbfs")
>>> _ = engine.build_index()
>>> pairs = engine.query(sources=[0, 1, 2], targets=[500, 600])
"""

from repro.core.engine import DSREngine
from repro.core.fan import DSRFan
from repro.core.index import DSRIndex
from repro.core.naive import DSRNaive
from repro.core.query import QueryResult
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning, make_partitioning

__version__ = "1.1.0"

__all__ = [
    "DSREngine",
    "DSRIndex",
    "DSRFan",
    "DSRNaive",
    "QueryResult",
    "DiGraph",
    "GraphPartitioning",
    "make_partitioning",
    "__version__",
]
