"""repro — a full reproduction of "Distributed Set Reachability" (SIGMOD 2016).

The package implements the paper's DSR index and query protocol together with
every substrate it depends on: a graph kernel, partitioners, centralized
reachability indexes, a simulated message-passing cluster, Pregel/Giraph-style
baselines, a SPARQL 1.1 property-path application and a social-network
community application.

The public surface is the :mod:`repro.api` package: a typed
:class:`~repro.api.config.DSRConfig`, a backend registry behind
:func:`~repro.api.backends.open_engine`, and one
:class:`~repro.api.query.ReachQuery` object that every backend answers.

Quickstart
----------
>>> from repro.api import DSRConfig, ReachQuery, open_engine
>>> from repro.graph import generators
>>> graph = generators.social_graph(1000, avg_degree=6, seed=7)
>>> engine = open_engine(graph, DSRConfig(num_partitions=4, local_index="msbfs"))
>>> result = engine.run(ReachQuery(sources=(0, 1, 2), targets=(500, 600)))
"""

from repro.api import (
    Backend,
    ConfigError,
    DSRConfig,
    QueryError,
    ReachQuery,
    UnknownBackendError,
    available_backends,
    open_engine,
    register_backend,
)
from repro.core.engine import DSREngine
from repro.core.fan import DSRFan
from repro.core.index import DSRIndex
from repro.core.naive import DSRNaive
from repro.core.query import QueryResult
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning, make_partitioning

__version__ = "1.7.0"

__all__ = [
    "Backend",
    "ConfigError",
    "DSRConfig",
    "DSREngine",
    "DSRIndex",
    "DSRFan",
    "DSRNaive",
    "DiGraph",
    "GraphPartitioning",
    "QueryError",
    "QueryResult",
    "ReachQuery",
    "UnknownBackendError",
    "available_backends",
    "make_partitioning",
    "open_engine",
    "register_backend",
    "__version__",
]
