"""Command-line interface for the DSR reproduction.

The CLI exposes the most common workflows without writing any Python:

* ``repro-dsr info <dataset>`` — generate a dataset analogue and print its
  statistics (vertices, edges, cut sizes under both partitioners).
* ``repro-dsr query <dataset>`` — open any registered backend
  (``--backend dsr|giraph|giraphpp|giraphpp-eq|naive|fan``) and run a random
  set-reachability query, printing the Table-3-style measurements.
* ``repro-dsr compare <dataset>`` — run the same query through several
  approaches (DSR, Giraph variants, DSR-Fan, DSR-Naïve) and print a
  comparison table.
* ``repro-dsr sparql <suite>`` — run the paper's property-path queries (L1–L3
  or F1–F3) through the DSR-backed engine and the Virtuoso-like baseline.
* ``repro-dsr communities`` — run the community-connectedness application.
* ``repro-dsr serve <dataset>`` — build an index and run the online query
  service (planner + result cache + concurrent workers), either listening on
  a local socket or driving a built-in mixed workload (``--self-test``);
  ``--replicas N`` serves a workload-adaptive fleet of N heterogeneous
  replicas with cost-routed reads instead of a single engine; ``--async``
  swaps the thread-per-connection front door for the asyncio binary-framed
  server (backpressure watermarks, per-tenant rate limits).
* ``repro-dsr worker-host`` — run a standalone TCP worker host that serves
  hydrated shards to ``executor="tcp"`` engines (``--worker-hosts`` on
  ``serve``).
* ``repro-dsr stats`` — print the observability registries in Prometheus
  text form: either scraped from a running server (``--connect HOST:PORT``)
  or from a built-in demo that runs traced queries and a background epoch
  flush against a freshly built engine.

Every command accepts ``--scale`` and ``--seed`` so runs are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analytics.connectedness import CommunityConnectedness
from repro.api import DSRConfig, ReachQuery, available_backends, open_engine
from repro.bench.datasets import DATASETS, load_dataset
from repro.bench.reporting import format_table
from repro.bench.runner import ALL_APPROACHES, ExperimentRunner
from repro.bench.workloads import random_query
from repro.cluster.executors import EXECUTOR_NAMES
from repro.cluster.tcp import WorkerHost
from repro.graph import generators
from repro.service import (
    DSRAsyncServer,
    DSRService,
    DSRSocketServer,
    ErrorResponse,
    QueryRequest,
    UpdateRequest,
)
from repro.service.server import DSRClient
from repro.partition.partition import make_partitioning
from repro.sparql.baseline import VirtuosoLikeEngine
from repro.sparql.engine import PropertyPathEngine
from repro.sparql.freebase_like import freebase_queries, generate_freebase_triples
from repro.sparql.lubm import generate_lubm_triples, lubm_queries
from repro.sparql.rdf import TripleStore


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsr",
        description="Distributed Set Reachability (SIGMOD 2016) reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="print dataset statistics")
    info.add_argument("dataset", choices=sorted(DATASETS))
    _add_common_arguments(info)

    query = subparsers.add_parser("query", help="run one set-reachability query")
    query.add_argument("dataset", choices=sorted(DATASETS))
    query.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default="dsr",
        help="execution strategy from the repro.api backend registry",
    )
    query.add_argument("--partitions", type=int, default=5)
    query.add_argument("--partitioner", choices=["metis", "hash"], default="metis")
    query.add_argument(
        "--local-index",
        choices=["dfs", "msbfs", "ferrari", "grail", "closure"],
        default="msbfs",
    )
    query.add_argument("--sources", type=int, default=10)
    query.add_argument("--targets", type=int, default=10)
    query.add_argument("--no-equivalence", action="store_true")
    _add_common_arguments(query)

    compare = subparsers.add_parser("compare", help="compare DSR against baselines")
    compare.add_argument("dataset", choices=sorted(DATASETS))
    compare.add_argument("--partitions", type=int, default=5)
    compare.add_argument(
        "--approaches",
        default="dsr,dsr-noeq,giraph++weq,giraph++,giraph,dsr-fan",
        help="comma-separated subset of: " + ", ".join(ALL_APPROACHES),
    )
    compare.add_argument("--sources", type=int, default=10)
    compare.add_argument("--targets", type=int, default=10)
    _add_common_arguments(compare)

    sparql = subparsers.add_parser("sparql", help="run the property-path suites")
    sparql.add_argument("suite", choices=["lubm", "freebase"])
    sparql.add_argument("--slaves", type=int, default=5)
    _add_common_arguments(sparql)

    communities = subparsers.add_parser(
        "communities", help="run the community-connectedness application"
    )
    communities.add_argument("--representatives", type=int, default=10)
    communities.add_argument("--partitions", type=int, default=4)
    _add_common_arguments(communities)

    serve = subparsers.add_parser("serve", help="run the online DSR query service")
    serve.add_argument("dataset", choices=sorted(DATASETS))
    serve.add_argument("--partitions", type=int, default=5)
    serve.add_argument(
        "--local-index",
        choices=["dfs", "msbfs", "ferrari", "grail", "closure"],
        default="msbfs",
    )
    serve.add_argument(
        "--backward", action="store_true",
        help="also build the mirror index so the planner can go backward",
    )
    serve.add_argument(
        "--replicas", type=int, default=None,
        help="serve a workload-adaptive fleet of N heterogeneous replicas "
        "instead of a single engine (see docs/FLEET.md)",
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--cache-capacity", type=int, default=1024)
    serve.add_argument("--cache-ttl", type=float, default=None)
    serve.add_argument("--no-cache", action="store_true")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument(
        "--max-requests", type=int, default=None,
        help="stop after serving this many socket requests",
    )
    serve.add_argument(
        "--self-test", action="store_true",
        help="drive a built-in mixed query/update workload instead of listening",
    )
    serve.add_argument(
        "--async", dest="async_server", action="store_true",
        help="serve with the asyncio binary-framed front door "
        "(connection multiplexing, backpressure, per-tenant rate limits)",
    )
    serve.add_argument(
        "--high-watermark", type=int, default=None,
        help="async only: in-flight requests before reads pause "
        "(default: the admission queue depth)",
    )
    serve.add_argument(
        "--low-watermark", type=int, default=None,
        help="async only: in-flight requests before paused reads resume "
        "(default: half the high watermark)",
    )
    serve.add_argument(
        "--rate-limit-qps", type=float, default=None,
        help="async only: per-tenant token-bucket refill rate (default: off)",
    )
    serve.add_argument(
        "--rate-limit-burst", type=int, default=None,
        help="async only: per-tenant token-bucket burst size "
        "(default: equal to the qps)",
    )
    serve.add_argument(
        "--executor", choices=sorted(EXECUTOR_NAMES), default="serial",
        help="executor backend the engine runs cluster phases on",
    )
    serve.add_argument(
        "--worker-hosts", default=None, metavar="HOST:PORT,HOST:PORT",
        help="executor=tcp only: comma-separated external worker hosts "
        "(started with `repro-dsr worker-host`); rank r maps to host r %% N",
    )
    serve.add_argument(
        "--health-interval", type=float, default=None, metavar="SECONDS",
        help="probe fleet replicas / tcp worker hosts every SECONDS behind "
        "per-target circuit breakers (default: off; see docs/RESILIENCE.md)",
    )
    _add_common_arguments(serve)

    worker_host = subparsers.add_parser(
        "worker-host",
        help="run a standalone TCP worker host for executor=tcp engines",
    )
    worker_host.add_argument("--host", default="127.0.0.1")
    worker_host.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    worker_host.add_argument(
        "--allow-shutdown", action="store_true",
        help="let connected masters stop this host with a shutdown message",
    )

    stats = subparsers.add_parser(
        "stats", help="print the observability registries (Prometheus text)"
    )
    stats.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="scrape a running `repro-dsr serve` server instead of the demo",
    )
    stats.add_argument(
        "dataset", nargs="?", choices=sorted(DATASETS), default="amazon",
        help="dataset for the built-in demo (ignored with --connect)",
    )
    stats.add_argument("--partitions", type=int, default=4)
    stats.add_argument(
        "--executor", choices=sorted(EXECUTOR_NAMES), default="serial",
        help="executor backend the demo engine runs on",
    )
    stats.add_argument(
        "--no-trace", action="store_true",
        help="skip printing the demo query's span trace",
    )
    _add_common_arguments(stats)
    # The demo is meant to finish in seconds, so default to a small slice.
    stats.set_defaults(scale=0.2)

    return parser


# ---------------------------------------------------------------------- #
# command implementations
# ---------------------------------------------------------------------- #
def _command_info(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    spec = DATASETS[args.dataset]
    rows = []
    for strategy in ("hash", "metis"):
        partitioning = make_partitioning(graph, 5, strategy=strategy, seed=args.seed)
        summary = partitioning.summary()
        rows.append(
            {
                "partitioner": strategy,
                "cut_edges": summary["cut_edges"],
                "cut_fraction": round(summary["cut_fraction"], 3),
                "edge_balance": summary["edge_balance"],
            }
        )
    print(
        f"{spec.paper_name} analogue — {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges ({spec.description})"
    )
    print(format_table(rows, title="partitioning (5 slaves)"))
    return 0


def _command_query(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = DSRConfig(
        backend=args.backend,
        num_partitions=args.partitions,
        partitioner=args.partitioner,
        local_index=args.local_index,
        use_equivalence=not args.no_equivalence,
        seed=args.seed,
    )
    engine = open_engine(graph, config)
    report = getattr(engine, "last_build_report", None)
    if report is not None:
        print(
            f"index: {report.parallel_build_seconds:.3f}s simulated-parallel build, "
            f"max compound graph {report.max_original_edges} edges "
            f"({report.max_dag_edges} condensed)"
        )
    sources, targets = random_query(graph, args.sources, args.targets, seed=args.seed)
    result = engine.run(ReachQuery(tuple(sources), tuple(targets)))
    print(
        format_table(
            [result.as_dict()],
            title=f"{args.backend} query |S|={args.sources} |T|={args.targets}",
        )
    )
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    approaches = [name.strip() for name in args.approaches.split(",") if name.strip()]
    unknown = [name for name in approaches if name not in ALL_APPROACHES]
    if unknown:
        print(f"unknown approaches: {', '.join(unknown)}", file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    runner = ExperimentRunner(
        graph, num_partitions=args.partitions, local_index="msbfs", seed=args.seed
    )
    sources, targets = random_query(graph, args.sources, args.targets, seed=args.seed)
    results = runner.run(approaches, sources, targets)
    print(format_table([r.as_row() for r in results], title=f"{args.dataset} comparison"))
    return 0


def _command_sparql(args: argparse.Namespace) -> int:
    store = TripleStore()
    if args.suite == "lubm":
        store.add_all(
            generate_lubm_triples(
                num_universities=max(2, int(8 * args.scale)),
                departments_per_university=6,
                groups_per_department=4,
                students_per_department=8,
                seed=args.seed,
            )
        )
        queries = lubm_queries()
    else:
        store.add_all(
            generate_freebase_triples(
                num_countries=max(2, int(4 * args.scale)),
                states_per_country=5,
                cities_per_state=6,
                people_per_city=4,
                seed=args.seed,
            )
        )
        queries = freebase_queries()

    dsr = PropertyPathEngine(store, num_slaves=args.slaves, local_index="msbfs")
    baseline = VirtuosoLikeEngine(store, warm=False)
    rows = []
    for name, text in queries.items():
        dsr.warm_up(text)
        dsr_result = dsr.execute(text)
        baseline_result = baseline.execute(text)
        rows.append(
            {
                "query": name,
                "results": dsr_result.num_results,
                "dsr_s": round(dsr_result.seconds, 4),
                "baseline_s": round(baseline_result.seconds, 4),
            }
        )
    print(format_table(rows, title=f"{args.suite}: {store.num_triples} triples"))
    return 0


def _command_communities(args: argparse.Namespace) -> int:
    graph = generators.community_graph(
        num_communities=8,
        community_size=max(20, int(60 * args.scale)),
        intra_prob=0.07,
        inter_prob=0.003,
        seed=args.seed,
    )
    analysis = CommunityConnectedness(graph, num_partitions=args.partitions, seed=args.seed)
    report = analysis.analyse(representatives=args.representatives)
    print(
        f"{analysis.communities.num_communities} communities "
        f"(modularity {analysis.communities.modularity:.3f}) over "
        f"{graph.num_vertices} vertices"
    )
    print(
        format_table(
            [
                {
                    "communities": f"{report.community_a} -> {report.community_b}",
                    "|S|x|T|": f"{report.num_sources}x{report.num_targets}",
                    "reachable_pairs": report.num_pairs,
                    "seconds": round(report.seconds, 4),
                }
            ],
            title="community connectedness",
        )
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    worker_hosts = None
    if args.worker_hosts:
        worker_hosts = [
            spec.strip() for spec in args.worker_hosts.split(",") if spec.strip()
        ]
    engine = open_engine(
        graph,
        DSRConfig(
            num_partitions=args.partitions,
            local_index=args.local_index,
            seed=args.seed,
            enable_backward=args.backward,
            replicas=args.replicas,
            executor=args.executor,
            worker_hosts=worker_hosts,
        ),
    )
    report = engine.last_build_report
    print(
        f"{args.dataset}: {graph.num_vertices} vertices, {graph.num_edges} edges — "
        f"index built in {report.parallel_build_seconds:.3f}s simulated-parallel"
    )
    if args.replicas:
        strategies = ", ".join(replica.strategy for replica in engine.replicas)
        print(f"fleet: {args.replicas} replicas [{strategies}] — reads route, "
              f"updates fan out, tuner re-specialises in the background")
    service = DSRService(
        engine,
        num_workers=args.workers,
        max_queue_depth=args.queue_depth,
        cache_capacity=args.cache_capacity,
        cache_ttl_seconds=args.cache_ttl,
        enable_cache=not args.no_cache,
        health_probe_interval_seconds=args.health_interval,
    )
    if service.health is not None:
        print(
            f"health: probing {len(service.health.target_names())} target(s) "
            f"every {args.health_interval:g}s (circuit breakers + auto eject)"
        )
    try:
        if args.self_test:
            return _serve_self_test(graph, service, seed=args.seed)
        if args.async_server:
            server = DSRAsyncServer(
                service,
                host=args.host,
                port=args.port,
                high_watermark=args.high_watermark,
                low_watermark=args.low_watermark,
                rate_limit_qps=args.rate_limit_qps,
                rate_limit_burst=args.rate_limit_burst,
            )
            server.start_in_thread()
            host, port = server.address
            print(
                f"serving (async, binary frames) on {host}:{port} — "
                f"watermarks {server.low_watermark}/{server.high_watermark}, "
                f"rate limit "
                f"{server.rate_limit_qps or 'off'} qps — Ctrl-C to stop"
            )
            try:
                server.wait()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
            finally:
                server.stop_from_thread()
            print(format_table([_stats_row(service)], title="serving metrics"))
            _print_health(service)
            return 0
        server = DSRSocketServer(
            service, host=args.host, port=args.port, max_requests=args.max_requests
        )
        server.start()
        host, port = server.address
        print(f"serving on {host}:{port} with {args.workers} workers "
              f"(cache {'off' if args.no_cache else 'on'}) — Ctrl-C to stop")
        try:
            server.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            server.stop()
        print(f"served {server.requests_served} requests")
        print(format_table([_stats_row(service)], title="serving metrics"))
        _print_health(service)
        return 0
    finally:
        service.close()


def _print_health(service: DSRService) -> None:
    """Print the supervisor's per-target breaker table (when enabled)."""
    if service.health is None:
        return
    rows = [
        {
            "target": name,
            "state": target["state"],
            "ejected": target["ejected"],
            "fails": target["consecutive_failures"],
            "opens": target["opens"],
        }
        for name, target in sorted(service.health.stats()["targets"].items())
    ]
    if rows:
        print(format_table(rows, title="health"))


def _stats_row(service: DSRService) -> dict:
    stats = service.stats()
    return {
        "requests": stats.get("requests", 0),
        "queries": stats.get("queries", 0),
        "hit_rate": stats.get("cache_hit_rate", 0.0),
        "p50_ms": stats.get("query_p50_ms", 0.0),
        "p95_ms": stats.get("query_p95_ms", 0.0),
        "rps": stats.get("requests_per_second", 0.0),
    }


def _serve_self_test(graph, service: DSRService, seed: int) -> int:
    """Drive a mixed query/update workload through the service in-process."""
    from repro.graph.traversal import reachable_pairs

    query_pool = [
        random_query(graph, 8, 8, seed=seed + wave) for wave in range(6)
    ]
    # Wave 1: queries only (populates the cache, repeats hit it).
    futures = []
    for repeat in range(3):
        for sources, targets in query_pool:
            futures.append(service.submit(QueryRequest(tuple(sources), tuple(targets))))
    for future in futures:
        response = future.result()
        if isinstance(response, ErrorResponse):
            print(f"self-test query failed: {response.message}", file=sys.stderr)
            return 1
    # Wave 2: structural updates followed by re-queries; answers must match
    # a direct traversal of the updated graph.
    vertices = sorted(graph.vertices())
    for update in (
        UpdateRequest("insert-edge", vertices[0], vertices[-1]),
        UpdateRequest("delete-edge", *next(iter(graph.edges()))),
    ):
        response = service.submit(update).result()
        if isinstance(response, ErrorResponse):
            print(f"self-test update failed: {response.message}", file=sys.stderr)
            return 1
    for sources, targets in query_pool:
        response = service.submit(
            QueryRequest(tuple(sources), tuple(targets))
        ).result()
        if isinstance(response, ErrorResponse):
            print(f"self-test query failed: {response.message}", file=sys.stderr)
            return 1
        expected = reachable_pairs(graph, sources, targets)
        if response.pair_set != expected:
            print("self-test FAILED: stale answer after updates", file=sys.stderr)
            return 1
    print("self-test passed: answers stayed exact across cache + updates")
    print(format_table([_stats_row(service)], title="serving metrics"))
    fleet_stats = service.stats().get("fleet")
    if fleet_stats is not None:
        print(
            format_table(
                [
                    {
                        "replica": entry["replica"],
                        "strategy": entry["strategy"],
                        "routes": entry["routes"],
                        "rebuilds": entry["rebuilds"],
                    }
                    for entry in fleet_stats["replicas"]
                ],
                title="fleet routing",
            )
        )
    return 0


def _command_worker_host(args: argparse.Namespace) -> int:
    host = WorkerHost(
        host=args.host, port=args.port, allow_shutdown=args.allow_shutdown
    )
    bind_host, bind_port = host.address
    print(
        f"worker host listening on {bind_host}:{bind_port} — point an "
        f"executor='tcp' engine at it via worker_hosts=['{bind_host}:{bind_port}']"
    )
    try:
        host.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        host.stop()
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(f"--connect expects HOST:PORT, got {args.connect!r}", file=sys.stderr)
            return 2
        with DSRClient(host, int(port)) as client:
            response = client.metrics()
        if isinstance(response, ErrorResponse):
            print(f"metrics request failed: {response.message}", file=sys.stderr)
            return 1
        print(response.text, end="")
        return 0

    # Built-in demo: traced queries + updates + a background epoch flush
    # against a small engine, then the combined registries.
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = open_engine(
        graph,
        DSRConfig(
            num_partitions=args.partitions,
            local_index="msbfs",
            seed=args.seed,
            executor=args.executor,
            epoch_flush="background",
        ),
    )
    service = DSRService(engine, num_workers=2)
    try:
        sources, targets = random_query(graph, 8, 8, seed=args.seed)
        response = service.handle(
            QueryRequest(tuple(sources), tuple(targets), trace=True)
        )
        if isinstance(response, ErrorResponse):
            print(f"demo query failed: {response.message}", file=sys.stderr)
            return 1
        # Cross-partition inserts are always structural, so the background
        # maintainer is guaranteed to run a real flush before the scrape.
        partition_of = engine.partitioning.partition_of
        by_partition = {}
        for vertex in sorted(graph.vertices()):
            by_partition.setdefault(partition_of(vertex), []).append(vertex)
        first, second = (by_partition[pid] for pid in sorted(by_partition)[:2])
        inserted = 0
        for u in first:
            for v in second:
                if inserted >= 3:
                    break
                if not graph.has_edge(u, v):
                    service.handle(UpdateRequest("insert-edge", u, v))
                    inserted += 1
            if inserted >= 3:
                break
        if not engine.wait_for_maintenance(timeout=30.0):
            print("background flush did not finish in time", file=sys.stderr)
            return 1
        # One more query so post-flush epoch metrics carry a query alongside.
        service.handle(QueryRequest(tuple(sources), tuple(targets), use_cache=False))
        if not args.no_trace and response.trace:
            rows = [
                {
                    "span": span["name"],
                    "ms": round(span["seconds"] * 1000.0, 3),
                    "attrs": ", ".join(
                        f"{key}={value}" for key, value in sorted(span["attrs"].items())
                    ),
                }
                for span in response.trace["spans"]
            ]
            print(format_table(rows, title="demo query trace"))
        print(service.metrics_text(), end="")
        return 0
    finally:
        service.close()
        engine.close()


_COMMANDS = {
    "info": _command_info,
    "query": _command_query,
    "compare": _command_compare,
    "sparql": _command_sparql,
    "communities": _command_communities,
    "serve": _command_serve,
    "worker-host": _command_worker_host,
    "stats": _command_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
