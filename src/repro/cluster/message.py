"""Message envelopes and payload size accounting.

Byte sizes are estimated with a simple, deterministic model (4 bytes per
integer, 1 byte per character, small per-container overhead) so that
communication-cost plots are stable across Python versions and independent of
``sys.getsizeof`` idiosyncrasies.  What matters for the reproduction is the
*relative* communication volume between approaches, which this model captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

_INT_BYTES = 4
_CONTAINER_OVERHEAD = 8


def payload_size(payload: Any) -> int:
    """Estimate the serialised size of ``payload`` in bytes."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return _INT_BYTES
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return len(payload) + 1
    if isinstance(payload, (bytes, bytearray)):
        # Packed rows ship verbatim: one byte per 8 vertex ranks.
        return len(payload) + 1
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(payload_size(item) for item in payload)
    if isinstance(payload, dict):
        return _CONTAINER_OVERHEAD + sum(
            payload_size(key) + payload_size(value) for key, value in payload.items()
        )
    if hasattr(payload, "message_size"):
        return int(payload.message_size())
    # Fallback: a conservative fixed cost for unknown objects.
    return 64


@dataclass
class Message:
    """A message sent from one worker to another."""

    source: int
    destination: int
    payload: Any
    tag: str = "data"
    size_bytes: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.size_bytes:
            self.size_bytes = payload_size(self.payload)
