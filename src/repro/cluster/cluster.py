"""The simulated master/slave cluster.

A :class:`SimulatedCluster` owns ``k`` worker slots (one per graph partition)
plus a master, a shared :class:`~repro.cluster.network.Network`, and a simple
parallel-time model: every phase executed with :meth:`run_phase` measures the
wall-clock time each worker spent and accumulates the *maximum* across workers
— the time the phase would have taken had the workers truly run in parallel on
separate machines, which is how the paper reports query times.

*How* the workers actually execute is delegated to a pluggable
:class:`~repro.cluster.executors.ExecutorBackend` (``executor=`` — ``serial``,
``threads`` or ``processes``; see :mod:`repro.cluster.executors`).  Besides
the simulated-parallel model, every phase also records its **real**
wall-clock (:attr:`PhaseTiming.real_seconds`), so executor backends can be
compared honestly: simulated time answers "what would a real cluster do",
real time answers "what does this machine do".

The legacy ``parallel=True`` flag maps to ``executor="threads"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cluster.executors import ExecutorBackend, make_executor
from repro.cluster.network import Network, NetworkStats


@dataclass
class PhaseTiming:
    """Timing record for one named phase."""

    name: str
    per_worker_seconds: Dict[int, float] = field(default_factory=dict)
    #: Real elapsed wall-clock of the whole phase, dispatch included.
    real_seconds: float = 0.0

    @property
    def parallel_seconds(self) -> float:
        """Simulated parallel wall-clock: the slowest worker."""
        return max(self.per_worker_seconds.values(), default=0.0)

    @property
    def total_seconds(self) -> float:
        """Total CPU work across all workers."""
        return sum(self.per_worker_seconds.values())


@dataclass
class ClusterStats:
    """Aggregated execution statistics for a query or a build.

    ``phases`` holds the itemised records of work charged directly to this
    stats object (an index build, one query).  Work *absorbed* from other
    stats objects — every served query folds its private record into the
    cluster's cumulative stats — is accumulated into the ``absorbed_*``
    aggregates instead of extending the list, so a long-lived service's
    cumulative record stays O(1) in memory no matter how many queries it
    serves (per-query phase detail lives in each ``QueryResult``).
    """

    phases: List[PhaseTiming] = field(default_factory=list)
    absorbed_parallel_seconds: float = 0.0
    absorbed_total_seconds: float = 0.0
    absorbed_real_seconds: float = 0.0
    absorbed_phases: int = 0

    @property
    def parallel_seconds(self) -> float:
        return (
            sum(phase.parallel_seconds for phase in self.phases)
            + self.absorbed_parallel_seconds
        )

    @property
    def total_seconds(self) -> float:
        return (
            sum(phase.total_seconds for phase in self.phases)
            + self.absorbed_total_seconds
        )

    @property
    def real_seconds(self) -> float:
        """Real elapsed wall-clock summed across phases."""
        return (
            sum(phase.real_seconds for phase in self.phases)
            + self.absorbed_real_seconds
        )

    def absorb(self, other: "ClusterStats") -> None:
        """Fold another record's totals into this one (no list growth)."""
        self.absorbed_parallel_seconds += other.parallel_seconds
        self.absorbed_total_seconds += other.total_seconds
        self.absorbed_real_seconds += other.real_seconds
        self.absorbed_phases += len(other.phases) + other.absorbed_phases

    def as_dict(self) -> Dict[str, Any]:
        return {
            "parallel_seconds": self.parallel_seconds,
            "total_seconds": self.total_seconds,
            "real_seconds": self.real_seconds,
            "absorbed_phases": self.absorbed_phases,
            "phases": {
                phase.name: round(phase.parallel_seconds, 6) for phase in self.phases
            },
        }


class SimulatedCluster:
    """``k`` workers + master with explicit phases and message accounting."""

    MASTER_RANK = -1

    def __init__(
        self,
        num_workers: int,
        parallel: bool = False,
        executor: Union[str, ExecutorBackend, None] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.num_workers = num_workers
        if executor is None:
            executor = "threads" if parallel else "serial"
        if isinstance(executor, str):
            executor = make_executor(executor)
        executor.start(num_workers)
        self.executor: ExecutorBackend = executor
        self.parallel = parallel or executor.name == "threads"
        self.network = Network()
        self.stats = ClusterStats()

    # ------------------------------------------------------------------ #
    # phase execution
    # ------------------------------------------------------------------ #
    def run_phase(
        self,
        name: str,
        worker_fn: Callable[[int], Any],
        workers: Optional[List[int]] = None,
        stats: Optional[ClusterStats] = None,
    ) -> Dict[int, Any]:
        """Run ``worker_fn(rank)`` on every worker (or the given subset).

        Returns ``{rank: result}`` and records per-worker timings under the
        phase ``name``.  ``stats`` selects where the timing record goes:
        callers that may run concurrently (queries) pass their own private
        :class:`ClusterStats`; by default the record lands in the cluster's
        cumulative :attr:`stats`.
        """
        ranks = list(range(self.num_workers)) if workers is None else list(workers)
        fns = {rank: (lambda r=rank: worker_fn(r)) for rank in ranks}
        timing = PhaseTiming(name=name)
        start = time.perf_counter()
        raw = self.executor.run_phase(fns)
        timing.real_seconds = time.perf_counter() - start
        results: Dict[int, Any] = {}
        for rank in ranks:
            result, seconds = raw[rank]
            results[rank] = result
            timing.per_worker_seconds[rank] = seconds
        (stats if stats is not None else self.stats).phases.append(timing)
        return results

    def run_shard_phase(
        self,
        name: str,
        task: str,
        payloads: Dict[int, Any],
        epoch: Optional[int] = None,
        stats: Optional[ClusterStats] = None,
    ) -> Dict[int, Any]:
        """Run a registered shard task against the hydrated epoch shards.

        ``payloads`` maps rank → task payload; only listed ranks execute.
        Raises :class:`~repro.cluster.executors.StaleEpochError` when a
        worker no longer holds ``epoch`` (callers re-read the current epoch
        and retry).
        """
        timing = PhaseTiming(name=name)
        start = time.perf_counter()
        raw = self.executor.run_shard_phase(task, epoch, payloads)
        timing.real_seconds = time.perf_counter() - start
        results: Dict[int, Any] = {}
        for rank, (result, seconds) in raw.items():
            results[rank] = result
            timing.per_worker_seconds[rank] = seconds
        (stats if stats is not None else self.stats).phases.append(timing)
        return results

    def hydrate_shards(
        self,
        epoch: int,
        blobs: Dict[int, Any],
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        """Install per-rank shard blobs for ``epoch`` on the workers."""
        self.executor.hydrate_all(epoch, blobs, loader, retire_below=retire_below)

    @property
    def wants_sharded_queries(self) -> bool:
        """True when queries should run through hydrated shard tasks."""
        return self.executor.wants_sharded_queries

    def run_master(self, name: str, master_fn: Callable[[], Any]) -> Any:
        """Run a master-side computation as its own timed phase."""
        timing = PhaseTiming(name=name)
        start = time.perf_counter()
        try:
            return master_fn()
        finally:
            elapsed = time.perf_counter() - start
            timing.per_worker_seconds[self.MASTER_RANK] = elapsed
            timing.real_seconds = elapsed
            self.stats.phases.append(timing)

    # ------------------------------------------------------------------ #
    # communication helpers
    # ------------------------------------------------------------------ #
    def send(self, source: int, destination: int, payload: Any, tag: str = "data") -> None:
        self.network.send(source, destination, payload, tag=tag)

    def deliver(self, destination: int):
        return self.network.deliver(destination)

    def complete_round(self) -> None:
        self.network.complete_round()

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Clear timing and network statistics before a new measured run."""
        self.stats = ClusterStats()
        self.network.reset_stats()

    def absorb(self, stats: ClusterStats, network_stats: NetworkStats) -> None:
        """Fold a private per-query stats record into the cumulative totals.

        Queries execute against their own :class:`ClusterStats` and
        :class:`~repro.cluster.network.Network` so concurrent queries never
        interleave phase or message records; their exact counters are merged
        back here (the network counters under the network's lock, the
        timings as O(1) aggregates so the cumulative record never grows).
        """
        self.stats.absorb(stats)
        self.network.absorb(network_stats)

    def snapshot(self) -> Dict[str, Any]:
        """Combined execution + communication statistics."""
        combined = self.stats.as_dict()
        combined.update(self.network.stats.as_dict())
        return combined

    def close(self) -> None:
        """Shut down the executor backend (worker processes, thread pools)."""
        self.executor.close()
