"""The simulated master/slave cluster.

A :class:`SimulatedCluster` owns ``k`` worker slots (one per graph partition)
plus a master, a shared :class:`~repro.cluster.network.Network`, and a simple
parallel-time model: every phase executed with :meth:`run_phase` measures the
wall-clock time each worker spent and accumulates the *maximum* across workers
— the time the phase would have taken had the workers truly run in parallel on
separate machines, which is how the paper reports query times.

Workers can optionally be executed on a thread pool (``parallel=True``); since
the computations are pure Python the speed-up is limited by the GIL, so the
default runs them sequentially while still reporting the simulated parallel
time.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.network import Network


@dataclass
class PhaseTiming:
    """Timing record for one named phase."""

    name: str
    per_worker_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def parallel_seconds(self) -> float:
        """Simulated parallel wall-clock: the slowest worker."""
        return max(self.per_worker_seconds.values(), default=0.0)

    @property
    def total_seconds(self) -> float:
        """Total CPU work across all workers."""
        return sum(self.per_worker_seconds.values())


@dataclass
class ClusterStats:
    """Aggregated execution statistics for a query or a build."""

    phases: List[PhaseTiming] = field(default_factory=list)

    @property
    def parallel_seconds(self) -> float:
        return sum(phase.parallel_seconds for phase in self.phases)

    @property
    def total_seconds(self) -> float:
        return sum(phase.total_seconds for phase in self.phases)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "parallel_seconds": self.parallel_seconds,
            "total_seconds": self.total_seconds,
            "phases": {
                phase.name: round(phase.parallel_seconds, 6) for phase in self.phases
            },
        }


class SimulatedCluster:
    """``k`` workers + master with explicit phases and message accounting."""

    MASTER_RANK = -1

    def __init__(self, num_workers: int, parallel: bool = False) -> None:
        if num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.num_workers = num_workers
        self.parallel = parallel
        self.network = Network()
        self.stats = ClusterStats()

    # ------------------------------------------------------------------ #
    # phase execution
    # ------------------------------------------------------------------ #
    def run_phase(
        self,
        name: str,
        worker_fn: Callable[[int], Any],
        workers: Optional[List[int]] = None,
    ) -> Dict[int, Any]:
        """Run ``worker_fn(rank)`` on every worker (or the given subset).

        Returns ``{rank: result}`` and records per-worker timings under the
        phase ``name``.
        """
        ranks = list(range(self.num_workers)) if workers is None else list(workers)
        timing = PhaseTiming(name=name)
        results: Dict[int, Any] = {}

        def timed(rank: int) -> Any:
            start = time.perf_counter()
            try:
                return worker_fn(rank)
            finally:
                timing.per_worker_seconds[rank] = time.perf_counter() - start

        if self.parallel and len(ranks) > 1:
            with ThreadPoolExecutor(max_workers=len(ranks)) as pool:
                futures = {rank: pool.submit(timed, rank) for rank in ranks}
                for rank, future in futures.items():
                    results[rank] = future.result()
        else:
            for rank in ranks:
                results[rank] = timed(rank)

        self.stats.phases.append(timing)
        return results

    def run_master(self, name: str, master_fn: Callable[[], Any]) -> Any:
        """Run a master-side computation as its own timed phase."""
        timing = PhaseTiming(name=name)
        start = time.perf_counter()
        try:
            return master_fn()
        finally:
            timing.per_worker_seconds[self.MASTER_RANK] = time.perf_counter() - start
            self.stats.phases.append(timing)

    # ------------------------------------------------------------------ #
    # communication helpers
    # ------------------------------------------------------------------ #
    def send(self, source: int, destination: int, payload: Any, tag: str = "data") -> None:
        self.network.send(source, destination, payload, tag=tag)

    def deliver(self, destination: int):
        return self.network.deliver(destination)

    def complete_round(self) -> None:
        self.network.complete_round()

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Clear timing and network statistics before a new measured run."""
        self.stats = ClusterStats()
        self.network.reset_stats()

    def snapshot(self) -> Dict[str, Any]:
        """Combined execution + communication statistics."""
        combined = self.stats.as_dict()
        combined.update(self.network.stats.as_dict())
        return combined
