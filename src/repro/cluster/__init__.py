"""Simulated master/slave cluster substrate.

The paper runs on a 10-node MPI cluster; this package provides the equivalent
execution substrate in-process: workers ("slaves") that run per-partition
computations — optionally on a thread pool — and a network layer that records
every message, its byte size and the number of communication rounds, so that
the communication-cost figures of the paper (Figures 5 and 8) can be
reproduced faithfully.
"""

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.message import Message, payload_size
from repro.cluster.network import Network, NetworkStats
from repro.cluster.tcp import TcpExecutor, WorkerHost, WorkerTransportError

__all__ = [
    "Message",
    "payload_size",
    "Network",
    "NetworkStats",
    "SimulatedCluster",
    "TcpExecutor",
    "WorkerHost",
    "WorkerTransportError",
]
