"""Remote worker hosts over TCP: ``executor="tcp"``.

The paper's DSR system is a master/slave deployment where each slave holds
one graph partition and answers local/remote steps over the network.  The
``processes`` executor already gives the *shape* of that deployment on one
box (long-lived workers, hydrate-once-per-epoch, shard tasks, piggybacked
metrics deltas); this module swaps its pipe transport for a socket so the
workers can live in *other processes reachable over TCP* — on this machine
or, with ``worker_hosts=[...]``, on other machines.

Two pieces:

:class:`WorkerHost`
    A standalone server process holding hydrated shards and running
    registered shard tasks.  Start one per slave (``repro-dsr worker-host``)
    and point an engine at it.  The request loop mirrors
    ``_process_worker_main`` exactly — messages are the same tuples with a
    ``rank`` slot added (one host may serve several ranks), replies are the
    same ``("ok", result, seconds, delta)`` / ``("stale", ...)`` /
    ``("error", ...)`` triples, so the StaleEpochError/retry and metrics
    ``absorb()`` contracts hold unchanged.

:class:`TcpExecutor`
    The :class:`~repro.cluster.executors.ExecutorBackend` connecting one
    socket per rank.  With no ``worker_hosts`` it **manages** its own fleet:
    one local :class:`WorkerHost` subprocess per rank, forked so they
    inherit the parent's shard-task registry (exactly like process
    workers).  With ``worker_hosts=["host:port", ...]`` it connects to
    **external** hosts, rank ``r`` mapping to ``hosts[r % len(hosts)]``.

Hydration across the wire
-------------------------
Shared memory cannot cross a socket, so ``supports_shm_hydration = False``
makes the index build *self-contained* shard blobs
(:func:`repro.core.shard_exec.build_shard_blob` with ``ledger=None``): the
CSR arrays travel inside the pickled blob (`CSRGraph.to_bytes` form), one
transfer per rank per epoch, and the host keeps the hydrated shard across
any number of queries.

Failure handling
----------------
Every hydrate message is cached per rank (the same ``_hydration_cache``
pattern as :class:`~repro.cluster.executors.ProcessExecutor`).  When a send
or receive fails, the executor reconnects — respawning the subprocess first
in managed mode — **replays the cached hydrations** so the substitute holds
every retained epoch, then retries the in-flight message once.  A worker
host killed and restarted mid-epoch is therefore invisible above the
executor, which is what the kill/reconnect acceptance test exercises.

Wire format: ``[u64 length][pickle]`` per message, both directions.  This
is a trusted-cluster transport (pickle!), matching the paper's deployment
model; do not expose worker hosts to untrusted networks.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.executors import (
    DEFAULT_TASK_MODULES,
    ExecutorBackend,
    ShardTaskError,
    StaleEpochError,
    _close_shard,
    _import_task_modules,
    _record_hydration,
    _record_shard_task,
    _resolve_loader,
    _resolve_task,
)
from repro.obs import runtime as obs_runtime
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.deadline import current_deadline, deadline_scope
from repro.resilience.failpoints import failpoint

_LENGTH = struct.Struct(">Q")

#: Cap on one RPC message (128 MiB) — a corrupted length prefix should fail
#: fast, not allocate the universe.
MAX_RPC_BYTES = 128 * 1024 * 1024


class WorkerTransportError(ConnectionError):
    """A worker-host RPC failed after reconnect attempts were exhausted."""


# ---------------------------------------------------------------------- #
# framing helpers
# ---------------------------------------------------------------------- #
def _send_obj(sock: socket.socket, obj: Any) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise EOFError("worker connection closed")
        chunks.extend(chunk)
    return bytes(chunks)


def _recv_obj(sock: socket.socket) -> Any:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_RPC_BYTES:
        raise ConnectionError(f"rpc message of {length} bytes exceeds the cap")
    return pickle.loads(_recv_exact(sock, length))


def parse_host_port(spec: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` (the ``worker_hosts`` entry format)."""
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"worker host spec {spec!r} is not of the form 'host:port'"
        )
    return host, int(port)


# ---------------------------------------------------------------------- #
# the worker host
# ---------------------------------------------------------------------- #
class WorkerHost:
    """A standalone shard-task server: hydrate over TCP, query forever.

    ``allow_shutdown`` lets a ``("shutdown",)`` message stop the whole host
    (managed subprocess fleets use it); external hosts default to ignoring
    it so one departing client cannot kill a shared slave.
    ``collect_deltas=False`` turns off metrics-delta shipping for hosts
    embedded in the engine's own process (tests), where recordings already
    land in the master registry and shipping them would double-count.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        task_modules: Sequence[str] = DEFAULT_TASK_MODULES,
        allow_shutdown: bool = False,
        collect_deltas: bool = True,
    ) -> None:
        self._task_modules = tuple(task_modules)
        self._allow_shutdown = allow_shutdown
        self._collect_deltas = collect_deltas
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((host, port))
        self._socket.listen(64)
        self.address: Tuple[str, int] = self._socket.getsockname()[:2]
        #: (rank, epoch) -> hydrated shard.  One host may serve many ranks.
        self._shards: Dict[Tuple[int, int], Any] = {}
        self._shard_lock = threading.Lock()
        self._stopped = threading.Event()
        self._acceptor: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------- #
    def start(self) -> "WorkerHost":
        """Accept connections on a background thread."""
        _import_task_modules(self._task_modules)
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="worker-host-acceptor", daemon=True
        )
        self._acceptor.start()
        return self

    def serve_forever(self) -> None:
        """Foreground entry point (the CLI's ``worker-host`` command)."""
        self.start()
        self._stopped.wait()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting and release every hydrated shard."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        try:
            # Wake a blocked accept() so the kernel socket actually leaves
            # LISTEN; close() alone would leave the port bound.
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass
        # Close live connections too: a stopped host must vanish from its
        # clients' point of view (EOF ⇒ they reconnect elsewhere), never
        # answer "stale" out of a cleared shard map.
        with self._connections_lock:
            connections, self._connections = set(self._connections), set()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        with self._shard_lock:
            shards, self._shards = dict(self._shards), {}
        for shard in shards.values():
            _close_shard(shard)

    def __enter__(self) -> "WorkerHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving --------------------------------------------------------- #
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                connection, _ = self._socket.accept()
            except OSError:
                break
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._connections_lock:
                self._connections.add(connection)
            threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            ).start()

    def _delta(self):
        return obs_runtime.collect_worker_delta() if self._collect_deltas else None

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            self._serve_connection_inner(connection)
        finally:
            with self._connections_lock:
                self._connections.discard(connection)

    def _serve_connection_inner(self, connection: socket.socket) -> None:
        with connection:
            while not self._stopped.is_set():
                try:
                    message = _recv_obj(connection)
                except (EOFError, OSError, ConnectionError, pickle.PickleError):
                    break
                if self._stopped.is_set():
                    break  # stopping: EOF, never a reply from cleared shards
                kind = message[0]
                if kind == "stop":
                    break  # close this connection only
                if kind == "shutdown":
                    if self._allow_shutdown:
                        try:
                            _send_obj(connection, ("ok", None, 0.0, None))
                        except OSError:
                            pass
                        self.stop()
                    break
                try:
                    reply = self._handle(message)
                except StaleEpochError as exc:
                    reply = ("stale", exc.epoch, list(exc.available), self._delta())
                except Exception:
                    reply = ("error", "TaskError", traceback.format_exc())
                try:
                    _send_obj(connection, reply)
                except OSError:
                    break

    def _handle(self, message: Tuple) -> Tuple:
        kind = message[0]
        if kind == "ping":
            return ("ok", "pong", 0.0, None)
        if kind == "hydrate":
            _, rank, epoch, loader_name, blob, retire_below = message
            start = time.perf_counter()
            shard = _resolve_loader(loader_name)(blob)
            retired: List[Any] = []
            with self._shard_lock:
                previous = self._shards.get((rank, epoch))
                if previous is not None and previous is not shard:
                    retired.append(previous)
                self._shards[(rank, epoch)] = shard
                if retire_below is not None:
                    for key in [
                        k for k in self._shards if k[0] == rank and k[1] < retire_below
                    ]:
                        retired.append(self._shards.pop(key))
            for old in retired:
                _close_shard(old)
            _record_hydration(time.perf_counter() - start)
            return ("ok", None, 0.0, self._delta())
        if kind == "task":
            _, rank, task_name, epoch, payload = message
            with self._shard_lock:
                if epoch is not None and (rank, epoch) not in self._shards:
                    available = sorted(e for r, e in self._shards if r == rank)
                    return ("stale", epoch, available, self._delta())
                shard = self._shards.get((rank, epoch))
            fn = _resolve_task(task_name)
            start = time.perf_counter()
            result = fn(shard, payload)
            seconds = time.perf_counter() - start
            _record_shard_task(task_name, seconds)
            return ("ok", result, seconds, self._delta())
        return ("error", "ProtocolError", f"unknown command {kind!r}")

    @property
    def epochs_held(self) -> Dict[int, Tuple[int, ...]]:
        """``{rank: epochs}`` currently hydrated (introspection for tests)."""
        with self._shard_lock:
            held: Dict[int, List[int]] = {}
            for rank, epoch in self._shards:
                held.setdefault(rank, []).append(epoch)
        return {rank: tuple(sorted(epochs)) for rank, epochs in held.items()}


def _worker_host_process_main(pipe, task_modules: Sequence[str]) -> None:
    """Managed-fleet subprocess body: serve one host, report its port."""
    obs_runtime.reset_for_worker()
    host = WorkerHost(
        task_modules=task_modules, allow_shutdown=True, collect_deltas=True
    )
    host.start()
    pipe.send(host.address)
    pipe.close()
    host.wait()


# ---------------------------------------------------------------------- #
# the executor
# ---------------------------------------------------------------------- #
class TcpExecutor(ExecutorBackend):
    """Shard phases over sockets to worker hosts (see module docstring)."""

    name = "tcp"
    supports_closures = False
    wants_sharded_queries = True
    supports_shm_hydration = False

    def __init__(
        self,
        worker_hosts: Optional[Sequence[Any]] = None,
        task_modules: Sequence[str] = DEFAULT_TASK_MODULES,
        connect_timeout: float = 5.0,
        reconnect_attempts: int = 20,
        reconnect_backoff_seconds: float = 0.05,
        reconnect_backoff_cap_seconds: float = 1.0,
    ) -> None:
        self._task_modules = tuple(task_modules)
        self._connect_timeout = connect_timeout
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_backoff_seconds = reconnect_backoff_seconds
        #: Reconnect sleeps come from the shared capped-exponential policy —
        #: the old ``backoff * attempt`` linear schedule retried a dead peer
        #: with no ceiling and no jitter (synchronised stampedes).
        self._backoff = BackoffPolicy(
            base_seconds=reconnect_backoff_seconds,
            cap_seconds=max(reconnect_backoff_cap_seconds, reconnect_backoff_seconds),
        )
        #: Parsed external host list, or None for a managed local fleet.
        self._external: Optional[List[Tuple[str, int]]] = None
        if worker_hosts is not None:
            specs = list(worker_hosts)
            if not specs:
                raise ValueError("worker_hosts must not be empty when given")
            self._external = [
                spec if isinstance(spec, tuple) else parse_host_port(spec)
                for spec in specs
            ]
        self._addresses: Dict[int, Tuple[str, int]] = {}
        self._sockets: Dict[int, socket.socket] = {}
        self._locks: Dict[int, threading.Lock] = {}
        #: Managed mode: rank -> subprocess serving that rank's host.
        self._managed: Dict[int, Any] = {}
        self._dispatch: Optional[ThreadPoolExecutor] = None
        self._lifecycle = threading.Lock()
        self._closed = False
        self._started = False
        self._hydration_cache: Dict[int, Dict[int, Tuple]] = {}
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------- #
    def _fork_context(self):
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    def _spawn_host(self, rank: int) -> None:
        """Managed mode: start a local WorkerHost subprocess for ``rank``."""
        context = self._fork_context()
        parent_pipe, child_pipe = context.Pipe()
        process = context.Process(
            target=_worker_host_process_main,
            args=(child_pipe, self._task_modules),
            name=f"worker-host-{rank}",
            daemon=True,
        )
        process.start()
        child_pipe.close()
        if not parent_pipe.poll(10.0):  # pragma: no cover - startup hang
            process.terminate()
            raise WorkerTransportError(f"worker host {rank} failed to start")
        self._addresses[rank] = tuple(parent_pipe.recv())
        parent_pipe.close()
        self._managed[rank] = process

    def _connect(self, rank: int) -> socket.socket:
        sock = socket.create_connection(
            self._addresses[rank], timeout=self._connect_timeout
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sockets[rank] = sock
        return sock

    def _ensure_started(self) -> None:
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._started:
                return
            # Import task modules in the parent before forking so managed
            # hosts inherit the registry (same reasoning as ProcessExecutor).
            _import_task_modules(self._task_modules)
            for rank in range(self.num_workers):
                if self._external is not None:
                    self._addresses[rank] = self._external[
                        rank % len(self._external)
                    ]
                else:
                    self._spawn_host(rank)
                self._connect(rank)
                self._locks[rank] = threading.Lock()
            self._dispatch = ThreadPoolExecutor(
                max_workers=max(2, 2 * self.num_workers),
                thread_name_prefix="tcp-dispatch",
            )
            self._started = True

    def close(self) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            sockets, self._sockets = self._sockets, {}
            managed, self._managed = self._managed, {}
            dispatch, self._dispatch = self._dispatch, None
            self._hydration_cache.clear()
        for rank, sock in sockets.items():
            # Serialise with any in-flight _call_worker on this rank: an
            # unlocked write could interleave with a request mid-stream and
            # corrupt the length-prefixed pickle framing the host reads.  If
            # a call holds the lock past the timeout, skip the polite
            # goodbye and just close the socket.
            lock = self._locks.get(rank)
            if lock is None or lock.acquire(timeout=2.0):
                try:
                    # Managed hosts are ours to stop; external hosts just
                    # see this client depart.
                    _send_obj(
                        sock, ("shutdown",) if rank in managed else ("stop",)
                    )
                except OSError:
                    pass
                finally:
                    if lock is not None:
                        lock.release()
            try:
                sock.close()
            except OSError:
                pass
        for process in managed.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck host
                process.terminate()
        if dispatch is not None:
            dispatch.shutdown(wait=False)

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- transport ------------------------------------------------------- #
    def _reconnect_locked(self, rank: int, message: Tuple) -> Any:
        """Reconnect ``rank`` (respawning a managed host whenever its
        process is dead), replay its cached hydrations, retry ``message``
        once per attempt.

        The dead-process check runs *inside* the attempt loop: a managed
        host killed again mid-replay (the crash-during-hydration chaos
        case) gets a fresh substitute on the next attempt instead of the
        loop reconnecting forever to a corpse's address.  Sleeps come from
        the capped-exponential-jitter policy, and an active query deadline
        bounds both the sleeps and the replayed RPCs.
        """
        with self._lifecycle:
            if self._closed:
                raise WorkerTransportError(f"worker {rank} died") from None
            old = self._sockets.pop(rank, None)
            if old is not None:
                try:
                    old.close()
                except OSError:
                    pass
        deadline = current_deadline()
        last_error: Optional[BaseException] = None
        for attempt in range(self._reconnect_attempts):
            if attempt:
                if deadline is not None and deadline.expired:
                    raise deadline.exceeded("reconnect") from last_error
                time.sleep(self._backoff.delay(attempt))
            with self._lifecycle:
                if self._closed:
                    raise WorkerTransportError(f"worker {rank} died") from None
                try:
                    process = self._managed.get(rank)
                    if process is not None and not process.is_alive():
                        process.join(timeout=0.5)
                        self._spawn_host(rank)
                except (EOFError, OSError, ConnectionError, WorkerTransportError) as exc:
                    last_error = exc
                    continue
                # Snapshot per attempt: a substitute host needs every epoch
                # hydrated so far, including one cached mid-crash.
                replay = sorted(self._hydration_cache.get(rank, {}).items())
            try:
                sock = self._connect(rank)
                if deadline is not None:
                    sock.settimeout(max(deadline.remaining_seconds(), 0.001))
                for _, hydrate_message in replay:
                    failpoint("tcp.hydrate.replay", rank=rank)
                    _send_obj(sock, hydrate_message)
                    _recv_obj(sock)
                _send_obj(sock, message)
                reply = _recv_obj(sock)
                if deadline is not None:
                    sock.settimeout(None)
            except socket.timeout as exc:
                self._drop_socket(rank)
                if deadline is not None:
                    raise deadline.exceeded("reconnect") from exc
                last_error = exc
                continue
            except (EOFError, OSError, ConnectionError) as exc:
                last_error = exc
                self._drop_socket(rank)
                continue
            registry = obs_runtime.global_registry()
            if registry.enabled:
                registry.inc("dsr_worker_reconnects_total")
            return reply
        raise WorkerTransportError(
            f"worker {rank} at {self._addresses.get(rank)} unreachable after "
            f"{self._reconnect_attempts} attempts: {last_error}"
        ) from last_error

    def _drop_socket(self, rank: int) -> None:
        """Forget and close ``rank``'s socket (its stream position is
        unknowable after a mid-frame failure)."""
        with self._lifecycle:
            stale = self._sockets.pop(rank, None)
        if stale is not None:
            try:
                stale.close()
            except OSError:
                pass

    def _set_inflight(self, delta: int) -> None:
        registry = obs_runtime.global_registry()
        with self._inflight_lock:
            self._inflight += delta
            value = self._inflight
        if registry.enabled:
            registry.set_gauge("dsr_rpc_inflight", float(value))

    def _call_worker(self, rank: int, message: Tuple) -> Tuple[Any, float]:
        self._set_inflight(1)
        deadline = current_deadline()
        try:
            with self._locks[rank]:
                sock = self._sockets.get(rank)
                try:
                    if sock is None:
                        raise ConnectionError("not connected")
                    failpoint("tcp.call", rank=rank, kind=message[0])
                    if deadline is not None:
                        remaining = deadline.remaining_seconds()
                        if remaining <= 0:
                            raise deadline.exceeded("rpc")
                        # The remaining budget becomes this call's socket
                        # timeout: a wedged host yields a typed deadline
                        # error, not an indefinite recv.
                        sock.settimeout(remaining)
                    _send_obj(sock, message)
                    failpoint("tcp.recv", rank=rank, kind=message[0])
                    reply = _recv_obj(sock)
                    if deadline is not None:
                        sock.settimeout(None)
                # socket.timeout subclasses OSError: match it before the
                # reconnect clause, and drop the socket — after a mid-frame
                # timeout its stream position is unknowable.
                except socket.timeout as exc:
                    self._drop_socket(rank)
                    if deadline is None:  # pragma: no cover - no timeout armed
                        raise
                    raise deadline.exceeded("rpc") from exc
                except (EOFError, OSError, ConnectionError):
                    reply = self._reconnect_locked(rank, message)
        finally:
            self._set_inflight(-1)
        kind = reply[0]
        if len(reply) > 3 and reply[3] is not None:
            obs_runtime.absorb_delta(reply[3])
        if kind == "ok":
            return reply[1], reply[2]
        if kind == "stale":
            raise StaleEpochError(rank, reply[1], reply[2])
        task = str(message[2]) if len(message) > 2 else "?"
        raise ShardTaskError(rank, task, reply[2])

    def _scoped_call(self, deadline, rank: int, message: Tuple) -> Tuple[Any, float]:
        # Dispatch-pool threads do not inherit the submitting thread's
        # deadline scope (it is a threading.local); re-enter it explicitly.
        with deadline_scope(deadline):
            return self._call_worker(rank, message)

    def _fan_out(self, messages: Mapping[int, Tuple]) -> Dict[int, Tuple[Any, float]]:
        self._ensure_started()
        if len(messages) == 1:
            ((rank, message),) = messages.items()
            return {rank: self._call_worker(rank, message)}
        assert self._dispatch is not None
        deadline = current_deadline()
        futures = {
            rank: self._dispatch.submit(self._scoped_call, deadline, rank, message)
            for rank, message in messages.items()
        }
        results: Dict[int, Tuple[Any, float]] = {}
        first_error: Optional[BaseException] = None
        for rank, future in futures.items():
            try:
                results[rank] = future.result()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # -- backend API ----------------------------------------------------- #
    def run_phase(self, fns):
        # Closures cannot cross the socket; closure phases (index build,
        # maintenance assembly) run at the master, as with ProcessExecutor.
        from repro.cluster.executors import _timed_call

        return {rank: _timed_call(fn) for rank, fn in fns.items()}

    def run_shard_phase(
        self, task: str, epoch: Optional[int], payloads: Mapping[int, Any]
    ) -> Dict[int, Tuple[Any, float]]:
        return self._fan_out(
            {
                rank: ("task", rank, task, epoch, payload)
                for rank, payload in payloads.items()
            }
        )

    def _remember_hydration(
        self, rank: int, epoch: int, message: Tuple, retire_below: Optional[int]
    ) -> None:
        per_rank = self._hydration_cache.setdefault(rank, {})
        per_rank[epoch] = message
        if retire_below is not None:
            for old in [e for e in per_rank if e < retire_below]:
                del per_rank[old]

    def hydrate(
        self,
        rank: int,
        epoch: int,
        blob: Any,
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        self._ensure_started()
        failpoint("tcp.hydrate", rank=rank, epoch=epoch)
        message = ("hydrate", rank, epoch, loader, blob, retire_below)
        self._remember_hydration(rank, epoch, message, retire_below)
        self._call_worker(rank, message)

    def hydrate_all(
        self,
        epoch: int,
        blobs: Mapping[int, Any],
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        for rank in blobs:
            failpoint("tcp.hydrate", rank=rank, epoch=epoch)
        messages = {
            rank: ("hydrate", rank, epoch, loader, blob, retire_below)
            for rank, blob in blobs.items()
        }
        for rank, message in messages.items():
            self._remember_hydration(rank, epoch, message, retire_below)
        self._fan_out(messages)

    # -- introspection ---------------------------------------------------- #
    def ping(self, rank: int) -> bool:
        """Round-trip a no-op to one worker (health check)."""
        self._ensure_started()
        result, _ = self._call_worker(rank, ("ping",))
        return result == "pong"

    @property
    def worker_addresses(self) -> Dict[int, Tuple[str, int]]:
        return dict(self._addresses)


__all__ = [
    "MAX_RPC_BYTES",
    "TcpExecutor",
    "WorkerHost",
    "WorkerTransportError",
    "parse_host_port",
]
