"""Simulated network with message, byte and round accounting."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.cluster.message import Message


@dataclass
class NetworkStats:
    """Cumulative communication statistics."""

    messages_sent: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    per_destination_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def kilobytes_sent(self) -> float:
        return self.bytes_sent / 1024.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "kilobytes_sent": round(self.kilobytes_sent, 3),
            "rounds": self.rounds,
        }


class Network:
    """In-memory message transport between workers.

    ``send`` enqueues a message for its destination; ``deliver`` drains a
    destination's inbox.  ``complete_round`` marks the end of one communication
    round (one "single round of message exchange" in DSR terms, one superstep
    boundary in Giraph terms).
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, List[Message]] = defaultdict(list)
        self.stats = NetworkStats()

    def send(self, source: int, destination: int, payload: Any, tag: str = "data") -> Message:
        """Send ``payload`` from ``source`` to ``destination``."""
        message = Message(source=source, destination=destination, payload=payload, tag=tag)
        self._inboxes[destination].append(message)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.size_bytes
        self.stats.per_destination_bytes[destination] = (
            self.stats.per_destination_bytes.get(destination, 0) + message.size_bytes
        )
        return message

    def deliver(self, destination: int) -> List[Message]:
        """Drain and return every message queued for ``destination``."""
        messages = self._inboxes.pop(destination, [])
        return messages

    def pending(self, destination: int = None) -> int:
        """Number of undelivered messages (for one destination or in total)."""
        if destination is not None:
            return len(self._inboxes.get(destination, []))
        return sum(len(inbox) for inbox in self._inboxes.values())

    def complete_round(self) -> None:
        """Mark the end of a communication round."""
        self.stats.rounds += 1

    def reset_stats(self) -> None:
        """Zero the statistics (inboxes are left untouched)."""
        self.stats = NetworkStats()
