"""Simulated network with message, byte and round accounting.

All statistics counters are guarded by one lock so that workers running on a
real thread pool (``executor="threads"``) — or several queries executing
concurrently against the same cluster — never lose increments to the classic
read-modify-write race.  Before this, ``parallel=True`` runs silently
under-counted messages and bytes, corrupting the Figure-5 communication
numbers; the counters are now exact regardless of how many workers send at
once.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.message import Message


@dataclass
class NetworkStats:
    """Cumulative communication statistics."""

    messages_sent: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    per_destination_bytes: Dict[int, int] = field(default_factory=dict)
    #: Bytes per message tag ("handles", "data"...) — feeds the per-step
    #: payload byte counts on query traces.
    per_tag_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def kilobytes_sent(self) -> float:
        return self.bytes_sent / 1024.0

    def merge(self, other: "NetworkStats") -> None:
        """Fold another stats record into this one (used for absorption)."""
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.rounds += other.rounds
        for destination, count in other.per_destination_bytes.items():
            self.per_destination_bytes[destination] = (
                self.per_destination_bytes.get(destination, 0) + count
            )
        for tag, count in other.per_tag_bytes.items():
            self.per_tag_bytes[tag] = self.per_tag_bytes.get(tag, 0) + count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "kilobytes_sent": round(self.kilobytes_sent, 3),
            "rounds": self.rounds,
        }


class Network:
    """In-memory message transport between workers.

    ``send`` enqueues a message for its destination; ``deliver`` drains a
    destination's inbox.  ``complete_round`` marks the end of one communication
    round (one "single round of message exchange" in DSR terms, one superstep
    boundary in Giraph terms).

    Thread safety: every method that touches the inboxes or the statistics
    takes the network's lock, so concurrent workers (thread executors) and
    concurrent queries account their traffic exactly.
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, List[Message]] = defaultdict(list)
        self.stats = NetworkStats()
        self._lock = threading.Lock()

    def send(self, source: int, destination: int, payload: Any, tag: str = "data") -> Message:
        """Send ``payload`` from ``source`` to ``destination``."""
        message = Message(source=source, destination=destination, payload=payload, tag=tag)
        with self._lock:
            self._inboxes[destination].append(message)
            self.stats.messages_sent += 1
            self.stats.bytes_sent += message.size_bytes
            self.stats.per_destination_bytes[destination] = (
                self.stats.per_destination_bytes.get(destination, 0) + message.size_bytes
            )
            self.stats.per_tag_bytes[tag] = (
                self.stats.per_tag_bytes.get(tag, 0) + message.size_bytes
            )
        return message

    def deliver(self, destination: int) -> List[Message]:
        """Drain and return every message queued for ``destination``."""
        with self._lock:
            return self._inboxes.pop(destination, [])

    def pending(self, destination: Optional[int] = None) -> int:
        """Number of undelivered messages (for one destination or in total)."""
        with self._lock:
            if destination is not None:
                return len(self._inboxes.get(destination, []))
            return sum(len(inbox) for inbox in self._inboxes.values())

    def complete_round(self) -> None:
        """Mark the end of a communication round."""
        with self._lock:
            self.stats.rounds += 1

    def absorb(self, other: NetworkStats) -> None:
        """Merge another stats record into the cumulative counters.

        Queries run over their own private transport (so two concurrent
        queries never mix inboxes) and fold their exact per-query counters
        into the cluster-wide totals here, under the same lock as ``send``.
        """
        with self._lock:
            self.stats.merge(other)

    def reset_stats(self) -> None:
        """Zero the statistics (inboxes are left untouched)."""
        with self._lock:
            self.stats = NetworkStats()
