"""Pluggable worker executors: how cluster phases actually run.

The simulated cluster models *what* the paper's master/slave deployment
computes (phases, messages, rounds); an :class:`ExecutorBackend` decides *how*
the per-worker work of a phase is executed on the local machine:

``serial``
    One worker after another on the calling thread.  Zero overhead, fully
    deterministic — the default, and the right choice for index builds and
    micro-benchmarks of the algorithmic costs.

``threads``
    A persistent thread pool with one slot per worker.  Python-level work is
    GIL-bound, so the speed-up is limited, but phases that wait (I/O, lock
    handoffs) overlap, and the thread pool is reused across phases instead of
    being rebuilt per call.

``processes``
    One long-lived OS process per worker, each *hydrated once per epoch* with
    its partition's immutable CSR shard (see :mod:`repro.core.shard_exec`).
    Phases are expressed as named **shard tasks** — registered module-level
    functions ``task(shard, payload) -> result`` — so only small payloads and
    results cross the process boundary, never the graph.  This is real
    parallelism: four workers burn four cores.

Closures vs. shard tasks
------------------------
``run_phase`` executes arbitrary closures and is supported by the in-process
executors (``serial``, ``threads``).  Process workers cannot receive closures
over shared state, so :class:`ProcessExecutor` runs closure phases at the
master (serially) and reserves the worker processes for shard tasks — the
query hot path.  ``run_shard_phase`` executes a registered task against the
hydrated shard of a given *epoch* on every requested worker; asking for an
epoch a worker no longer holds raises :class:`StaleEpochError`, which callers
handle by re-reading the current epoch and retrying.

Every phase result carries the worker's *self-measured* compute seconds
(excluding dispatch/IPC), which feed the simulated-parallel timing model; the
cluster additionally records the real wall-clock of the whole phase.
"""

from __future__ import annotations

import importlib
import threading
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.obs import runtime as obs_runtime
from repro.resilience.failpoints import failpoint

#: Names accepted by :func:`make_executor` (and ``DSRConfig.executor``).
#: ``tcp`` (worker hosts over sockets) lives in :mod:`repro.cluster.tcp`.
EXECUTOR_NAMES = ("serial", "threads", "processes", "tcp")

#: Modules imported inside worker processes to populate the task registry.
DEFAULT_TASK_MODULES = ("repro.core.shard_exec",)


class StaleEpochError(RuntimeError):
    """A shard task addressed an epoch the worker no longer (or not yet) holds."""

    def __init__(self, rank: int, epoch: int, available: Sequence[int]) -> None:
        super().__init__(
            f"worker {rank} has no shard for epoch {epoch} "
            f"(holds {list(available) or 'none'})"
        )
        self.rank = rank
        self.epoch = epoch
        self.available = tuple(available)


class ShardTaskError(RuntimeError):
    """A shard task raised inside a worker; carries the remote traceback."""

    def __init__(self, rank: int, task: str, remote_traceback: str) -> None:
        super().__init__(f"shard task {task!r} failed on worker {rank}:\n{remote_traceback}")
        self.rank = rank
        self.task = task
        self.remote_traceback = remote_traceback


# ---------------------------------------------------------------------- #
# shard task registry (shared by in-process executors and worker processes)
# ---------------------------------------------------------------------- #
_SHARD_TASKS: Dict[str, Callable[[Any, Any], Any]] = {}
_SHARD_LOADERS: Dict[str, Callable[[Any], Any]] = {}


def register_shard_task(name: str):
    """Register ``fn(shard, payload) -> result`` under ``name``.

    Tasks must live at module level in an importable module (worker processes
    re-import the registry), and must only read the shard — shards are
    immutable epoch snapshots shared by every in-flight query of that epoch.
    """

    def decorator(fn: Callable[[Any, Any], Any]):
        _SHARD_TASKS[name] = fn
        return fn

    return decorator


def register_shard_loader(name: str):
    """Register ``fn(blob) -> shard``, the worker-side hydration step."""

    def decorator(fn: Callable[[Any], Any]):
        _SHARD_LOADERS[name] = fn
        return fn

    return decorator


def _resolve_task(name: str) -> Callable[[Any, Any], Any]:
    if name not in _SHARD_TASKS:
        _import_task_modules(DEFAULT_TASK_MODULES)
    try:
        return _SHARD_TASKS[name]
    except KeyError:
        raise KeyError(f"unknown shard task {name!r}; registered: {sorted(_SHARD_TASKS)}")


def _resolve_loader(name: str) -> Callable[[Any], Any]:
    if name not in _SHARD_LOADERS:
        _import_task_modules(DEFAULT_TASK_MODULES)
    try:
        return _SHARD_LOADERS[name]
    except KeyError:
        raise KeyError(f"unknown shard loader {name!r}; registered: {sorted(_SHARD_LOADERS)}")


def _import_task_modules(modules: Sequence[str]) -> None:
    for module in modules:
        importlib.import_module(module)


# ---------------------------------------------------------------------- #
# the backend contract
# ---------------------------------------------------------------------- #
class ExecutorBackend(ABC):
    """How one cluster executes the per-worker work of a phase."""

    name: str = "abstract"
    #: Can this backend run arbitrary closures on the workers?
    supports_closures: bool = True
    #: Should DSR queries run through hydrated shard tasks on this backend?
    wants_sharded_queries: bool = False
    #: Can hydration blobs reference shared-memory segments?  False for
    #: backends whose workers live beyond this machine's address space
    #: (e.g. ``tcp``): the index then builds self-contained pickled blobs.
    supports_shm_hydration: bool = True

    def start(self, num_workers: int) -> None:
        """Bind the backend to a worker count (idempotent)."""
        self.num_workers = num_workers

    @abstractmethod
    def run_phase(
        self, fns: Mapping[int, Callable[[], Any]]
    ) -> Dict[int, Tuple[Any, float]]:
        """Run ``{rank: closure}`` and return ``{rank: (result, seconds)}``."""

    @abstractmethod
    def run_shard_phase(
        self, task: str, epoch: Optional[int], payloads: Mapping[int, Any]
    ) -> Dict[int, Tuple[Any, float]]:
        """Run a registered shard task on every rank in ``payloads``."""

    @abstractmethod
    def hydrate(
        self,
        rank: int,
        epoch: int,
        blob: Any,
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        """Install the shard for ``(rank, epoch)``; drop epochs < ``retire_below``."""

    def hydrate_all(
        self,
        epoch: int,
        blobs: Mapping[int, Any],
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        """Install one epoch's shards on every rank (overlapped where possible)."""
        for rank, blob in blobs.items():
            self.hydrate(rank, epoch, blob, loader, retire_below=retire_below)

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release worker resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={getattr(self, 'num_workers', '?')})"


def _timed_call(fn: Callable[[], Any]) -> Tuple[Any, float]:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _record_shard_task(task: str, seconds: float) -> None:
    """Account one shard-task execution in the current process's registry.

    Called identically by the in-process executors and the worker-process
    loop, so ``dsr_shard_tasks_total`` is comparable across backends (worker
    deltas are shipped back and absorbed at the master).
    """
    registry = obs_runtime.global_registry()
    if registry.enabled:
        registry.inc("dsr_shard_tasks_total", task=task)
        registry.observe("dsr_shard_task_seconds", seconds, task=task)


def _record_hydration(seconds: float) -> None:
    registry = obs_runtime.global_registry()
    if registry.enabled:
        registry.inc("dsr_shard_hydrations_total")
        registry.observe("dsr_shard_hydrate_seconds", seconds)


def _close_shard(shard: Any) -> None:
    """Release a retired shard's resources (e.g. a shared-memory mapping)."""
    close = getattr(shard, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:  # pragma: no cover - release is best-effort
        pass


class _InProcessShardStore:
    """Epoch-keyed shard storage shared by the in-process executors."""

    def __init__(self) -> None:
        self._shards: Dict[int, Dict[int, Any]] = {}
        self._lock = threading.Lock()

    def put(self, rank: int, epoch: int, shard: Any, retire_below: Optional[int]) -> None:
        retired = []
        with self._lock:
            per_rank = self._shards.setdefault(rank, {})
            previous = per_rank.get(epoch)
            if previous is not None and previous is not shard:
                retired.append(previous)
            per_rank[epoch] = shard
            if retire_below is not None:
                for old in [e for e in per_rank if e < retire_below]:
                    retired.append(per_rank.pop(old))
        for old_shard in retired:
            _close_shard(old_shard)

    def get(self, rank: int, epoch: Optional[int]) -> Any:
        with self._lock:
            per_rank = self._shards.get(rank, {})
            if epoch is None:
                return None
            if epoch not in per_rank:
                raise StaleEpochError(rank, epoch, sorted(per_rank))
            return per_rank[epoch]


class _InProcessExecutor(ExecutorBackend):
    """Shared shard storage + hydration for the in-process executors."""

    def __init__(self) -> None:
        self._store = _InProcessShardStore()

    def hydrate(
        self,
        rank: int,
        epoch: int,
        blob: Any,
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        shard, seconds = _timed_call(lambda: _resolve_loader(loader)(blob))
        self._store.put(rank, epoch, shard, retire_below)
        _record_hydration(seconds)


class SerialExecutor(_InProcessExecutor):
    """Workers run one after another on the calling thread."""

    name = "serial"

    def run_phase(self, fns: Mapping[int, Callable[[], Any]]) -> Dict[int, Tuple[Any, float]]:
        return {rank: _timed_call(fn) for rank, fn in fns.items()}

    def run_shard_phase(
        self, task: str, epoch: Optional[int], payloads: Mapping[int, Any]
    ) -> Dict[int, Tuple[Any, float]]:
        fn = _resolve_task(task)
        results: Dict[int, Tuple[Any, float]] = {}
        for rank, payload in payloads.items():
            shard = self._store.get(rank, epoch)
            results[rank] = _timed_call(lambda s=shard, p=payload: fn(s, p))
            _record_shard_task(task, results[rank][1])
        return results


class ThreadExecutor(_InProcessExecutor):
    """Workers run on a persistent thread pool (one slot per worker)."""

    name = "threads"

    def __init__(self) -> None:
        super().__init__()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                workers = max(2, getattr(self, "num_workers", 2))
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="cluster-worker"
                )
            return self._pool

    def run_phase(self, fns: Mapping[int, Callable[[], Any]]) -> Dict[int, Tuple[Any, float]]:
        if len(fns) <= 1:
            return {rank: _timed_call(fn) for rank, fn in fns.items()}
        pool = self._ensure_pool()
        futures = {rank: pool.submit(_timed_call, fn) for rank, fn in fns.items()}
        return {rank: future.result() for rank, future in futures.items()}

    def run_shard_phase(
        self, task: str, epoch: Optional[int], payloads: Mapping[int, Any]
    ) -> Dict[int, Tuple[Any, float]]:
        fn = _resolve_task(task)
        closures = {
            rank: (lambda s=self._store.get(rank, epoch), p=payload: fn(s, p))
            for rank, payload in payloads.items()
        }
        results = self.run_phase(closures)
        for rank in results:
            _record_shard_task(task, results[rank][1])
        return results

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None


# ---------------------------------------------------------------------- #
# process workers
# ---------------------------------------------------------------------- #
def _process_worker_main(conn, rank: int, task_modules: Sequence[str]) -> None:
    """Long-lived worker loop: hydrate shards once, answer shard tasks.

    Metrics recorded inside the worker (by shard tasks, loaders, or the loop
    itself) accumulate in the worker's process-local registry and are shipped
    back as a :class:`~repro.obs.registry.MetricsDelta` piggybacked on each
    reply; the parent folds them into the master registry — the same
    merge-at-master pattern as ``Network.absorb()``.
    """
    _import_task_modules(task_modules)
    # Drop the fork-inherited copy of the parent's metric state: without this
    # every worker would ship the parent's pre-fork totals as its own delta.
    obs_runtime.reset_for_worker()
    shards: Dict[int, Any] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "hydrate":
                _, epoch, loader_name, blob, retire_below = message
                start = time.perf_counter()
                previous = shards.get(epoch)
                shards[epoch] = _SHARD_LOADERS[loader_name](blob)
                if previous is not None:
                    _close_shard(previous)
                _record_hydration(time.perf_counter() - start)
                if retire_below is not None:
                    for old in [e for e in shards if e < retire_below]:
                        _close_shard(shards.pop(old))
                conn.send(("ok", None, 0.0, obs_runtime.collect_worker_delta()))
            elif kind == "task":
                _, task_name, epoch, payload = message
                if epoch is not None and epoch not in shards:
                    conn.send(("stale", epoch, sorted(shards), obs_runtime.collect_worker_delta()))
                    continue
                fn = _SHARD_TASKS[task_name]
                shard = shards.get(epoch)
                start = time.perf_counter()
                result = fn(shard, payload)
                seconds = time.perf_counter() - start
                _record_shard_task(task_name, seconds)
                conn.send(("ok", result, seconds, obs_runtime.collect_worker_delta()))
            else:
                conn.send(("error", "ProtocolError", f"unknown command {kind!r}"))
        except StaleEpochError as exc:
            # A task may declare its shard stale mid-execution (e.g. a
            # packed payload addressed in a rank numbering the shard no
            # longer matches); report it like the pre-dispatch epoch check
            # so callers re-capture and retry instead of failing hard.
            conn.send(("stale", exc.epoch, list(exc.available), obs_runtime.collect_worker_delta()))
        except Exception:
            conn.send(("error", "TaskError", traceback.format_exc()))
    # Clean exit: detach from any shared-memory shard mappings.
    for shard in shards.values():
        _close_shard(shard)


class ProcessExecutor(ExecutorBackend):
    """One long-lived OS process per worker, hydrated once per epoch.

    Workers are spawned lazily on first use (engines that never query through
    shards pay nothing).  Each worker owns a pipe guarded by a lock, so
    concurrent queries serialise *per worker* while different workers execute
    truly in parallel; a small parent-side dispatch pool overlaps the blocking
    pipe round-trips of one phase.
    """

    name = "processes"
    supports_closures = False
    wants_sharded_queries = True

    def __init__(self, task_modules: Sequence[str] = DEFAULT_TASK_MODULES) -> None:
        self._task_modules = tuple(task_modules)
        self._workers: Dict[int, Any] = {}  # rank -> (process, connection)
        self._worker_locks: Dict[int, threading.Lock] = {}
        self._dispatch: Optional[ThreadPoolExecutor] = None
        self._lifecycle = threading.Lock()
        self._closed = False
        #: rank -> {epoch: last hydrate message}, replayed into a respawned
        #: worker so a crash is invisible above the executor: the substitute
        #: process re-hydrates every retained epoch before the retried task.
        self._hydration_cache: Dict[int, Dict[int, Tuple]] = {}

    # -- lifecycle ------------------------------------------------------ #
    def _spawn_worker(self, context, rank: int) -> None:
        """Start (or restart) the worker process for ``rank``."""
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_process_worker_main,
            args=(child_conn, rank, self._task_modules),
            name=f"shard-worker-{rank}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers[rank] = (process, parent_conn)

    def _fork_context(self):
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    def _ensure_started(self) -> None:
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._workers:
                return
            # Import the task modules in the PARENT before forking: the
            # children then resolve them straight from the inherited
            # sys.modules instead of running a real import — which could
            # deadlock on an import lock some other parent thread held at
            # fork time (e.g. another engine's maintenance thread).
            _import_task_modules(self._task_modules)
            context = self._fork_context()
            for rank in range(self.num_workers):
                self._spawn_worker(context, rank)
                self._worker_locks[rank] = threading.Lock()
            self._dispatch = ThreadPoolExecutor(
                max_workers=max(2, 2 * self.num_workers),
                thread_name_prefix="shard-dispatch",
            )

    def close(self) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, {}
            dispatch, self._dispatch = self._dispatch, None
            self._hydration_cache.clear()
        for process, conn in workers.values():
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for process, conn in workers.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if dispatch is not None:
            dispatch.shutdown(wait=False)

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- request plumbing ----------------------------------------------- #
    def _respawn_locked(self, rank: int, message: Tuple) -> Any:
        """Replace a dead worker and retry ``message`` once (lock held).

        The substitute process is re-hydrated from the cached hydrate
        messages of every epoch the dead worker retained — segment names
        are still valid (the master's shm ledger owns them), so replay is
        cheap attach-by-name.  A second failure gives up for real.
        """
        with self._lifecycle:
            if self._closed:
                raise RuntimeError(f"shard worker {rank} died") from None
            old_process, old_conn = self._workers[rank]
            try:
                old_conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            old_process.join(timeout=0.5)
            self._spawn_worker(self._fork_context(), rank)
            registry = obs_runtime.global_registry()
            if registry.enabled:
                registry.inc("dsr_worker_respawns_total")
            replay = sorted(self._hydration_cache.get(rank, {}).items())
        process, conn = self._workers[rank]
        try:
            for _, hydrate_message in replay:
                conn.send(hydrate_message)
                conn.recv()
            conn.send(message)
            return conn.recv()
        except (EOFError, OSError) as exc:  # pragma: no cover - double death
            raise RuntimeError(f"shard worker {rank} died") from exc

    def _call_worker(self, rank: int, message: Tuple) -> Tuple[Any, float]:
        process, conn = self._workers[rank]
        with self._worker_locks[rank]:
            try:
                failpoint("executor.dispatch", rank=rank, kind=message[0])
                conn.send(message)
                reply = conn.recv()
            except (EOFError, OSError):
                reply = self._respawn_locked(rank, message)
        kind = reply[0]
        if len(reply) > 3 and reply[3] is not None:
            # Piggybacked worker metrics delta: fold into the master registry
            # before any control flow so stale replies don't lose metrics.
            obs_runtime.absorb_delta(reply[3])
        if kind == "ok":
            return reply[1], reply[2]
        if kind == "stale":
            raise StaleEpochError(rank, reply[1], reply[2])
        raise ShardTaskError(rank, str(message[1]) if len(message) > 1 else "?", reply[2])

    def _fan_out(
        self, messages: Mapping[int, Tuple]
    ) -> Dict[int, Tuple[Any, float]]:
        self._ensure_started()
        if len(messages) == 1:
            ((rank, message),) = messages.items()
            return {rank: self._call_worker(rank, message)}
        assert self._dispatch is not None
        futures = {
            rank: self._dispatch.submit(self._call_worker, rank, message)
            for rank, message in messages.items()
        }
        results: Dict[int, Tuple[Any, float]] = {}
        first_error: Optional[BaseException] = None
        for rank, future in futures.items():
            try:
                results[rank] = future.result()
            except BaseException as exc:  # collect all before raising
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # -- backend API ---------------------------------------------------- #
    def run_phase(self, fns: Mapping[int, Callable[[], Any]]) -> Dict[int, Tuple[Any, float]]:
        # Closures over shared engine state cannot cross the process
        # boundary; closure phases (index build, maintenance assembly) run at
        # the master.  Queries go through run_shard_phase instead.
        return {rank: _timed_call(fn) for rank, fn in fns.items()}

    def run_shard_phase(
        self, task: str, epoch: Optional[int], payloads: Mapping[int, Any]
    ) -> Dict[int, Tuple[Any, float]]:
        return self._fan_out(
            {rank: ("task", task, epoch, payload) for rank, payload in payloads.items()}
        )

    def _remember_hydration(
        self, rank: int, epoch: int, message: Tuple, retire_below: Optional[int]
    ) -> None:
        """Cache the hydrate message for crash-replay, pruned like the worker."""
        per_rank = self._hydration_cache.setdefault(rank, {})
        per_rank[epoch] = message
        if retire_below is not None:
            for old in [e for e in per_rank if e < retire_below]:
                del per_rank[old]

    def hydrate(
        self,
        rank: int,
        epoch: int,
        blob: Any,
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        self._ensure_started()
        message = ("hydrate", epoch, loader, blob, retire_below)
        self._remember_hydration(rank, epoch, message, retire_below)
        self._call_worker(rank, message)

    def hydrate_all(
        self,
        epoch: int,
        blobs: Mapping[int, Any],
        loader: str,
        retire_below: Optional[int] = None,
    ) -> None:
        # One pipe round-trip per worker, overlapped through the dispatch
        # pool: epoch publication latency stays ~one transfer, not N.
        messages = {
            rank: ("hydrate", epoch, loader, blob, retire_below)
            for rank, blob in blobs.items()
        }
        for rank, message in messages.items():
            self._remember_hydration(rank, epoch, message, retire_below)
        self._fan_out(messages)


def _make_tcp_executor() -> ExecutorBackend:
    # Imported lazily: repro.cluster.tcp imports from this module.
    from repro.cluster.tcp import TcpExecutor

    return TcpExecutor()


_FACTORIES: Dict[str, Callable[[], ExecutorBackend]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
    "tcp": _make_tcp_executor,
}

def make_executor(name: str) -> ExecutorBackend:
    """Instantiate an executor backend by name (not yet started)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
        ) from None
    return factory()


__all__ = [
    "DEFAULT_TASK_MODULES",
    "EXECUTOR_NAMES",
    "ExecutorBackend",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardTaskError",
    "StaleEpochError",
    "ThreadExecutor",
    "make_executor",
    "register_shard_loader",
    "register_shard_task",
]
