"""Shared-memory segment ledger for zero-copy epoch shard hydration.

When the cluster runs on the ``processes`` executor, every epoch publish
used to re-ship each partition's CSR payload through a pipe and rebuild it
with :meth:`~repro.graph.csr.CSRGraph.from_bytes` inside the worker.  This
module moves those payloads into POSIX shared memory instead: the master
writes one ``multiprocessing.shared_memory`` segment per ``(epoch, rank)``
shard at publish time, the hydration blob carries only the segment *name*,
and the worker attaches and flips its CSR buffers to point straight into
the mapping (:meth:`~repro.graph.csr.CSRGraph.from_shared`) — no
serialization crosses the pipe and no adjacency copy is made on either
side after the single publish-time write.

Lifecycle rules
---------------
* The **master** owns every segment through a :class:`ShmLedger`: created
  at publish, replaced in place on a same-epoch rehydration, unlinked when
  the epoch falls below the workers' retain window (``retire_below``), and
  unconditionally unlinked by :meth:`ShmLedger.close` / the ``atexit``
  safety net.  A POSIX unlink only removes the name — workers that still
  map the segment keep reading it until they drop their attachment, so
  retiring an epoch under an in-flight query is safe.
* **Workers** only ever attach (:func:`attach`).  The attachment is
  immediately unregistered from ``multiprocessing.resource_tracker``
  (Python < 3.13 registers attaches too — bpo-39959), because the tracker
  would otherwise unlink master-owned segments when a worker exits and
  print spurious leak warnings.  A worker killed with ``SIGKILL`` leaks
  nothing: the kernel drops its mappings, and the name is still owned (and
  eventually unlinked) by the master's ledger.

Set ``REPRO_SHM=0`` to disable the path entirely (hydration falls back to
pickled CSR bytes); :func:`shm_available` re-reads the environment on each
call so tests and benchmarks can toggle it per engine.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from typing import Dict, Optional, Tuple

from repro.obs.runtime import global_registry
from repro.resilience.failpoints import failpoint

try:  # pragma: no cover - import guarded for exotic platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - no POSIX shm support
    shared_memory = None  # type: ignore[assignment]


def shm_available() -> bool:
    """True when shared-memory hydration can (and may) be used.

    Checked per call, not cached: ``REPRO_SHM=0`` must be able to turn the
    path off between two engines of the same process (the publish-cost
    benchmark measures both modes back to back).
    """
    return shared_memory is not None and os.environ.get("REPRO_SHM", "1") != "0"


class AttachedSegment:
    """A worker-side attachment to a master-owned segment.

    Exposes the raw mapping as ``buf`` (a writable ``memoryview``, treated
    read-only by contract) and detaches on :meth:`close`.  Never unlinks —
    the name belongs to the creating ledger.
    """

    __slots__ = ("name", "_shm", "__weakref__")

    def __init__(self, name: str) -> None:
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("shared memory is not available on this platform")
        failpoint("shm.attach", name=name)
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 has no track flag: attaching registers the name
            # with the resource tracker (bpo-39959).  Fork-context workers
            # share the master's tracker process, where the registration is
            # a duplicate of the creator's own — a set no-op — and the
            # master's unlink unregisters it exactly once.  Unregistering
            # here would remove the *master's* entry out from under it.
            shm = shared_memory.SharedMemory(name=name)
        self.name = name
        self._shm = shm

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    def close(self) -> None:
        """Drop the mapping (idempotent; tolerates exported sub-views)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a consumer still holds a view
            # Leave the mapping to process exit; unlink (master-side) already
            # guarantees the backing file goes away regardless.
            pass

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self.close()
        except Exception:
            pass


class ShmLedger:
    """Master-side registry of every live ``(epoch, rank)`` shard segment.

    One ledger per hydrating index.  All methods are thread-safe (a flush
    thread publishes while queries may trigger a same-epoch rehydration).
    """

    def __init__(self, prefix: str = "dsr") -> None:
        self._prefix = prefix
        self._segments: Dict[Tuple[int, int], "shared_memory.SharedMemory"] = {}
        self._lock = threading.Lock()
        self._serial = 0
        self._closed = False
        _LIVE_LEDGERS.add(self)

    # ------------------------------------------------------------------ #
    # creation / retirement
    # ------------------------------------------------------------------ #
    def create(self, epoch: int, rank: int, nbytes: int) -> "shared_memory.SharedMemory":
        """Create (or replace) the segment for ``(epoch, rank)``.

        Returns the created :class:`SharedMemory`; the caller writes the
        payload into ``.buf`` before shipping the name.  Replacing is what a
        same-epoch :meth:`~repro.core.index.DSRIndex.rehydrate_partition`
        does — the old name is unlinked, workers that still map it are
        unaffected, and newly hydrating workers attach to the new name.
        """
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("shared memory is not available on this platform")
        with self._lock:
            if self._closed:
                raise RuntimeError("shm ledger is closed")
            stale = self._segments.pop((epoch, rank), None)
            if stale is not None:
                _destroy(stale)
            while True:
                self._serial += 1
                name = f"{self._prefix}{os.getpid()}_{self._serial}_e{epoch}_r{rank}"
                try:
                    segment = shared_memory.SharedMemory(
                        name=name, create=True, size=max(1, nbytes)
                    )
                    break
                except FileExistsError:  # pragma: no cover - stale name reuse
                    continue
            self._segments[(epoch, rank)] = segment
            self._update_gauge_locked()
            return segment

    def retire_below(self, epoch: int) -> int:
        """Unlink every segment whose epoch is below ``epoch``.

        Mirrors the workers' shard-retain window: called right after an
        epoch's ``hydrate_all`` with the same ``retire_below`` bound, so the
        ledger holds at most two epochs of segments in steady state.
        """
        with self._lock:
            victims = [key for key in self._segments if key[0] < epoch]
            for key in victims:
                _destroy(self._segments.pop(key))
            if victims:
                self._update_gauge_locked()
            return len(victims)

    def close(self) -> None:
        """Unlink everything (idempotent; called from engine close + atexit)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, {}
            for segment in segments.values():
                _destroy(segment)
            self._update_gauge_locked()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    def segment_names(self) -> Tuple[str, ...]:
        """Names of every live segment (stable snapshot, tests/debugging)."""
        with self._lock:
            return tuple(seg.name for seg in self._segments.values())

    def name_of(self, epoch: int, rank: int) -> Optional[str]:
        with self._lock:
            segment = self._segments.get((epoch, rank))
            return segment.name if segment is not None else None

    def _update_gauge_locked(self) -> None:
        registry = global_registry()
        if registry.enabled:
            registry.set_gauge("shm_segments", len(self._segments))

    def __del__(self) -> None:  # pragma: no cover - GC-time cleanup
        try:
            self.close()
        except Exception:
            pass


def attach(name: str) -> AttachedSegment:
    """Attach to a master-owned segment by name (worker-side)."""
    return AttachedSegment(name)


def _destroy(segment: "shared_memory.SharedMemory") -> None:
    """Close and unlink one owned segment, tolerating partial failure."""
    failpoint("shm.unlink", name=segment.name)
    try:
        segment.close()
    except BufferError:  # pragma: no cover - view still exported
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


#: Every ledger ever opened in this process; the atexit hook drains it so a
#: crashed or careless caller never leaves segments behind in /dev/shm.
_LIVE_LEDGERS: "weakref.WeakSet[ShmLedger]" = weakref.WeakSet()


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - exercised via subprocess tests
    for ledger in list(_LIVE_LEDGERS):
        try:
            ledger.close()
        except Exception:
            pass


__all__ = ["AttachedSegment", "ShmLedger", "attach", "shm_available"]
