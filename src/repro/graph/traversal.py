"""Graph traversal primitives: BFS, DFS and multi-source reachability.

These are the *reference* implementations: deliberately simple walks over the
mutable ``dict``/``set`` adjacency, used as ground truth by the test suite
and as the "legacy per-source" baseline in ``benchmarks/bench_csr_kernel.py``.
The production hot paths do not traverse this way — they run over the CSR
snapshot via :mod:`repro.reachability.bitset_msbfs` and the CSR-backed
strategies in :mod:`repro.reachability`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set

from repro.graph.digraph import DiGraph


def bfs_reachable_set(
    graph: DiGraph,
    source: int,
    targets: Optional[Set[int]] = None,
) -> Set[int]:
    """Return all vertices reachable from ``source`` (including itself).

    If ``targets`` is given, the search stops early once every target has been
    visited — the return value is then the set of *visited* vertices, which is
    guaranteed to contain every reachable target.
    """
    visited = {source}
    remaining = set(targets) - {source} if targets is not None else None
    queue = deque([source])
    while queue:
        if remaining is not None and not remaining:
            break
        vertex = queue.popleft()
        for succ in graph.successors(vertex):
            if succ not in visited:
                visited.add(succ)
                if remaining is not None:
                    remaining.discard(succ)
                queue.append(succ)
    return visited


def dfs_reachable_set(
    graph: DiGraph,
    source: int,
    targets: Optional[Set[int]] = None,
) -> Set[int]:
    """Iterative DFS variant of :func:`bfs_reachable_set`."""
    visited = {source}
    remaining = set(targets) - {source} if targets is not None else None
    stack = [source]
    while stack:
        if remaining is not None and not remaining:
            break
        vertex = stack.pop()
        for succ in graph.successors(vertex):
            if succ not in visited:
                visited.add(succ)
                if remaining is not None:
                    remaining.discard(succ)
                stack.append(succ)
    return visited


def is_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Single-pair reachability check with early termination."""
    if source == target:
        return True
    visited = {source}
    stack = [source]
    while stack:
        vertex = stack.pop()
        for succ in graph.successors(vertex):
            if succ == target:
                return True
            if succ not in visited:
                visited.add(succ)
                stack.append(succ)
    return False


def multi_source_reachability(
    graph: DiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
) -> Dict[int, Set[int]]:
    """Compute, for every source, the subset of ``targets`` it reaches.

    This is the reference implementation of ``localSetReachability(.)`` used
    when no index is available: one early-terminating traversal per source.
    A source that is also a target is considered reachable from itself.
    """
    target_set = set(targets)
    result: Dict[int, Set[int]] = {}
    for source in sources:
        if not graph.has_vertex(source):
            result[source] = set()
            continue
        reachable = bfs_reachable_set(graph, source, targets=target_set)
        result[source] = reachable & target_set
    return result


def reachable_pairs(
    graph: DiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
) -> Set[tuple]:
    """Return the set of ``(s, t)`` pairs with ``s ⇝ t`` — ground truth."""
    pairs = set()
    for source, reached in multi_source_reachability(graph, sources, targets).items():
        for target in reached:
            pairs.add((source, target))
    return pairs


def topological_order(graph: DiGraph) -> list:
    """Return a topological order of a DAG (raises ``ValueError`` on cycles)."""
    in_degree = {vertex: graph.in_degree(vertex) for vertex in graph.vertices()}
    queue = deque(vertex for vertex, degree in in_degree.items() if degree == 0)
    order = []
    while queue:
        vertex = queue.popleft()
        order.append(vertex)
        for succ in graph.successors(vertex):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                queue.append(succ)
    if len(order) != graph.num_vertices:
        raise ValueError("graph has at least one cycle; not a DAG")
    return order
