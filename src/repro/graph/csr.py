"""Immutable compressed-sparse-row (CSR) snapshots of a :class:`DiGraph`.

The mutable :class:`~repro.graph.digraph.DiGraph` stores adjacency as
per-vertex Python sets — ideal for updates, terrible for batched traversal:
every BFS level chases hash buckets and re-boxes vertex ids.  A
:class:`CSRGraph` freezes the same topology into flat ``array('q')``
offset/target buffers over a *dense* vertex numbering ``0..n-1``, which is
the layout every batched kernel in :mod:`repro.reachability.bitset_msbfs`
and the SCC condensation in :mod:`repro.graph.scc` iterate over.  The
forward direction is built eagerly; the reverse buffers are derived lazily
from the forward arrays on first use (a counting sort — most consumers only
ever walk forward, and skipping the reverse half halves build cost).

Snapshots are **immutable by contract**: nothing in this module ever writes
to a built snapshot, and consumers must not either.  Mutating the source
``DiGraph`` does not change an existing snapshot — it *invalidates* the
graph's cached one (a dirty flag inside ``DiGraph``), so the next call to
``DiGraph.csr()`` rebuilds lazily.  Hold onto a snapshot only for as long as
you want a frozen view.

Dense indices vs. vertex ids
----------------------------
``ids[i]`` maps the dense index ``i`` back to the original vertex id and
``index_of(v)`` maps the other way.  Vertex ids are sorted before numbering
and every adjacency run is sorted too, so two structurally equal graphs
always produce byte-identical snapshots (determinism matters for tests and
for reproducible benchmark numbers).
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (digraph imports us)
    from repro.graph.digraph import DiGraph


class CSRGraph:
    """An immutable CSR snapshot of a directed graph (forward + reverse)."""

    __slots__ = (
        "ids",
        "_index_of",
        "fwd_offsets",
        "fwd_targets",
        "_rev_offsets",
        "_rev_targets",
        "_degree_stats",
        "_successor_table",
        "_shm",
    )

    def __init__(
        self,
        ids: Tuple[int, ...],
        index_of: Dict[int, int],
        fwd_offsets: array,
        fwd_targets: array,
    ) -> None:
        self.ids = ids
        self._index_of = index_of
        self.fwd_offsets = fwd_offsets
        self.fwd_targets = fwd_targets
        # The reverse arrays are derived lazily from the (immutable) forward
        # arrays on first use: most consumers only ever walk forward, and
        # skipping the reverse half halves snapshot build time.
        self._rev_offsets: Optional[array] = None
        self._rev_targets: Optional[array] = None
        self._degree_stats: Dict[str, float] = {}
        self._successor_table: Dict[int, Tuple[int, ...]] = {}
        # Keepalive for snapshots whose forward buffers are zero-copy views
        # into a shared-memory segment (see from_shared); None otherwise.
        self._shm: Optional[object] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_digraph(cls, graph: "DiGraph") -> "CSRGraph":
        """Build a snapshot from the current state of ``graph``."""
        ids = tuple(sorted(graph.vertices()))
        index_of = {vertex: i for i, vertex in enumerate(ids)}
        n = len(ids)

        fwd_offsets = array("q", bytes(8 * (n + 1)))
        fwd_targets = array("q")
        for i, vertex in enumerate(ids):
            fwd_targets.extend(sorted(index_of[w] for w in graph.successors(vertex)))
            fwd_offsets[i + 1] = len(fwd_targets)
        return cls(ids, index_of, fwd_offsets, fwd_targets)

    # ------------------------------------------------------------------ #
    # compact serialisation
    # ------------------------------------------------------------------ #
    #: Wire magic + version for :meth:`to_bytes` payloads.
    _WIRE_MAGIC = b"CSR1"

    def to_bytes(self) -> bytes:
        """Serialise the snapshot into one compact byte string.

        The format is three raw little-endian ``int64`` buffers (vertex ids,
        forward offsets, forward targets) behind a fixed 20-byte header —
        no pickling of boxed Python ints, so shipping a shard to a worker
        process costs one ``memcpy``-style copy per buffer.  The reverse
        arrays are never shipped: the receiver re-derives them lazily, same
        as a locally built snapshot.
        """
        ids = array("q", self.ids)
        header = struct.pack("<4sQQ", self._WIRE_MAGIC, len(self.ids), len(self.fwd_targets))
        return b"".join(
            (header, ids.tobytes(), self.fwd_offsets.tobytes(), self.fwd_targets.tobytes())
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CSRGraph":
        """Rebuild a snapshot serialised by :meth:`to_bytes`.

        The reconstructed snapshot is byte-identical to the original for
        every forward buffer (the id order and adjacency runs are preserved
        verbatim), so ``from_bytes(g.to_bytes())`` is a faithful hydration
        of the shard ``g``.
        """
        header_size = struct.calcsize("<4sQQ")
        if len(payload) < header_size:
            raise ValueError("truncated CSR payload")
        magic, n, m = struct.unpack_from("<4sQQ", payload, 0)
        if magic != cls._WIRE_MAGIC:
            raise ValueError(f"not a CSR payload (bad magic {magic!r})")
        expected = header_size + 8 * (n + (n + 1) + m)
        if len(payload) != expected:
            raise ValueError(
                f"corrupt CSR payload: expected {expected} bytes, got {len(payload)}"
            )
        cursor = header_size
        ids_arr = array("q")
        ids_arr.frombytes(payload[cursor : cursor + 8 * n])
        cursor += 8 * n
        fwd_offsets = array("q")
        fwd_offsets.frombytes(payload[cursor : cursor + 8 * (n + 1)])
        cursor += 8 * (n + 1)
        fwd_targets = array("q")
        fwd_targets.frombytes(payload[cursor:])
        ids = tuple(ids_arr)
        index_of = {vertex: i for i, vertex in enumerate(ids)}
        return cls(ids, index_of, fwd_offsets, fwd_targets)

    # ------------------------------------------------------------------ #
    # shared-memory views (zero-copy hydration)
    # ------------------------------------------------------------------ #
    def shared_size(self) -> int:
        """Bytes :meth:`write_shared` needs — same layout as :meth:`to_bytes`."""
        n, m = len(self.ids), len(self.fwd_targets)
        return struct.calcsize("<4sQQ") + 8 * (n + (n + 1) + m)

    def write_shared(self, buf: memoryview, offset: int = 0) -> int:
        """Write the :meth:`to_bytes` wire image into ``buf`` at ``offset``.

        This is the *one* copy of the zero-copy hydration path: the master
        pays it once per publish, every worker then maps the same bytes via
        :meth:`from_shared` without deserializing.  Returns the offset just
        past the written payload.
        """
        n, m = len(self.ids), len(self.fwd_targets)
        header_size = struct.calcsize("<4sQQ")
        struct.pack_into("<4sQQ", buf, offset, self._WIRE_MAGIC, n, m)
        cursor = offset + header_size
        for chunk in (array("q", self.ids), self.fwd_offsets, self.fwd_targets):
            raw = chunk.tobytes()
            buf[cursor : cursor + len(raw)] = raw
            cursor += len(raw)
        return cursor

    @classmethod
    def from_shared(
        cls, buf: memoryview, offset: int = 0, keepalive: Optional[object] = None
    ) -> "CSRGraph":
        """Build a snapshot whose adjacency buffers *view* ``buf`` in place.

        ``buf`` must hold a :meth:`write_shared` / :meth:`to_bytes` image at
        ``offset`` (typically the mapping of a shared-memory segment).  The
        ``fwd_offsets`` / ``fwd_targets`` buffers become ``memoryview.cast``
        views straight into the mapping — no adjacency copy, which is the
        point: hydrating a worker costs O(n) for the id dict and O(1) for
        the O(m) adjacency.  ``keepalive`` (e.g. the attached segment) is
        pinned on the snapshot so the mapping outlives every view; call
        :meth:`release_shared` to drop both.

        The id tuple and index dict are still materialised per process —
        they are Python object structures and cannot be shared.
        """
        header_size = struct.calcsize("<4sQQ")
        magic, n, m = struct.unpack_from("<4sQQ", buf, offset)
        if magic != cls._WIRE_MAGIC:
            raise ValueError(f"not a CSR payload (bad magic {magic!r})")
        cursor = offset + header_size
        ids_view = buf[cursor : cursor + 8 * n].cast("q")
        cursor += 8 * n
        fwd_offsets = buf[cursor : cursor + 8 * (n + 1)].cast("q")
        cursor += 8 * (n + 1)
        fwd_targets = buf[cursor : cursor + 8 * m].cast("q")
        ids = tuple(ids_view)
        ids_view.release()
        index_of = {vertex: i for i, vertex in enumerate(ids)}
        snapshot = cls(ids, index_of, fwd_offsets, fwd_targets)
        snapshot._shm = keepalive
        return snapshot

    @property
    def is_shared(self) -> bool:
        """True when the forward buffers view a shared-memory segment."""
        return self._shm is not None

    def release_shared(self) -> None:
        """Detach from the shared segment (idempotent, no-op if not shared).

        The forward buffers are replaced by empty arrays first so the
        segment's exported memoryviews are gone before the mapping closes;
        a released snapshot must not be queried again.
        """
        keepalive, self._shm = self._shm, None
        if keepalive is None:
            return
        for name in ("fwd_offsets", "fwd_targets"):
            view = getattr(self, name)
            setattr(self, name, array("q"))
            if isinstance(view, memoryview):
                view.release()
        close = getattr(keepalive, "close", None)
        if close is not None:
            close()

    def _ensure_reverse(self) -> None:
        """Materialise the reverse arrays (counting sort over the forward)."""
        if self._rev_offsets is not None:
            return
        n = len(self.ids)
        offsets, targets = self.fwd_offsets, self.fwd_targets
        counts = [0] * n
        for w in targets:
            counts[w] += 1
        rev_offsets = array("q", bytes(8 * (n + 1)))
        total = 0
        for i in range(n):
            total += counts[i]
            rev_offsets[i + 1] = total
        # Fill positions; iterating sources in ascending order keeps every
        # reverse run sorted, matching the forward runs' determinism.
        fill = list(rev_offsets[:n]) if n else []
        rev_targets = array("q", bytes(8 * len(targets)))
        for u in range(n):
            for k in range(offsets[u], offsets[u + 1]):
                w = targets[k]
                rev_targets[fill[w]] = u
                fill[w] += 1
        self._rev_targets = rev_targets
        self._rev_offsets = rev_offsets

    @property
    def rev_offsets(self) -> array:
        self._ensure_reverse()
        return self._rev_offsets

    @property
    def rev_targets(self) -> array:
        self._ensure_reverse()
        return self._rev_targets

    # ------------------------------------------------------------------ #
    # sizes
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        return len(self.fwd_targets)

    def nbytes(self) -> int:
        """Footprint of the materialised ``array('q')`` buffers only.

        The optional id-space :meth:`successor_table` (boxed tuples, built
        only for the Pregel/Giraph consumers) is not counted here.
        """
        total = len(self.fwd_offsets) + len(self.fwd_targets)
        if self._rev_offsets is not None:
            total += len(self._rev_offsets) + len(self._rev_targets)
        return 8 * total

    # ------------------------------------------------------------------ #
    # id translation
    # ------------------------------------------------------------------ #
    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._index_of

    def index_of(self, vertex: int) -> int:
        """Dense index of ``vertex`` (raises ``KeyError`` if absent)."""
        return self._index_of[vertex]

    def vertex_at(self, index: int) -> int:
        """Original vertex id at dense index ``index``."""
        return self.ids[index]

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def out_neighbors(self, index: int) -> array:
        """Dense out-neighbour run of dense vertex ``index`` (do not mutate)."""
        return self.fwd_targets[self.fwd_offsets[index] : self.fwd_offsets[index + 1]]

    def in_neighbors(self, index: int) -> array:
        """Dense in-neighbour run of dense vertex ``index`` (do not mutate)."""
        return self.rev_targets[self.rev_offsets[index] : self.rev_offsets[index + 1]]

    def successors(self, vertex: int) -> Tuple[int, ...]:
        """Out-neighbours of ``vertex`` as original ids (empty if absent)."""
        i = self._index_of.get(vertex)
        if i is None:
            return ()
        ids = self.ids
        return tuple(ids[w] for w in self.out_neighbors(i))

    def successor_table(self) -> Dict[int, Tuple[int, ...]]:
        """``{vertex id: out-neighbour ids}``, built once per snapshot.

        For consumers that iterate adjacency in *original id* space per
        visited vertex (the Pregel/Giraph compute loops): repeated
        :meth:`successors` calls would re-translate and re-allocate a tuple
        each time, whereas this table pays the translation once and then
        serves cached tuples — at least as fast as iterating the mutable
        graph's live sets, and frozen with the snapshot.
        """
        if not self._successor_table and self.num_vertices:
            ids = self.ids
            offsets, targets = self.fwd_offsets, self.fwd_targets
            self._successor_table = {
                vertex: tuple(ids[w] for w in targets[offsets[i] : offsets[i + 1]])
                for i, vertex in enumerate(ids)
            }
        return self._successor_table

    def predecessors(self, vertex: int) -> Tuple[int, ...]:
        """In-neighbours of ``vertex`` as original ids (empty if absent)."""
        i = self._index_of.get(vertex)
        if i is None:
            return ()
        ids = self.ids
        return tuple(ids[w] for w in self.in_neighbors(i))

    def out_degree(self, index: int) -> int:
        return self.fwd_offsets[index + 1] - self.fwd_offsets[index]

    def in_degree(self, index: int) -> int:
        return self.rev_offsets[index + 1] - self.rev_offsets[index]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def degree_stats(self) -> Dict[str, float]:
        """Degree statistics of the snapshot, computed once and cached.

        Consumers like the service planner's cost model read these instead of
        re-walking the adjacency per query; because a snapshot is immutable
        the cache can never go stale — a mutated graph hands out a *new*
        snapshot with its own cache.
        """
        if not self._degree_stats:
            n = self.num_vertices
            m = self.num_edges
            max_out = 0
            for i in range(n):
                out = self.fwd_offsets[i + 1] - self.fwd_offsets[i]
                if out > max_out:
                    max_out = out
            # In-degrees are counted off the forward targets so computing
            # stats never forces the reverse arrays to materialise.
            in_counts = [0] * n
            for w in self.fwd_targets:
                in_counts[w] += 1
            max_in = max(in_counts, default=0)
            self._degree_stats = {
                "num_vertices": float(n),
                "num_edges": float(m),
                "avg_degree": (m / n) if n else 0.0,
                "max_out_degree": float(max_out),
                "max_in_degree": float(max_in),
            }
        return dict(self._degree_stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
