"""Edge-list readers and writers.

The paper's datasets (SNAP graphs, Freebase, Twitter, LUBM) are distributed as
edge lists; this module provides the equivalent plumbing so that users can
load their own graphs into the library.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

from repro.graph.digraph import DiGraph


def _open_maybe_gzip(path: Path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path: Union[str, Path],
    comment: str = "#",
    delimiter: str = None,
) -> DiGraph:
    """Read a directed graph from a whitespace/``delimiter``-separated edge list.

    Lines starting with ``comment`` are skipped.  Vertex ids must be
    non-negative integers (the SNAP convention).
    """
    path = Path(path)
    graph = DiGraph()
    with _open_maybe_gzip(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            graph.add_edge(u, v)
    return graph


def write_edge_list(
    graph: DiGraph,
    path: Union[str, Path],
    header: bool = True,
) -> None:
    """Write ``graph`` as a tab-separated edge list."""
    path = Path(path)
    with _open_maybe_gzip(path, "w") as handle:
        if header:
            handle.write(f"# vertices: {graph.num_vertices}\n")
            handle.write(f"# edges: {graph.num_edges}\n")
        for u, v in sorted(graph.edges()):
            handle.write(f"{u}\t{v}\n")


def read_triples(path: Union[str, Path], delimiter: str = "\t"):
    """Read ``(subject, predicate, object)`` triples from a TSV file."""
    path = Path(path)
    triples = []
    with _open_maybe_gzip(path, "r") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split(delimiter)
            if len(parts) < 3:
                raise ValueError(f"malformed triple line: {line!r}")
            triples.append((parts[0], parts[1], parts[2]))
    return triples


def write_triples(triples, path: Union[str, Path], delimiter: str = "\t") -> None:
    """Write ``(subject, predicate, object)`` triples to a TSV file."""
    path = Path(path)
    with _open_maybe_gzip(path, "w") as handle:
        for subject, predicate, obj in triples:
            handle.write(f"{subject}{delimiter}{predicate}{delimiter}{obj}\n")
