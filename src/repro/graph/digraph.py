"""A compact, mutable directed graph.

This is the data-graph substrate from Definition 1 of the paper: a directed
graph ``G(V, E, L, phi)`` with vertices ``V``, edges ``E`` and a bijective
label mapping ``phi: V -> L``.  Vertices are dense-ish non-negative integers;
labels are optional and default to the vertex id itself.

The implementation favours predictable, explicit behaviour over raw speed:
adjacency is stored as per-vertex sets for both successors and predecessors so
that edge insertion, deletion and membership tests are O(1) on average, and
vertex-induced subgraphs (the building block of graph partitioning) are cheap
to construct.

For batched traversal the hot paths do not walk these sets: :meth:`DiGraph.csr`
hands out an immutable :class:`~repro.graph.csr.CSRGraph` snapshot, cached
until the next mutation dirties it (see :mod:`repro.graph.csr`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.graph.csr import CSRGraph


class GraphError(Exception):
    """Raised for invalid graph operations (missing vertices, bad labels...)."""


class DiGraph:
    """A mutable directed graph with integer vertices and optional labels."""

    def __init__(self) -> None:
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        self._labels: Dict[int, Hashable] = {}
        self._label_index: Dict[Hashable, int] = {}
        self._num_edges = 0
        self._next_vertex = 0
        # Lazily built CSR snapshot (see :meth:`csr`); ``None`` doubles as the
        # dirty flag — every topology mutation resets it.
        self._csr: Optional[CSRGraph] = None

    # ------------------------------------------------------------------ #
    # CSR snapshot
    # ------------------------------------------------------------------ #
    def csr(self) -> CSRGraph:
        """Return the cached :class:`~repro.graph.csr.CSRGraph` snapshot.

        The snapshot is built on first use and reused until the next topology
        mutation (``add_vertex``/``add_edge``/``remove_vertex``/
        ``remove_edge``), each of which marks it dirty so a fresh snapshot is
        built lazily on the next call.  Callers must treat the returned
        object as immutable.
        """
        if self._csr is None:
            self._csr = CSRGraph.from_digraph(self)
        return self._csr

    def csr_if_cached(self) -> Optional[CSRGraph]:
        """The cached CSR snapshot, or ``None`` — never triggers a build.

        For observers (e.g. the service planner's cost model) that run
        concurrently with writers: building a snapshot iterates the live
        adjacency dicts and must only happen on a thread that holds the
        owner's write lock, but *reading* an already-built snapshot is always
        safe because snapshots are immutable.
        """
        return self._csr

    def _invalidate_csr(self) -> None:
        self._csr = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        vertices: Optional[Iterable[int]] = None,
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(u, v)`` edges.

        ``vertices`` may list additional isolated vertices to include.
        """
        graph = cls()
        if vertices is not None:
            for vertex in vertices:
                graph.add_vertex(vertex)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "DiGraph":
        """Return a deep copy of the graph (labels included)."""
        clone = DiGraph()
        for vertex in self._succ:
            clone.add_vertex(vertex, label=self._labels.get(vertex))
        for u, v in self.edges():
            clone.add_edge(u, v)
        clone._next_vertex = self._next_vertex
        return clone

    # ------------------------------------------------------------------ #
    # vertices
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Optional[int] = None, label: Hashable = None) -> int:
        """Add a vertex and return its id.

        If ``vertex`` is ``None`` a fresh id is allocated.  Adding an existing
        vertex is a no-op (the label, if given, must not conflict).
        """
        if vertex is None:
            vertex = self._next_vertex
        if vertex < 0:
            raise GraphError(f"vertex ids must be non-negative, got {vertex}")
        if vertex in self._succ:
            if label is not None and self._labels.get(vertex) not in (None, label):
                raise GraphError(
                    f"vertex {vertex} already has label {self._labels[vertex]!r}"
                )
            if label is not None and vertex not in self._labels:
                self._set_label(vertex, label)
            return vertex
        self._succ[vertex] = set()
        self._pred[vertex] = set()
        self._invalidate_csr()
        if label is not None:
            self._set_label(vertex, label)
        if vertex >= self._next_vertex:
            self._next_vertex = vertex + 1
        return vertex

    def _set_label(self, vertex: int, label: Hashable) -> None:
        existing = self._label_index.get(label)
        if existing is not None and existing != vertex:
            raise GraphError(f"label {label!r} already maps to vertex {existing}")
        self._labels[vertex] = label
        self._label_index[label] = vertex

    def remove_vertex(self, vertex: int) -> None:
        """Remove a vertex and all incident edges."""
        self._require_vertex(vertex)
        for succ in list(self._succ[vertex]):
            self.remove_edge(vertex, succ)
        for pred in list(self._pred[vertex]):
            self.remove_edge(pred, vertex)
        del self._succ[vertex]
        del self._pred[vertex]
        self._invalidate_csr()
        label = self._labels.pop(vertex, None)
        if label is not None:
            self._label_index.pop(label, None)

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._succ

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertex ids."""
        return iter(self._succ)

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    def label_of(self, vertex: int) -> Hashable:
        """Return the label of ``vertex`` (defaults to the vertex id)."""
        self._require_vertex(vertex)
        return self._labels.get(vertex, vertex)

    def vertex_by_label(self, label: Hashable) -> int:
        """Return the vertex carrying ``label``."""
        try:
            return self._label_index[label]
        except KeyError:
            raise GraphError(f"no vertex with label {label!r}") from None

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``(u, v)``, creating endpoints if needed.

        Returns ``True`` if the edge was new, ``False`` if it already existed.
        Self-loops are allowed (they are irrelevant for reachability but may
        appear in real datasets).
        """
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._succ[u]:
            return False
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._num_edges += 1
        self._invalidate_csr()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove edge ``(u, v)``.  Returns ``True`` if it existed."""
        if u not in self._succ or v not in self._succ[u]:
            return False
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._num_edges -= 1
        self._invalidate_csr()
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._succ and v in self._succ[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(u, v)`` edges."""
        for u, succs in self._succ.items():
            for v in succs:
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def successors(self, vertex: int) -> Set[int]:
        """Return the set of out-neighbours of ``vertex`` (do not mutate)."""
        self._require_vertex(vertex)
        return self._succ[vertex]

    def predecessors(self, vertex: int) -> Set[int]:
        """Return the set of in-neighbours of ``vertex`` (do not mutate)."""
        self._require_vertex(vertex)
        return self._pred[vertex]

    def out_degree(self, vertex: int) -> int:
        return len(self.successors(vertex))

    def in_degree(self, vertex: int) -> int:
        return len(self.predecessors(vertex))

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def induced_subgraph(self, vertices: Iterable[int]) -> "DiGraph":
        """Return the vertex-induced subgraph over ``vertices``.

        Vertex ids and labels are preserved, which is what graph partitioning
        (Section 2 of the paper) requires: a partition ``G_i`` is exactly the
        vertex-induced subgraph over ``V_i``.
        """
        selected = set(vertices)
        sub = DiGraph()
        for vertex in selected:
            self._require_vertex(vertex)
            sub.add_vertex(vertex, label=self._labels.get(vertex))
        for vertex in selected:
            for succ in self._succ[vertex]:
                if succ in selected:
                    sub.add_edge(vertex, succ)
        return sub

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge reversed."""
        rev = DiGraph()
        for vertex in self._succ:
            rev.add_vertex(vertex, label=self._labels.get(vertex))
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _require_vertex(self, vertex: int) -> None:
        if vertex not in self._succ:
            raise GraphError(f"vertex {vertex} not in graph")

    def __contains__(self, vertex: int) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
