"""Synthetic graph generators.

The paper evaluates on SNAP web/social graphs (Amazon, BerkStan, Google,
NotreDame, Stanford, LiveJournal), two billion-edge real-world graphs
(Twitter, Freebase) and the synthetic LUBM RDF benchmark.  Those raw datasets
are not available offline and are far beyond pure-Python scale, so this module
provides deterministic generators that reproduce the *structural properties*
the paper's analysis relies on:

* ``social_graph`` — power-law in/out degrees with dense reciprocal cores
  (large SCCs), standing in for Twitter / LiveJournal.
* ``web_graph`` — bow-tie structure with hub pages and deep link chains,
  standing in for BerkStan / Google / NotreDame / Stanford.
* ``copurchase_graph`` — locally clustered, moderately reciprocal graph,
  standing in for Amazon.
* ``hierarchy_graph`` — sparse, almost acyclic containment hierarchy, standing
  in for LUBM / Freebase ``subOrganizationOf`` / ``containedby`` chains.
* ``random_digraph`` / ``dag`` — uniform random graphs for testing.

All generators take a ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed if seed is not None else 0)


def random_digraph(num_vertices: int, num_edges: int, seed: int = 0) -> DiGraph:
    """Uniform random directed graph (Erdős–Rényi G(n, m) flavour)."""
    rng = _rng(seed)
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    if num_vertices < 2:
        return graph
    added = 0
    attempts = 0
    max_attempts = num_edges * 20 + 100
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        if graph.add_edge(u, v):
            added += 1
    return graph


def dag(num_vertices: int, num_edges: int, seed: int = 0) -> DiGraph:
    """Random DAG: edges only go from lower to higher vertex ids."""
    rng = _rng(seed)
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    if num_vertices < 2:
        return graph
    added = 0
    attempts = 0
    max_attempts = num_edges * 20 + 100
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(num_vertices - 1)
        v = rng.randrange(u + 1, num_vertices)
        if graph.add_edge(u, v):
            added += 1
    return graph


def _preferential_targets(
    rng: random.Random, degree_pool: List[int], count: int, exclude: int
) -> List[int]:
    """Sample ``count`` distinct targets preferentially from ``degree_pool``."""
    targets = set()
    limit = count * 30 + 10
    tries = 0
    while len(targets) < count and tries < limit:
        tries += 1
        candidate = rng.choice(degree_pool)
        if candidate != exclude:
            targets.add(candidate)
    return list(targets)


def social_graph(
    num_vertices: int,
    avg_degree: float = 8.0,
    reciprocity: float = 0.3,
    seed: int = 0,
) -> DiGraph:
    """Power-law "follower"-style graph (Twitter / LiveJournal analogue).

    Built by directed preferential attachment; a fraction ``reciprocity`` of
    edges gets a reverse edge, which produces the large strongly connected
    cores that make SCC condensation so effective on Twitter (Section 4.2).
    """
    rng = _rng(seed)
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    if num_vertices < 3:
        return graph

    edges_per_vertex = max(1, int(round(avg_degree / 2)))
    # Seed clique so preferential attachment has something to attach to.
    core = min(edges_per_vertex + 2, num_vertices)
    degree_pool: List[int] = []
    for u in range(core):
        for v in range(core):
            if u != v:
                graph.add_edge(u, v)
                degree_pool.append(v)
                degree_pool.append(u)

    for vertex in range(core, num_vertices):
        targets = _preferential_targets(rng, degree_pool, edges_per_vertex, vertex)
        if not targets:
            targets = [rng.randrange(vertex)]
        for target in targets:
            graph.add_edge(vertex, target)
            degree_pool.append(target)
            degree_pool.append(vertex)
            if rng.random() < reciprocity:
                graph.add_edge(target, vertex)
                degree_pool.append(vertex)
    return graph


def web_graph(
    num_vertices: int,
    avg_degree: float = 8.0,
    seed: int = 0,
) -> DiGraph:
    """Web-graph analogue (BerkStan / Google / NotreDame / Stanford).

    Pages are grouped into "sites" (dense local link structure plus a
    navigational cycle through each site) with sparser cross-site hyperlinks
    to hub pages.  This yields many medium-sized SCCs and long paths, similar
    to the SNAP web crawls.
    """
    rng = _rng(seed)
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    if num_vertices < 3:
        return graph

    site_size = max(5, int(num_vertices ** 0.5 / 2) + 3)
    sites: List[List[int]] = []
    for start in range(0, num_vertices, site_size):
        sites.append(list(range(start, min(start + site_size, num_vertices))))

    hubs = [site[0] for site in sites]
    target_edges = int(num_vertices * avg_degree)
    edges_added = 0

    # Intra-site structure: a navigation cycle plus random internal links.
    for site in sites:
        if len(site) >= 2:
            for i, page in enumerate(site):
                graph.add_edge(page, site[(i + 1) % len(site)])
                edges_added += 1
        for page in site:
            internal_links = rng.randrange(0, 3)
            for _ in range(internal_links):
                other = rng.choice(site)
                if other != page and graph.add_edge(page, other):
                    edges_added += 1

    # Cross-site links, mostly pointing at hub pages.
    while edges_added < target_edges:
        source_site = rng.choice(sites)
        page = rng.choice(source_site)
        if rng.random() < 0.7:
            target = rng.choice(hubs)
        else:
            target = rng.randrange(num_vertices)
        if target != page and graph.add_edge(page, target):
            edges_added += 1
    return graph


def copurchase_graph(
    num_vertices: int,
    avg_degree: float = 6.0,
    seed: int = 0,
) -> DiGraph:
    """Co-purchase graph analogue (Amazon): local clusters, high reciprocity."""
    rng = _rng(seed)
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    if num_vertices < 3:
        return graph
    target_edges = int(num_vertices * avg_degree)
    edges_added = 0
    neighbourhood = max(5, num_vertices // 50)
    while edges_added < target_edges:
        u = rng.randrange(num_vertices)
        if rng.random() < 0.85:
            offset = rng.randint(1, neighbourhood)
            v = (u + offset) % num_vertices
        else:
            v = rng.randrange(num_vertices)
        if u == v:
            continue
        if graph.add_edge(u, v):
            edges_added += 1
        if rng.random() < 0.5 and graph.add_edge(v, u):
            edges_added += 1
    return graph


def hierarchy_graph(
    num_vertices: int,
    branching: int = 8,
    extra_edge_fraction: float = 0.15,
    seed: int = 0,
) -> DiGraph:
    """Sparse, almost-acyclic containment hierarchy (LUBM / Freebase analogue).

    Vertices form a forest of containment trees (``subOrganizationOf`` /
    ``containedby`` chains) with a small fraction of extra lateral edges.
    The resulting graph is sparsely connected and almost a DAG, so SCC
    condensation barely helps — matching the paper's LUBM observations.
    """
    rng = _rng(seed)
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    if num_vertices < 2:
        return graph
    num_roots = max(1, num_vertices // (branching * branching))
    for vertex in range(num_roots, num_vertices):
        parent = rng.randrange(max(1, vertex // branching + 1))
        if parent != vertex:
            graph.add_edge(vertex, parent)
    extra = int(num_vertices * extra_edge_fraction)
    for _ in range(extra):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            graph.add_edge(u, v)
    return graph


def community_graph(
    num_communities: int = 6,
    community_size: int = 60,
    intra_prob: float = 0.08,
    inter_prob: float = 0.004,
    seed: int = 0,
) -> DiGraph:
    """Planted-partition graph: dense communities, sparse cross links.

    Used by the community-connectedness application (Table 7): Louvain-style
    detection recovers the planted communities, and the DSR query then checks
    which representatives of one community reach representatives of another.
    """
    rng = _rng(seed)
    total = num_communities * community_size
    graph = DiGraph()
    for vertex in range(total):
        graph.add_vertex(vertex)
    for community in range(num_communities):
        start = community * community_size
        members = range(start, start + community_size)
        for u in members:
            for v in members:
                if u != v and rng.random() < intra_prob:
                    graph.add_edge(u, v)
    for u in range(total):
        for _ in range(max(1, int(inter_prob * total))):
            v = rng.randrange(total)
            if v // community_size != u // community_size and rng.random() < 0.5:
                graph.add_edge(u, v)
    return graph


def layered_graph(
    layers: Sequence[int],
    inter_layer_prob: float = 0.2,
    seed: int = 0,
) -> DiGraph:
    """Layered DAG-ish graph; handy for controlled partitioning tests."""
    rng = _rng(seed)
    graph = DiGraph()
    layer_vertices: List[List[int]] = []
    next_vertex = 0
    for size in layers:
        members = list(range(next_vertex, next_vertex + size))
        for vertex in members:
            graph.add_vertex(vertex)
        layer_vertices.append(members)
        next_vertex += size
    for upper, lower in zip(layer_vertices, layer_vertices[1:]):
        for u in upper:
            for v in lower:
                if rng.random() < inter_layer_prob:
                    graph.add_edge(u, v)
    return graph


def path_graph(num_vertices: int) -> DiGraph:
    """Simple directed path ``0 → 1 → ... → n-1``."""
    graph = DiGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for vertex in range(num_vertices - 1):
        graph.add_edge(vertex, vertex + 1)
    return graph


def cycle_graph(num_vertices: int) -> DiGraph:
    """Simple directed cycle."""
    graph = path_graph(num_vertices)
    if num_vertices > 1:
        graph.add_edge(num_vertices - 1, 0)
    return graph


def paper_example_graph() -> Tuple[DiGraph, dict]:
    """The running example of Figure 1 in the paper.

    Returns ``(graph, assignment)`` where the assignment maps every vertex to
    its 0-based partition id (partitions G1, G2, G3 become 0, 1, 2) and vertex
    labels are the letters used in the figure.

    The exact edge set of Figure 1 is not given in the text, so the edges were
    reconstructed to satisfy every textual constraint of the paper:

    * boundaries ``I1={f}, O1={b,e}, I2={c,g,h}, O2={i}, I3={m,n}, O3={o}``
      (Example 1) with cut edges ``b→c, e→g, e→h, i→m, i→n, o→f``;
    * the local Boolean formulas of Examples 2 and 3
      (``d=b∨e, f=b∨e, a=b∨e``, ``c=i, g=i∨l, h=i``, ``m=p∨o, n=p∨o``);
    * the equivalence sets of Example 5 (forward: ``{c,h}, {g}, {m,n}, {f}``;
      backward: ``{b,e}, {i}, {o}``) and the successor sets of Example 6;
    * the query answers of Examples 2, 3, 7, 8 and 9 (e.g. ``b ⇝ f`` holds
      globally but not inside ``G1`` alone).
    """
    labels = [
        "a", "b", "d", "e", "f", "r",          # partition 1
        "c", "g", "h", "i", "k", "l", "u",     # partition 2
        "m", "n", "o", "p", "q", "v",          # partition 3
    ]
    graph = DiGraph()
    ids = {}
    for label in labels:
        ids[label] = graph.add_vertex(label=label)

    def edge(a: str, b: str) -> None:
        graph.add_edge(ids[a], ids[b])

    # Partition G1 local edges.
    edge("d", "e")
    edge("e", "b")
    edge("a", "e")
    edge("f", "r")
    edge("r", "a")

    # Partition G2 local edges.
    edge("c", "i")
    edge("c", "h")
    edge("h", "i")
    edge("h", "u")
    edge("u", "k")
    edge("g", "i")
    edge("g", "l")
    edge("l", "k")
    edge("l", "i")

    # Partition G3 local edges.
    edge("m", "p")
    edge("m", "v")
    edge("n", "p")
    edge("n", "v")
    edge("p", "q")
    edge("p", "o")
    edge("q", "o")

    # Cut edges (Figure 1b).
    edge("b", "c")
    edge("e", "g")
    edge("e", "h")
    edge("i", "n")
    edge("i", "m")
    edge("o", "f")

    assignment = {}
    for label in ["a", "b", "d", "e", "f", "r"]:
        assignment[ids[label]] = 0
    for label in ["c", "g", "h", "i", "k", "l", "u"]:
        assignment[ids[label]] = 1
    for label in ["m", "n", "o", "p", "q", "v"]:
        assignment[ids[label]] = 2
    return graph, assignment
