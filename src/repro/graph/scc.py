"""Strongly connected components and graph condensation.

SCC condensation is used throughout the paper: compound graphs are stored in
DAG-condensed form (Table 2 reports "Original" vs "DAG" sizes), equivalence
sets start from SCC grouping (Algorithm 3, line 2), and incremental updates
maintain condensed compound graphs (Section 3.3.3).

The implementation is an iterative Tarjan so that large, deep graphs do not
exhaust Python's recursion limit.  It runs over the graph's cached CSR
snapshot (:meth:`repro.graph.digraph.DiGraph.csr`): the DFS state lives in
dense lists indexed by CSR position and edges are scanned straight out of the
flat ``array('q')`` adjacency, so condensing a compound graph — which happens
on every index build and on every maintenance flush — costs no per-visit
hashing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> List[List[int]]:
    """Return the SCCs of ``graph`` as a list of vertex lists.

    The components are returned in reverse topological order of the
    condensation (i.e. a component appears after every component it can
    reach), which is a useful property for downstream dynamic programming.
    """
    csr = graph.csr()
    n = csr.num_vertices
    offsets, targets = csr.fwd_offsets, csr.fwd_targets
    ids = csr.ids

    UNVISITED = -1
    index: List[int] = [UNVISITED] * n
    lowlink: List[int] = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index[root] != UNVISITED:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        # Iterative Tarjan: each frame is [vertex, next-edge cursor].
        work: List[List[int]] = [[root, offsets[root]]]

        while work:
            frame = work[-1]
            vertex, cursor = frame
            end = offsets[vertex + 1]
            advanced = False
            while cursor < end:
                succ = targets[cursor]
                cursor += 1
                if index[succ] == UNVISITED:
                    frame[1] = cursor
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = 1
                    work.append([succ, offsets[succ]])
                    advanced = True
                    break
                if on_stack[succ] and index[succ] < lowlink[vertex]:
                    lowlink[vertex] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
            if lowlink[vertex] == index[vertex]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(ids[member])
                    if member == vertex:
                        break
                components.append(component)
    return components


def condense(graph: DiGraph) -> Tuple[DiGraph, Dict[int, int]]:
    """Condense ``graph`` into its DAG of SCCs.

    Returns ``(dag, vertex_to_component)`` where component ids are dense
    integers ``0..num_components-1`` and ``dag`` contains an edge between two
    components whenever the original graph has an edge between their members.
    Self-loops in the condensation are dropped.
    """
    components = strongly_connected_components(graph)
    vertex_to_component: Dict[int, int] = {}
    for component_id, members in enumerate(components):
        for vertex in members:
            vertex_to_component[vertex] = component_id

    csr = graph.csr()
    offsets, targets = csr.fwd_offsets, csr.fwd_targets
    ids = csr.ids
    component_of = [vertex_to_component[vertex] for vertex in ids]

    dag = DiGraph()
    for component_id in range(len(components)):
        dag.add_vertex(component_id)
    for dense in range(csr.num_vertices):
        cu = component_of[dense]
        for succ in targets[offsets[dense] : offsets[dense + 1]]:
            cv = component_of[succ]
            if cu != cv:
                dag.add_edge(cu, cv)
    return dag, vertex_to_component


def component_members(
    vertex_to_component: Dict[int, int],
) -> Dict[int, List[int]]:
    """Invert a vertex→component mapping into component→members lists."""
    members: Dict[int, List[int]] = {}
    for vertex, component in vertex_to_component.items():
        members.setdefault(component, []).append(vertex)
    return members
