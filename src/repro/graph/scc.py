"""Strongly connected components and graph condensation.

SCC condensation is used throughout the paper: compound graphs are stored in
DAG-condensed form (Table 2 reports "Original" vs "DAG" sizes), equivalence
sets start from SCC grouping (Algorithm 3, line 2), and incremental updates
maintain condensed compound graphs (Section 3.3.3).

The implementation is an iterative Tarjan so that large, deep graphs do not
exhaust Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> List[List[int]]:
    """Return the SCCs of ``graph`` as a list of vertex lists.

    The components are returned in reverse topological order of the
    condensation (i.e. a component appears after every component it can
    reach), which is a useful property for downstream dynamic programming.
    """
    index_counter = 0
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []

    for root in graph.vertices():
        if root in index:
            continue
        # Iterative Tarjan: each frame is (vertex, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            vertex, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[vertex] = min(lowlink[vertex], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def condense(graph: DiGraph) -> Tuple[DiGraph, Dict[int, int]]:
    """Condense ``graph`` into its DAG of SCCs.

    Returns ``(dag, vertex_to_component)`` where component ids are dense
    integers ``0..num_components-1`` and ``dag`` contains an edge between two
    components whenever the original graph has an edge between their members.
    Self-loops in the condensation are dropped.
    """
    components = strongly_connected_components(graph)
    vertex_to_component: Dict[int, int] = {}
    for component_id, members in enumerate(components):
        for vertex in members:
            vertex_to_component[vertex] = component_id

    dag = DiGraph()
    for component_id in range(len(components)):
        dag.add_vertex(component_id)
    for u, v in graph.edges():
        cu = vertex_to_component[u]
        cv = vertex_to_component[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return dag, vertex_to_component


def component_members(
    vertex_to_component: Dict[int, int],
) -> Dict[int, List[int]]:
    """Invert a vertex→component mapping into component→members lists."""
    members: Dict[int, List[int]] = {}
    for vertex, component in vertex_to_component.items():
        members.setdefault(component, []).append(vertex)
    return members
