"""Directed-graph substrate used by every other subsystem.

Contract: owns graph *representation* only — the mutable
:class:`~repro.graph.digraph.DiGraph`, its immutable CSR snapshot
(:meth:`DiGraph.csr` / :class:`~repro.graph.csr.CSRGraph`, rebuilt lazily
after mutations), SCC condensation, reference traversals, I/O and synthetic
generators.  No partitioning, indexing or distribution logic lives here, and
nothing in this package imports from a higher layer (see
``docs/ARCHITECTURE.md``).

Modules:

* :mod:`repro.graph.digraph` — mutable ``DiGraph`` (Definition 1 of the
  paper) with the cached CSR dirty-flag life cycle.
* :mod:`repro.graph.csr` — the immutable ``array('q')`` CSR snapshot every
  batched kernel traverses.
* :mod:`repro.graph.scc` — SCCs + condensation, iterative Tarjan over CSR.
* :mod:`repro.graph.traversal` — reference BFS/DFS/multi-source traversals
  (ground truth for the test suite).
* :mod:`repro.graph.io` / :mod:`repro.graph.generators` — edge-list
  readers/writers and the synthetic dataset generators.
"""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.traversal import (
    bfs_reachable_set,
    dfs_reachable_set,
    is_reachable,
    multi_source_reachability,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "strongly_connected_components",
    "condense",
    "bfs_reachable_set",
    "dfs_reachable_set",
    "is_reachable",
    "multi_source_reachability",
]
