"""Directed-graph kernel used by every other subsystem.

The kernel provides:

* :class:`~repro.graph.digraph.DiGraph` — a mutable directed graph with
  integer vertex identifiers and an optional bijective label mapping
  (Definition 1 of the paper).
* SCC computation and condensation (:mod:`repro.graph.scc`).
* BFS/DFS/multi-source-BFS traversals (:mod:`repro.graph.traversal`).
* Edge-list readers and writers (:mod:`repro.graph.io`).
* Synthetic dataset generators that stand in for the paper's graph
  collections (:mod:`repro.graph.generators`).
"""

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.traversal import (
    bfs_reachable_set,
    dfs_reachable_set,
    is_reachable,
    multi_source_reachability,
)

__all__ = [
    "DiGraph",
    "strongly_connected_components",
    "condense",
    "bfs_reachable_set",
    "dfs_reachable_set",
    "is_reachable",
    "multi_source_reachability",
]
