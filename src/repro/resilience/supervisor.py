"""Health supervision: circuit breakers + the probing supervisor.

:class:`CircuitBreaker` is the classic three-state machine, per target:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them open the breaker;
* **open** — the target is considered down.  Probes are suppressed until a
  capped-exponential-with-jitter backoff elapses (each consecutive open
  lengthens the wait, via the shared
  :class:`~repro.resilience.backoff.BackoffPolicy`);
* **half-open** — the backoff elapsed; exactly one probe is allowed.
  Success closes the breaker, failure re-opens it with a longer backoff.

:class:`HealthSupervisor` owns one breaker per registered target and a
probe function for each.  It can run its probe loop on a daemon thread
(:meth:`start`) or be driven synchronously (:meth:`probe_now` — the
deterministic test path).  Targets also receive *inline* observations
(:meth:`report_failure` / :meth:`report_success`) from the serving path, so
a breaker can open from real traffic between probe rounds.

State changes drive the eject/admit callbacks: the fleet wires these to
:meth:`QueryRouter.eject` / :meth:`~QueryRouter.readmit`, which is what
makes an open breaker mean *zero routed queries* and a recovered probe mean
automatic re-admission.

Metrics: ``dsr_breaker_state{target=…}`` (0 closed, 1 half-open, 2 open),
``dsr_breaker_transitions_total{target=…,to=…}`` and
``dsr_health_probes_total{target=…,outcome=…}``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.runtime import global_registry
from repro.resilience.backoff import BackoffPolicy

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

_STATE_GAUGE = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0, BREAKER_OPEN: 2.0}

#: Default probe backoff: first re-probe half a second after an open, then
#: 1s, 2s, … capped at 30s — jittered so a fleet of breakers never
#: synchronises its probes.
DEFAULT_BREAKER_BACKOFF = BackoffPolicy(
    base_seconds=0.5, multiplier=2.0, cap_seconds=30.0, jitter=0.1
)


class CircuitBreaker:
    """Per-target closed/open/half-open failure accounting.

    ``clock`` is injectable (monotonic seconds) so tests drive the backoff
    window deterministically instead of sleeping through it.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.backoff = backoff if backoff is not None else DEFAULT_BREAKER_BACKOFF
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._open_count = 0
        self._open_until = 0.0
        self._publish_state()

    # ------------------------------------------------------------------ #
    # observations
    # ------------------------------------------------------------------ #
    def record_failure(self) -> str:
        """Fold in one failure; returns the (possibly new) state."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN or (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open_locked()
            return self._state

    def record_success(self) -> str:
        """Fold in one success; an open/half-open breaker closes."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != BREAKER_CLOSED:
                self._transition(BREAKER_CLOSED)
                self._open_count = 0
            return self._state

    def _open_locked(self) -> None:
        self._open_count += 1
        self._open_until = self._clock() + self.backoff.delay(self._open_count)
        self._transition(BREAKER_OPEN)

    def allow_probe(self) -> bool:
        """May the caller touch the target right now?

        Closed: yes.  Open: only once the backoff window elapsed, which
        flips the breaker to half-open (the single allowed probe).
        Half-open: yes — the probe in flight is the caller's.
        """
        with self._lock:
            if self._state == BREAKER_OPEN:
                if self._clock() < self._open_until:
                    return False
                self._transition(BREAKER_HALF_OPEN)
            return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def is_open(self) -> bool:
        """True while traffic should avoid the target (open or half-open)."""
        with self._lock:
            return self._state != BREAKER_CLOSED

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def open_count(self) -> int:
        with self._lock:
            return self._open_count

    def seconds_until_probe(self) -> float:
        with self._lock:
            if self._state != BREAKER_OPEN:
                return 0.0
            return max(0.0, self._open_until - self._clock())

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        registry = global_registry()
        if registry.enabled:
            registry.inc(
                "dsr_breaker_transitions_total", target=self.name, to=state
            )
        self._publish_state()

    def _publish_state(self) -> None:
        registry = global_registry()
        if registry.enabled:
            registry.set_gauge(
                "dsr_breaker_state", _STATE_GAUGE[self._state], target=self.name
            )


class _Target:
    __slots__ = ("name", "probe", "on_eject", "on_admit", "breaker", "ejected")

    def __init__(self, name, probe, on_eject, on_admit, breaker) -> None:
        self.name = name
        self.probe = probe
        self.on_eject = on_eject
        self.on_admit = on_admit
        self.breaker = breaker
        self.ejected = False


class HealthSupervisor:
    """Probes a set of named targets and drives their breakers.

    ``probe_interval_seconds`` is the cadence of the background loop (only
    used after :meth:`start`); ``failure_threshold`` / ``backoff`` / ``clock``
    parameterise every target's breaker identically.
    """

    def __init__(
        self,
        probe_interval_seconds: float = 1.0,
        failure_threshold: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if probe_interval_seconds <= 0:
            raise ValueError("probe_interval_seconds must be positive")
        self.probe_interval_seconds = probe_interval_seconds
        self._failure_threshold = failure_threshold
        self._backoff = backoff
        self._clock = clock
        self._targets: Dict[str, _Target] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_target(
        self,
        name: str,
        probe: Callable[[], bool],
        on_eject: Optional[Callable[[], None]] = None,
        on_admit: Optional[Callable[[], None]] = None,
    ) -> CircuitBreaker:
        """Register ``name`` with its probe; returns the target's breaker.

        ``probe`` returns truthy for healthy (exceptions count as failures).
        ``on_eject`` fires when the breaker opens, ``on_admit`` when a
        previously ejected target's breaker closes again.
        """
        breaker = CircuitBreaker(
            name,
            failure_threshold=self._failure_threshold,
            backoff=self._backoff,
            clock=self._clock,
        )
        target = _Target(name, probe, on_eject, on_admit, breaker)
        with self._lock:
            if name in self._targets:
                raise ValueError(f"target {name!r} is already supervised")
            self._targets[name] = target
        return breaker

    def breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            return self._targets[name].breaker

    def target_names(self) -> List[str]:
        with self._lock:
            return sorted(self._targets)

    # ------------------------------------------------------------------ #
    # observations from the serving path
    # ------------------------------------------------------------------ #
    def report_failure(self, name: str) -> None:
        """Inline failure observation (e.g. a routed query blew up)."""
        target = self._get(name)
        if target is not None:
            target.breaker.record_failure()
            self._reconcile(target)

    def report_success(self, name: str) -> None:
        target = self._get(name)
        if target is not None:
            target.breaker.record_success()
            self._reconcile(target)

    def is_healthy(self, name: str) -> bool:
        target = self._get(name)
        return target is None or not target.breaker.is_open

    def _get(self, name: str) -> Optional[_Target]:
        with self._lock:
            return self._targets.get(name)

    # ------------------------------------------------------------------ #
    # probing
    # ------------------------------------------------------------------ #
    def probe_now(self) -> Dict[str, bool]:
        """Probe every target once, synchronously; ``{name: healthy}``.

        Targets whose breaker is open and still inside its backoff window
        are *not* touched (that is the breaker's job: back off, don't
        hammer) and report unhealthy.
        """
        with self._lock:
            targets = list(self._targets.values())
        results: Dict[str, bool] = {}
        registry = global_registry()
        for target in targets:
            if not target.breaker.allow_probe():
                results[target.name] = False
                continue
            try:
                healthy = bool(target.probe())
            except Exception:
                healthy = False
            if registry.enabled:
                registry.inc(
                    "dsr_health_probes_total",
                    target=target.name,
                    outcome="ok" if healthy else "fail",
                )
            if healthy:
                target.breaker.record_success()
            else:
                target.breaker.record_failure()
            self._reconcile(target)
            results[target.name] = healthy
        return results

    def _reconcile(self, target: _Target) -> None:
        """Fire eject/admit callbacks on breaker state edges (idempotent)."""
        open_now = target.breaker.is_open
        if open_now and not target.ejected:
            target.ejected = True
            if target.on_eject is not None:
                target.on_eject()
        elif not open_now and target.ejected:
            target.ejected = False
            if target.on_admit is not None:
                target.on_admit()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "HealthSupervisor":
        """Run :meth:`probe_now` every interval on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="dsr-health-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.probe_interval_seconds):
            try:
                self.probe_now()
            except Exception:  # pragma: no cover - probes must not kill the loop
                pass

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """The ``health`` section of ``DSRService.stats()``."""
        with self._lock:
            targets = list(self._targets.values())
        return {
            "probe_interval_seconds": self.probe_interval_seconds,
            "running": self.running,
            "targets": {
                target.name: {
                    "state": target.breaker.state,
                    "ejected": target.ejected,
                    "consecutive_failures": target.breaker.consecutive_failures,
                    "opens": target.breaker.open_count,
                    "next_probe_seconds": round(
                        target.breaker.seconds_until_probe(), 3
                    ),
                }
                for target in targets
            },
        }


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "DEFAULT_BREAKER_BACKOFF",
    "CircuitBreaker",
    "HealthSupervisor",
]
