"""Capped exponential backoff with deterministic jitter.

Every retry loop in the codebase draws its sleeps from one
:class:`BackoffPolicy` instead of rolling its own schedule.  The policy
fixes the two classic mistakes of ad-hoc backoff:

* ``backoff * attempt`` linear schedules sleep **zero** seconds before the
  first retry (``attempt == 0``) — so a dead peer is hammered immediately;
* un-jittered schedules synchronise every client of a recovering peer into
  retry stampedes.

The jitter is *deterministic*: it is derived from ``(seed, attempt)``, not
from global randomness, so a given policy always produces the same sleep
sequence — which is what lets tests pin the schedule exactly and what keeps
seeded chaos runs reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

#: Knuth's multiplicative-hash constant: mixes (seed, attempt) into a
#: well-spread RNG seed without depending on Python's per-process str hash.
_MIX = 2654435761


@dataclass(frozen=True)
class BackoffPolicy:
    """``delay(attempt)`` for attempt 1, 2, 3, … — never zero, always capped.

    The raw schedule is ``base_seconds * multiplier**(attempt-1)`` clamped to
    ``cap_seconds``; the result is then stretched by up to ``jitter``
    (relative, e.g. ``0.1`` = up to +10%) using a deterministic per-attempt
    fraction seeded from ``seed``.
    """

    base_seconds: float = 0.05
    multiplier: float = 2.0
    cap_seconds: float = 1.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_seconds <= 0:
            raise ValueError("base_seconds must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap_seconds < self.base_seconds:
            raise ValueError("cap_seconds must be >= base_seconds")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based).  Always ``> 0``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.cap_seconds, self.base_seconds * self.multiplier ** (attempt - 1)
        )
        if not self.jitter:
            return raw
        fraction = random.Random(self.seed * _MIX + attempt).random()
        return raw * (1.0 + self.jitter * fraction)

    def delays(self, attempts: int) -> Tuple[float, ...]:
        """The full sleep sequence for ``attempts`` retries (introspection)."""
        return tuple(self.delay(i) for i in range(1, attempts + 1))


__all__ = ["BackoffPolicy"]
