"""End-to-end query deadlines.

A :class:`Deadline` is captured **once**, at admission, from the query's
relative ``deadline_ms`` budget and carried — not recomputed — through every
layer below: the service checks it before dequeuing and between plan
batches, the core query loop checks it between stale-epoch retries, and the
TCP executor converts the *remaining* budget into per-call socket timeouts
so one wedged worker host turns into a typed
:class:`~repro.resilience.errors.DeadlineExceededError` instead of an
indefinite hang.

Propagation
-----------
Layers do not thread the deadline through every signature.  The service
enters a :func:`deadline_scope` around request execution and lower layers
ask :func:`current_deadline` — a thread-local, because the serving stack
hops threads explicitly (worker pool, RPC dispatch pool) and each hop
re-enters the scope with the deadline it captured at submission
(:meth:`TcpExecutor._fan_out` does exactly that).  When no scope is active
``current_deadline()`` is ``None`` and every check is a no-op, so
deadline-free traffic pays one attribute read.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.runtime import global_registry
from repro.resilience.errors import DeadlineExceededError


class Deadline:
    """An absolute monotonic expiry derived from a relative ms budget."""

    __slots__ = ("deadline_ms", "started_at", "expires_at")

    def __init__(self, deadline_ms: float, started_at: Optional[float] = None) -> None:
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        self.deadline_ms = float(deadline_ms)
        self.started_at = time.monotonic() if started_at is None else started_at
        self.expires_at = self.started_at + self.deadline_ms / 1000.0

    @classmethod
    def from_query(cls, query) -> Optional["Deadline"]:
        """The query's deadline, started *now* — ``None`` when it has none."""
        budget = getattr(query, "deadline_ms", None)
        return cls(budget) if budget else None

    @property
    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.started_at) * 1000.0

    def remaining_seconds(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def exceeded(self, stage: str) -> DeadlineExceededError:
        """Build (and count) the typed error for this deadline at ``stage``."""
        registry = global_registry()
        if registry.enabled:
            registry.inc("dsr_deadline_exceeded_total", stage=stage)
        elapsed = self.elapsed_ms
        return DeadlineExceededError(
            f"query exceeded its {self.deadline_ms:g}ms deadline "
            f"after {elapsed:.1f}ms ({stage})",
            deadline_ms=self.deadline_ms,
            elapsed_ms=elapsed,
            stage=stage,
        )

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        if self.expired:
            raise self.exceeded(stage)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Deadline {self.deadline_ms:g}ms "
            f"remaining={self.remaining_seconds() * 1000.0:.1f}ms>"
        )


_scope = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline of the request this thread is executing, if any."""
    return getattr(_scope, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Make ``deadline`` visible to everything this thread calls.

    ``None`` scopes are legal and simply shadow any outer scope — a worker
    thread serving a deadline-free request after a deadlined one must not
    inherit the previous request's expiry.
    """
    previous = getattr(_scope, "deadline", None)
    _scope.deadline = deadline
    try:
        yield deadline
    finally:
        _scope.deadline = previous


def check_deadline(stage: str) -> None:
    """Check the current scope's deadline; a no-op when none is active."""
    deadline = getattr(_scope, "deadline", None)
    if deadline is not None:
        deadline.check(stage)


__all__ = [
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]
