"""Failure-domain supervision for the DSR serving stack.

Contract: everything that makes the distributed surface *survivable* lives
here, in one package the rest of the codebase imports from —

* :mod:`repro.resilience.errors` — the typed failure vocabulary
  (:class:`DeadlineExceededError`);
* :mod:`repro.resilience.backoff` — the shared capped-exponential-with-jitter
  :class:`BackoffPolicy` every retry loop draws its sleeps from (replacing
  ad-hoc ``backoff * attempt`` linear schedules, whose first retry slept
  zero seconds);
* :mod:`repro.resilience.deadline` — end-to-end query deadlines: a
  :class:`Deadline` captured once at admission and consulted between
  batches, between stale-epoch retries and inside per-call RPC socket
  timeouts via the :func:`deadline_scope` / :func:`current_deadline`
  propagation pair;
* :mod:`repro.resilience.failpoints` — named, seeded, deterministic
  fault-injection sites (:func:`failpoint`) wired into the real failure
  seams (TCP RPC, hydration replay, worker dispatch, shm attach/unlink,
  replica rebuild, the service flush path), zero-cost when disabled;
* :mod:`repro.resilience.supervisor` — per-target circuit breakers
  (closed/open/half-open) and the :class:`HealthSupervisor` that probes
  worker hosts and fleet replicas, ejects unhealthy replicas from routing
  and re-admits them after a successful probe.

See ``docs/RESILIENCE.md`` for the failpoint catalog, the deadline
semantics, the breaker state machine and the degraded-mode matrix.
"""

from repro.resilience.backoff import BackoffPolicy
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.errors import DeadlineExceededError
from repro.resilience.failpoints import (
    FailPointError,
    FailPointRegistry,
    FailPointSpec,
    failpoint,
    global_failpoints,
    set_global_failpoints,
    use_failpoints,
)
from repro.resilience.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    HealthSupervisor,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BackoffPolicy",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "FailPointError",
    "FailPointRegistry",
    "FailPointSpec",
    "HealthSupervisor",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "failpoint",
    "global_failpoints",
    "set_global_failpoints",
    "use_failpoints",
]
