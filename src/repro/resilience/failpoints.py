"""Named, seeded, deterministic fault-injection sites.

A **failpoint** is a named hook compiled into a real failure seam —
``failpoint("tcp.call", rank=r)`` sits exactly where a worker RPC can fail
in production.  With no schedule configured the call is two attribute reads
(the same zero-cost-when-disabled contract as
:attr:`repro.obs.registry.MetricsRegistry.enabled`); with one, each
matching hit is evaluated against the spec's trigger window and fires its
action: raise a typed error, delay, drop the connection, or invoke a test
callback.

Determinism is the point: a chaos suite configures an explicit, seeded
schedule (which hit of which site fails, how many times) and replays it
identically on every run — no random process killers.

Sites wired into the codebase (the catalog lives in
``docs/RESILIENCE.md``):

==========================  =====================================================
site                        seam
==========================  =====================================================
``tcp.call``                :meth:`TcpExecutor._call_worker` send side
``tcp.recv``                :meth:`TcpExecutor._call_worker` receive side
``tcp.hydrate``             :meth:`TcpExecutor.hydrate` / ``hydrate_all``
``tcp.hydrate.replay``      reconnect-time hydration replay
``executor.dispatch``       :meth:`ProcessExecutor._call_worker`
``shm.attach``              worker-side shared-memory attach
``shm.unlink``              master-side segment destroy
``fleet.rebuild``           :meth:`FleetReplica._do_rebuild`
``service.flush``           the service's explicit-flush update path
==========================  =====================================================

Configuration
-------------
Programmatic (tests): ``use_failpoints([FailPointSpec(...)])`` scopes a
schedule to a ``with`` block.  Environment (CI chaos jobs):
``REPRO_FAILPOINTS`` holds a JSON list of spec dicts and is read once at
import, e.g.::

    REPRO_FAILPOINTS='[{"site": "tcp.call", "action": "drop",
                        "labels": {"rank": 0}, "after": 2, "count": 1}]'
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence


class FailPointError(RuntimeError):
    """Default error a ``raise`` action throws when no type is named."""


#: Exception types a ``raise`` action may name (wire-safe string → class).
_RAISABLE: Dict[str, type] = {
    "FailPointError": FailPointError,
    "ConnectionError": ConnectionError,
    "ConnectionResetError": ConnectionResetError,
    "OSError": OSError,
    "EOFError": EOFError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}

#: Actions a spec may take when it fires.
ACTIONS = ("raise", "delay", "drop", "call")


@dataclass
class FailPointSpec:
    """One scheduled fault: where, what, and exactly when.

    ``site``
        The failpoint name the spec arms (exact match).
    ``action`` / ``value``
        ``"raise"`` throws ``value`` (an exception-type name from the
        raisable table, default :class:`FailPointError`); ``"delay"`` sleeps
        ``value`` seconds; ``"drop"`` raises :class:`ConnectionError` (the
        transport-loss idiom every RPC seam already handles); ``"call"``
        invokes ``value(labels)`` — an in-process hook for tests that need a
        real side effect (e.g. killing a managed worker-host subprocess).
    ``labels``
        Optional subset match against the site's call labels: a spec with
        ``labels={"rank": 0}`` only matches hits carrying ``rank=0``.
    ``after`` / ``count``
        The trigger window over *matching* hits: skip the first ``after``,
        then fire for ``count`` hits (``None`` = forever).
    ``probability``
        Fire each windowed hit only with this probability, drawn from the
        registry's seeded RNG — deterministic for a given seed + hit order.
    """

    site: str
    action: str = "raise"
    value: Any = None
    labels: Optional[Dict[str, Any]] = None
    after: int = 0
    count: Optional[int] = 1
    probability: float = 1.0
    #: Mutable hit accounting (managed by the registry).
    hits: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown failpoint action {self.action!r}; "
                f"available: {', '.join(ACTIONS)}"
            )
        if self.action == "raise":
            name = self.value if self.value is not None else "FailPointError"
            if name not in _RAISABLE:
                raise ValueError(
                    f"cannot raise {name!r}; known: {', '.join(sorted(_RAISABLE))}"
                )
        elif self.action == "delay":
            if not isinstance(self.value, (int, float)) or self.value < 0:
                raise ValueError("delay action needs a non-negative seconds value")
        elif self.action == "call" and not callable(self.value):
            raise ValueError("call action needs a callable value")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 or None")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")

    def matches(self, site: str, labels: Mapping[str, Any]) -> bool:
        if site != self.site:
            return False
        if self.labels:
            return all(labels.get(k) == v for k, v in self.labels.items())
        return True

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailPointSpec":
        known = {"site", "action", "value", "labels", "after", "count", "probability"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown failpoint spec keys: {', '.join(unknown)}")
        if "site" not in payload:
            raise ValueError("failpoint spec needs a 'site'")
        return cls(**dict(payload))


class FailPointRegistry:
    """The armed failpoint schedule of one process.

    ``enabled`` is the zero-cost switch: :func:`failpoint` reads it before
    doing anything else, so an empty registry costs a single branch per
    site.  All mutation and evaluation is lock-protected — sites fire from
    worker/dispatch threads concurrently.
    """

    def __init__(self, specs: Sequence[FailPointSpec] = (), seed: int = 0) -> None:
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._specs: List[FailPointSpec] = []
        self.enabled = False
        if specs:
            self.configure(specs)

    def configure(self, specs: Sequence[FailPointSpec]) -> None:
        """Atomically replace the schedule (arming the registry)."""
        with self._lock:
            self._specs = list(specs)
            self.enabled = bool(self._specs)

    def add(self, spec: FailPointSpec) -> None:
        with self._lock:
            self._specs.append(spec)
            self.enabled = True

    def clear(self) -> None:
        with self._lock:
            self._specs = []
            self.enabled = False

    def fired(self, site: Optional[str] = None) -> int:
        """How many scheduled faults actually fired (optionally per site)."""
        with self._lock:
            return sum(
                spec.fired
                for spec in self._specs
                if site is None or spec.site == site
            )

    def specs(self) -> List[FailPointSpec]:
        with self._lock:
            return list(self._specs)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, site: str, labels: Mapping[str, Any]) -> None:
        """Run ``site``'s matching specs; called only when ``enabled``."""
        to_fire: List[FailPointSpec] = []
        with self._lock:
            for spec in self._specs:
                if not spec.matches(site, labels):
                    continue
                spec.hits += 1
                if spec.hits <= spec.after:
                    continue
                if spec.count is not None and spec.fired >= spec.count:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                spec.fired += 1
                to_fire.append(spec)
        # Actions run outside the lock: a delay must not serialise every
        # other site, and a call-action may re-enter arbitrary code.
        for spec in to_fire:
            self._fire(spec, site, labels)

    def _fire(self, spec: FailPointSpec, site: str, labels: Mapping[str, Any]) -> None:
        if spec.action == "delay":
            time.sleep(float(spec.value))
            return
        if spec.action == "call":
            spec.value(dict(labels))
            return
        if spec.action == "drop":
            raise ConnectionError(f"failpoint {site!r} dropped the connection")
        name = spec.value if spec.value is not None else "FailPointError"
        raise _RAISABLE[name](f"failpoint {site!r} injected {name}")

    @classmethod
    def from_env(cls, value: str, seed: int = 0) -> "FailPointRegistry":
        """Parse a ``REPRO_FAILPOINTS`` JSON schedule into a registry."""
        try:
            payload = json.loads(value)
        except json.JSONDecodeError as exc:
            raise ValueError(f"REPRO_FAILPOINTS is not valid JSON: {exc}") from exc
        if not isinstance(payload, list):
            raise ValueError("REPRO_FAILPOINTS must be a JSON list of spec dicts")
        return cls([FailPointSpec.from_dict(entry) for entry in payload], seed=seed)


_global = FailPointRegistry()


def global_failpoints() -> FailPointRegistry:
    """The process-wide registry every compiled-in site consults."""
    return _global


def set_global_failpoints(registry: FailPointRegistry) -> FailPointRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _global
    previous = _global
    _global = registry
    return previous


@contextmanager
def use_failpoints(
    specs: Sequence[FailPointSpec], seed: int = 0
) -> Iterator[FailPointRegistry]:
    """Scope a schedule to a ``with`` block (the test idiom)."""
    registry = FailPointRegistry(specs, seed=seed)
    previous = set_global_failpoints(registry)
    try:
        yield registry
    finally:
        set_global_failpoints(previous)


def failpoint(site: str, **labels: Any) -> None:
    """The compiled-in hook.  Disabled: two attribute reads and a branch."""
    registry = _global
    if not registry.enabled:
        return
    registry.evaluate(site, labels)


def _bootstrap_from_env() -> None:
    value = os.environ.get("REPRO_FAILPOINTS")
    if value:
        seed = int(os.environ.get("REPRO_FAILPOINTS_SEED", "0"))
        set_global_failpoints(FailPointRegistry.from_env(value, seed=seed))


_bootstrap_from_env()


__all__ = [
    "ACTIONS",
    "FailPointError",
    "FailPointRegistry",
    "FailPointSpec",
    "failpoint",
    "global_failpoints",
    "set_global_failpoints",
    "use_failpoints",
]
