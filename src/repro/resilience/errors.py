"""Typed failure vocabulary of the resilience layer."""

from __future__ import annotations

from typing import Optional


class DeadlineExceededError(RuntimeError):
    """A query overran its end-to-end ``deadline_ms`` budget.

    Raised (never returned) wherever the budget runs out — at admission, in
    the queue, between plan batches, between stale-epoch retries, or inside
    a worker RPC whose socket timeout was derived from the remaining
    budget.  ``stage`` names that enforcement point, so callers and metrics
    (``dsr_deadline_exceeded_total{stage=…}``) can tell a query that never
    started from one that timed out mid-RPC.
    """

    def __init__(
        self,
        message: str,
        deadline_ms: Optional[float] = None,
        elapsed_ms: Optional[float] = None,
        stage: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        self.stage = stage


__all__ = ["DeadlineExceededError"]
