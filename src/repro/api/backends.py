"""Backend protocol and string-keyed registry.

A *backend* is one interchangeable execution strategy for set-reachability
queries — the partitioned DSR index, the Giraph/Giraph++-style vertex-centric
baselines, the naive per-pair evaluation, … .  Every backend answers the same
:class:`~repro.api.query.ReachQuery` and returns the same
:class:`~repro.core.query.QueryResult`, so callers (service, CLI, benchmarks)
can switch strategies by changing one string in a
:class:`~repro.api.config.DSRConfig`.

>>> from repro.api import DSRConfig, ReachQuery, open_engine
>>> from repro.graph import generators
>>> graph = generators.random_digraph(50, 120, seed=3)
>>> engine = open_engine(graph, DSRConfig(backend="giraphpp", num_partitions=3))
>>> result = engine.run(ReachQuery((0, 1), (20, 30)))

Third-party strategies plug in through :func:`register_backend`::

    register_backend("mine", lambda graph, config, partitioning: MyBackend(...))
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

try:  # Protocol is 3.8+; runtime_checkable lets isinstance() work on it.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.api.config import DSRConfig
from repro.api.query import ReachQuery
from repro.core.query import QueryResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.digraph import DiGraph
    from repro.partition.partition import GraphPartitioning


class UnknownBackendError(ValueError):
    """Raised by :func:`open_engine` for a backend name that is not registered."""


@runtime_checkable
class Backend(Protocol):
    """What every execution strategy exposes once opened.

    ``name`` is the registry key the backend was opened under; ``run`` answers
    one :class:`ReachQuery` with a :class:`QueryResult`; ``reachable`` is the
    single-pair special case (Algorithm 1).
    """

    name: str

    def run(self, query: ReachQuery) -> QueryResult:
        """Answer ``query`` and return the reachable pairs plus statistics."""
        ...

    def reachable(self, source: int, target: int) -> bool:
        """Single-pair reachability."""
        ...


#: ``factory(graph, config, partitioning)`` returns a ready-to-query Backend.
#: ``partitioning`` is an optional pre-computed partitioning to share across
#: backends (``None`` means: derive one from the config).
BackendFactory = Callable[
    ["DiGraph", DSRConfig, Optional["GraphPartitioning"]], Backend
]

_REGISTRY: Dict[str, BackendFactory] = {}


def _ensure_builtin_backends() -> None:
    # The built-in adapters live in their own module to keep this one free of
    # engine imports; importing it registers them (idempotent).
    import repro.api.adapters  # noqa: F401


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` for :func:`open_engine`.

    Re-registering an existing name raises ``ValueError`` unless
    ``replace=True``.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ValueError(f"backend factory for {name!r} must be callable")
    _ensure_builtin_backends()
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    _ensure_builtin_backends()
    return tuple(sorted(_REGISTRY))


def open_engine(
    graph: "DiGraph",
    config: Optional[DSRConfig] = None,
    *,
    partitioning: Optional["GraphPartitioning"] = None,
) -> Backend:
    """Open the backend named by ``config.backend`` over ``graph``.

    The returned engine is fully built and ready to :meth:`~Backend.run`
    queries.  ``partitioning`` optionally supplies a pre-computed
    :class:`~repro.partition.partition.GraphPartitioning` so several backends
    (e.g. in a benchmark) share the exact same graph cut; when omitted, the
    partitioning is derived from the config's ``num_partitions``,
    ``partitioner`` and ``seed``.
    """
    _ensure_builtin_backends()
    if config is None:
        config = DSRConfig()
    factory = _REGISTRY.get(config.backend)
    if factory is None:
        raise UnknownBackendError(
            f"unknown backend {config.backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return factory(graph, config, partitioning)


__all__ = [
    "Backend",
    "BackendFactory",
    "UnknownBackendError",
    "available_backends",
    "open_engine",
    "register_backend",
    "unregister_backend",
]
