"""Built-in backend adapters.

Importing this module registers the paper's execution strategies in the
backend registry (:mod:`repro.api.backends`):

=============== ======================================================
name            strategy
=============== ======================================================
``dsr``         partitioned DSR index, one-round protocol (Section 3.3)
``naive``       one Fan et al. query per ``(s, t)`` pair (Section 3.1)
``fan``         Fan et al. generalised to sets (Section 3.2)
``giraph``      vertex-centric BSP traversal (Appendix 8.4.1)
``giraphpp``    graph-centric Giraph++ traversal (Appendix 8.4.2)
``giraphpp-eq`` Giraph++ with class-addressed messages (Appendix 8.4.3)
=============== ======================================================

The non-DSR engines keep their historical ``query(sources, targets)``
methods; :class:`QueryAdapter` wraps them so they satisfy the
:class:`~repro.api.backends.Backend` protocol — same :class:`ReachQuery` in,
same :class:`~repro.core.query.QueryResult` out.
"""

from __future__ import annotations

from typing import Optional

from repro.api.backends import _REGISTRY, register_backend
from repro.api.config import DSRConfig
from repro.api.query import ReachQuery
from repro.core.query import QueryResult
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning, make_partitioning


def partitioning_from_config(
    graph: DiGraph,
    config: DSRConfig,
    partitioning: Optional[GraphPartitioning] = None,
) -> GraphPartitioning:
    """The shared partitioning, or one derived from the config."""
    if partitioning is not None:
        return partitioning
    return make_partitioning(
        graph, config.num_partitions, strategy=config.partitioner, seed=config.seed
    )


class QueryAdapter:
    """Adapts a ``query(sources, targets)``-style engine to the Backend protocol."""

    #: Directions the wrapped engine can execute. The traversal baselines all
    #: start at the sources, so only forward processing is available.
    supported_directions = ("auto", "forward")

    def __init__(self, name: str, inner) -> None:
        self.name = name
        self.inner = inner

    def run(self, query: ReachQuery) -> QueryResult:
        if query.direction not in self.supported_directions:
            raise ValueError(
                f"backend {self.name!r} does not support "
                f"{query.direction!r} processing"
            )
        if query.is_empty:
            return QueryResult(pairs=set())
        return self.inner.query(query.sources, query.targets)

    def reachable(self, source: int, target: int) -> bool:
        return (source, target) in self.run(ReachQuery.single(source, target)).pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} inner={type(self.inner).__name__}>"


# ---------------------------------------------------------------------- #
# factories
# ---------------------------------------------------------------------- #
def _open_dsr(graph, config, partitioning):
    from repro.core.engine import DSREngine

    if config.fleet:
        from repro.fleet import ReplicaFleet

        return ReplicaFleet.from_config(graph, config, partitioning=partitioning)
    engine = DSREngine.from_config(graph, config, partitioning=partitioning)
    engine.build_index()
    return engine


def _open_naive(graph, config, partitioning):
    from repro.core.naive import DSRNaive

    return QueryAdapter(
        "naive",
        DSRNaive(
            partitioning_from_config(graph, config, partitioning),
            local_strategy=config.local_index,
        ),
    )


def _open_fan(graph, config, partitioning):
    from repro.core.fan import DSRFan

    return QueryAdapter(
        "fan",
        DSRFan(
            partitioning_from_config(graph, config, partitioning),
            local_strategy=config.local_index,
        ),
    )


def _open_giraph(graph, config, partitioning):
    from repro.giraph.giraph_dsr import GiraphDSR

    return QueryAdapter(
        "giraph",
        GiraphDSR(graph, partitioning_from_config(graph, config, partitioning)),
    )


def _open_giraphpp(graph, config, partitioning):
    from repro.giraph.giraphpp_dsr import GiraphPlusPlusDSR

    return QueryAdapter(
        "giraphpp",
        GiraphPlusPlusDSR(
            graph, partitioning_from_config(graph, config, partitioning)
        ),
    )


def _open_giraphpp_eq(graph, config, partitioning):
    from repro.giraph.giraphpp_eq_dsr import GiraphPlusPlusEqDSR

    return QueryAdapter(
        "giraphpp-eq",
        GiraphPlusPlusEqDSR(
            graph, partitioning_from_config(graph, config, partitioning)
        ),
    )


_BUILTINS = {
    "dsr": _open_dsr,
    "naive": _open_naive,
    "fan": _open_fan,
    "giraph": _open_giraph,
    "giraphpp": _open_giraphpp,
    "giraphpp-eq": _open_giraphpp_eq,
}

for _name, _factory in _BUILTINS.items():
    if _name not in _REGISTRY:  # idempotent under re-import
        register_backend(_name, _factory)


__all__ = ["QueryAdapter", "partitioning_from_config"]
