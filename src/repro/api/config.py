"""Typed, serialisable engine configuration.

:class:`DSRConfig` is the single description of *how* a set-reachability
engine should be built: which backend answers the queries, how the graph is
partitioned, which local reachability strategy each slave uses, and whether
the equivalence-set and backward-processing optimisations are enabled.  Every
entry point of the reproduction — the Python API (:func:`repro.api.open_engine`),
the CLI, the service layer and the benchmarks — constructs engines from the
same config object, and :meth:`DSRConfig.to_dict` / :meth:`DSRConfig.from_dict`
round-trip it losslessly through JSON so a config can travel over the wire or
live in a file.

Validation happens at construction: a :class:`DSRConfig` that exists is a
config the engine builders accept (the one exception is ``backend``, whose
registry membership is checked at :func:`~repro.api.backends.open_engine`
time so user-defined backends can be registered after configs referencing
them are created).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

from repro.cluster.executors import EXECUTOR_NAMES
from repro.reachability.factory import available_strategies
from repro.reachability.kernels import KERNEL_NAMES, resolve_kernels

#: Partitioning strategies understood by ``repro.partition.make_partitioning``.
PARTITIONERS = ("metis", "min-cut", "mincut", "hash")

#: Maintenance scheduling modes for the epoch-versioned index.
EPOCH_FLUSH_MODES = ("inline", "background")


class ConfigError(ValueError):
    """Raised when a :class:`DSRConfig` field or payload is invalid."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class DSRConfig:
    """Frozen, validated configuration for building a set-reachability engine.

    Fields
    ------
    backend:
        Registry name of the execution strategy (``"dsr"``, ``"giraph"``,
        ``"giraphpp"``, ``"giraphpp-eq"``, ``"naive"``, ``"fan"``, or any
        name added via :func:`repro.api.register_backend`).
    num_partitions:
        Number of slaves / graph partitions.
    partitioner:
        ``"metis"`` (min-cut) or ``"hash"``.
    local_index:
        Per-slave reachability strategy (``"dfs"``, ``"msbfs"``, ``"ferrari"``,
        ``"grail"``, ``"closure"``).
    use_equivalence:
        Enable the equivalence-set optimisation (Section 3.3 of the paper).
    executor:
        How cluster phases execute: ``"serial"`` (default), ``"threads"``
        (persistent thread pool), ``"processes"`` (one long-lived worker
        process per partition, hydrated once per epoch with its immutable
        CSR shard — real parallelism) or ``"tcp"`` (worker hosts reachable
        over sockets — a managed local fleet by default, or the external
        hosts named by ``worker_hosts``).
    worker_hosts:
        ``executor="tcp"`` only: sequence of ``"host:port"`` strings naming
        running :class:`~repro.cluster.tcp.WorkerHost` servers; rank ``r``
        maps to ``worker_hosts[r % len(worker_hosts)]``.  ``None`` (default)
        lets the tcp executor spawn its own localhost fleet.
    epoch_flush:
        When batched updates are folded into the index: ``"inline"``
        (default — before the next query, which therefore waits) or
        ``"background"`` (a coalescing maintenance thread builds epoch
        ``N+1`` while queries keep reading epoch ``N``; queries never block
        on maintenance).
    kernels:
        Bitset-kernel backend for the hot traversal/harvest loops:
        ``"python"`` (pure-python reference), ``"numpy"`` (vectorized;
        requires numpy) or ``"auto"`` (default — numpy when importable).
        All backends produce byte-identical results; only speed differs.
        Asking for ``"numpy"`` without numpy installed raises here.
    parallel:
        Deprecated alias: ``parallel=True`` with the default executor maps
        to ``executor="threads"``.
    seed:
        Random seed used by the partitioner.
    enable_backward:
        Also build the mirror index over the reversed graph so queries can be
        processed from the target side (Section 3.3.2).
    local_index_options:
        Extra keyword arguments for the local reachability strategy.
    fleet:
        Open a :class:`~repro.fleet.ReplicaFleet` of heterogeneous replicas
        instead of a single engine (``backend="dsr"`` only).  Implied by
        setting ``replicas``.
    replicas:
        Fleet composition: an integer replica count (strategies drawn
        round-robin from the default heterogeneous trio), an explicit
        sequence of local-index strategy names (one replica each), or
        ``None`` with ``fleet=True`` for the default fleet-of-3.
    """

    backend: str = "dsr"
    num_partitions: int = 4
    partitioner: str = "metis"
    local_index: str = "dfs"
    use_equivalence: bool = True
    parallel: bool = False
    seed: int = 0
    enable_backward: bool = False
    local_index_options: Optional[Dict[str, Any]] = None
    executor: str = "serial"
    epoch_flush: str = "inline"
    kernels: str = "auto"
    fleet: bool = False
    replicas: Optional[Any] = None
    worker_hosts: Optional[Any] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.backend, str) and bool(self.backend),
            f"backend must be a non-empty string, got {self.backend!r}",
        )
        _require(
            isinstance(self.num_partitions, int)
            and not isinstance(self.num_partitions, bool)
            and self.num_partitions >= 1,
            f"num_partitions must be a positive integer, got {self.num_partitions!r}",
        )
        _require(
            self.partitioner in PARTITIONERS,
            f"unknown partitioner {self.partitioner!r}; "
            f"available: {', '.join(PARTITIONERS)}",
        )
        _require(
            self.local_index in available_strategies(),
            f"unknown local index {self.local_index!r}; "
            f"available: {', '.join(available_strategies())}",
        )
        _require(
            self.executor in EXECUTOR_NAMES,
            f"unknown executor {self.executor!r}; "
            f"available: {', '.join(EXECUTOR_NAMES)}",
        )
        _require(
            self.epoch_flush in EPOCH_FLUSH_MODES,
            f"unknown epoch_flush mode {self.epoch_flush!r}; "
            f"available: {', '.join(EPOCH_FLUSH_MODES)}",
        )
        _require(
            self.kernels in KERNEL_NAMES,
            f"unknown kernels backend {self.kernels!r}; "
            f"available: {', '.join(KERNEL_NAMES)}",
        )
        try:
            # Fail at configuration time, not first query: kernels="numpy"
            # on a host without numpy is a ConfigError, not a silent fallback.
            resolve_kernels(self.kernels)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        for flag in ("use_equivalence", "parallel", "enable_backward"):
            _require(
                isinstance(getattr(self, flag), bool),
                f"{flag} must be a bool, got {getattr(self, flag)!r}",
            )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        if self.local_index_options is not None:
            _require(
                isinstance(self.local_index_options, Mapping)
                and all(isinstance(key, str) for key in self.local_index_options),
                "local_index_options must be a mapping with string keys, "
                f"got {self.local_index_options!r}",
            )
            # Normalise to a plain dict so equality and round-tripping behave.
            object.__setattr__(
                self, "local_index_options", dict(self.local_index_options)
            )
        _require(
            isinstance(self.fleet, bool),
            f"fleet must be a bool, got {self.fleet!r}",
        )
        if self.replicas is not None:
            if isinstance(self.replicas, int) and not isinstance(self.replicas, bool):
                _require(
                    self.replicas >= 1,
                    f"replicas must be a positive integer, got {self.replicas!r}",
                )
            else:
                _require(
                    isinstance(self.replicas, (list, tuple))
                    and len(self.replicas) >= 1
                    and all(isinstance(name, str) for name in self.replicas),
                    "replicas must be a positive integer or a non-empty "
                    f"sequence of strategy names, got {self.replicas!r}",
                )
                for name in self.replicas:
                    _require(
                        name in available_strategies(),
                        f"unknown replica strategy {name!r}; "
                        f"available: {', '.join(available_strategies())}",
                    )
                # Normalise to a tuple so equality and hashing behave.
                object.__setattr__(self, "replicas", tuple(self.replicas))
            # Naming a fleet composition *is* asking for a fleet.
            object.__setattr__(self, "fleet", True)
        if self.fleet:
            _require(
                self.backend == "dsr",
                f"fleet mode requires backend='dsr', got {self.backend!r}",
            )
        if self.worker_hosts is not None:
            _require(
                self.executor == "tcp",
                "worker_hosts requires executor='tcp', "
                f"got executor={self.executor!r}",
            )
            _require(
                isinstance(self.worker_hosts, (list, tuple))
                and len(self.worker_hosts) >= 1
                and all(isinstance(spec, str) for spec in self.worker_hosts),
                "worker_hosts must be a non-empty sequence of 'host:port' "
                f"strings, got {self.worker_hosts!r}",
            )
            from repro.cluster.tcp import parse_host_port

            for spec in self.worker_hosts:
                try:
                    parse_host_port(spec)
                except ValueError as exc:
                    raise ConfigError(str(exc)) from exc
            # Normalise to a tuple so equality and hashing behave.
            object.__setattr__(self, "worker_hosts", tuple(self.worker_hosts))

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-safe dict that :meth:`from_dict` accepts unchanged."""
        payload: Dict[str, Any] = {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }
        if payload["local_index_options"] is not None:
            payload["local_index_options"] = dict(payload["local_index_options"])
        if isinstance(payload["replicas"], tuple):
            payload["replicas"] = list(payload["replicas"])
        if isinstance(payload["worker_hosts"], tuple):
            payload["worker_hosts"] = list(payload["worker_hosts"])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DSRConfig":
        """Build a config from a dict, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"config payload must be a mapping, got {type(payload).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown config keys: {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise ConfigError(f"malformed config payload: {exc}") from exc

    def replace(self, **overrides: Any) -> "DSRConfig":
        """Return a copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)


__all__ = ["ConfigError", "DSRConfig", "EPOCH_FLUSH_MODES", "PARTITIONERS"]
