"""The one query object every backend answers.

:class:`ReachQuery` is the first-class description of a set-reachability
query ``S ⇝ T``: the source and target vertex sets plus the execution options
that used to be spread positionally across ``DSREngine.query*``, the service
planner and the wire protocol.  Every backend opened through
:func:`repro.api.open_engine` takes a :class:`ReachQuery` and returns a
:class:`~repro.core.query.QueryResult`; the service layer's
``QueryRequest`` is a thin serialisation of this same class.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: Processing directions accepted by :class:`ReachQuery`.
DIRECTIONS = ("auto", "forward", "backward")

#: Evaluation representations accepted by :class:`ReachQuery`.  ``"bits"``
#: runs the packed-row pipeline, ``"sets"`` the original ``Set[int]`` one,
#: ``"auto"`` lets the engine/planner choose from the graph's degree
#: statistics.  Both produce identical answers.
QUERY_REPRESENTATIONS = ("auto", "bits", "sets")


class QueryError(ValueError):
    """Raised when a :class:`ReachQuery` is malformed."""


@dataclass(frozen=True)
class ReachQuery:
    """A set-reachability query ``S ⇝ T`` plus its execution options.

    Fields
    ------
    sources / targets:
        The query's source and target vertex ids (any iterable; normalised to
        tuples, order preserved).
    direction:
        ``"forward"`` starts at the sources, ``"backward"`` at the targets
        over the mirror index, ``"auto"`` lets the engine/planner choose
        (Section 3.3.2, "Forward vs. Backward Processing").
    use_cache:
        Allow the serving layer to answer from its exact-result cache.
    max_batch_pairs:
        Optional per-query override of the planner's batching budget — the
        maximum ``|S| × |T|`` evaluated in a single engine call.
    representation:
        The evaluation currency of the DSR pipeline: ``"bits"`` (packed
        rows), ``"sets"`` (plain Python sets) or ``"auto"`` (the default:
        the engine/planner decides from the graph's degree statistics).
        Backends without a packed pipeline ignore it; answers are identical
        either way.
    trace:
        Collect a structured :class:`~repro.obs.trace.QueryTrace` of timed
        spans (cache lookup, planning, the three DSR steps, per-partition
        shard-task wall-clock, payload bytes, stale-epoch retries) and attach
        it to ``QueryResult.trace``.  Off by default — tracing costs a little
        bookkeeping per step.  Backends without tracing ignore it.
    tenant:
        Optional workload label (e.g. ``"analytics"``).  Tenants never change
        the answer; they feed the fleet router's query fingerprint so a
        :class:`~repro.fleet.ReplicaFleet` can learn per-tenant query classes
        and keep routing stable for each of them.  Single-engine backends
        ignore it.
    deadline_ms:
        Optional end-to-end budget in milliseconds.  The clock starts at
        admission (service submit / direct engine call); once it runs out
        the query fails with a typed
        :class:`~repro.resilience.DeadlineExceededError` instead of
        queueing, retrying or waiting on a wedged worker indefinitely.
        ``None`` (the default) means no deadline.  The answer is never
        affected — a deadlined query either completes exactly or errors.
    """

    sources: Tuple[int, ...]
    targets: Tuple[int, ...]
    direction: str = "auto"
    use_cache: bool = True
    max_batch_pairs: Optional[int] = None
    representation: str = "auto"
    trace: bool = False
    tenant: Optional[str] = None
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(self, "trace", bool(self.trace))
        if self.direction not in DIRECTIONS:
            raise QueryError(
                f"unknown query direction {self.direction!r}; "
                f"available: {', '.join(DIRECTIONS)}"
            )
        if self.representation not in QUERY_REPRESENTATIONS:
            raise QueryError(
                f"unknown query representation {self.representation!r}; "
                f"available: {', '.join(QUERY_REPRESENTATIONS)}"
            )
        if self.max_batch_pairs is not None and (
            not isinstance(self.max_batch_pairs, int)
            or isinstance(self.max_batch_pairs, bool)
            or self.max_batch_pairs < 1
        ):
            raise QueryError(
                f"max_batch_pairs must be a positive integer or None, "
                f"got {self.max_batch_pairs!r}"
            )
        if self.tenant is not None and not isinstance(self.tenant, str):
            raise QueryError(
                f"tenant must be a string or None, got {self.tenant!r}"
            )
        if self.deadline_ms is not None and (
            not isinstance(self.deadline_ms, (int, float))
            or isinstance(self.deadline_ms, bool)
            or self.deadline_ms <= 0
        ):
            raise QueryError(
                f"deadline_ms must be a positive number or None, "
                f"got {self.deadline_ms!r}"
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the answer is trivially empty (no sources or targets)."""
        return not self.sources or not self.targets

    @property
    def num_pairs(self) -> int:
        """The ``|S| × |T|`` size of the query."""
        return len(self.sources) * len(self.targets)

    # ------------------------------------------------------------------ #
    # construction helpers / serialisation
    # ------------------------------------------------------------------ #
    @classmethod
    def single(cls, source: int, target: int, **options: Any) -> "ReachQuery":
        """The single-pair special case (Algorithm 1)."""
        return cls((source,), (target,), **options)

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-safe dict that :meth:`from_dict` accepts unchanged."""
        return {
            "sources": list(self.sources),
            "targets": list(self.targets),
            "direction": self.direction,
            "use_cache": self.use_cache,
            "max_batch_pairs": self.max_batch_pairs,
            "representation": self.representation,
            "trace": self.trace,
            "tenant": self.tenant,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReachQuery":
        """Build a query from a dict, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise QueryError(
                f"query payload must be a mapping, got {type(payload).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise QueryError(
                f"unknown query keys: {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        missing = [name for name in ("sources", "targets") if name not in payload]
        if missing:
            raise QueryError(f"query payload is missing: {', '.join(missing)}")
        return cls(**dict(payload))


def as_reach_query(
    query_or_sources: "ReachQuery | Iterable[int]",
    targets: Optional[Iterable[int]] = None,
    direction: Optional[str] = None,
) -> ReachQuery:
    """Coerce either a :class:`ReachQuery` or ``(sources, targets)`` to a query.

    This is the compatibility bridge used by call sites that still accept the
    old positional form next to the new query object.  A query object carries
    its own direction, so combining one with an explicit ``direction`` (or
    ``targets``) raises instead of silently dropping the argument.
    """
    if isinstance(query_or_sources, ReachQuery):
        if targets is not None:
            raise TypeError(
                "targets must not be given when a ReachQuery is passed"
            )
        if direction is not None:
            raise TypeError(
                "direction must not be given when a ReachQuery is passed; "
                "set it on the query itself"
            )
        return query_or_sources
    if targets is None:
        raise TypeError("targets are required when sources are a plain iterable")
    return ReachQuery(
        tuple(query_or_sources),
        tuple(targets),
        direction="auto" if direction is None else direction,
    )


__all__ = [
    "DIRECTIONS",
    "QUERY_REPRESENTATIONS",
    "QueryError",
    "ReachQuery",
    "as_reach_query",
]
