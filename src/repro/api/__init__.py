"""The unified public API of the DSR reproduction.

Contract: the one stable surface downstream code imports — a validated,
serialisable :class:`DSRConfig`, a string-keyed backend registry
(:func:`open_engine` / :func:`register_backend`), and one
:class:`ReachQuery` → :class:`QueryResult` exchange that every backend
answers identically (cross-backend parity is test-enforced; see
``docs/ARCHITECTURE.md``).

Three pieces compose every workflow:

* :class:`DSRConfig` — a frozen, validated, serialisable description of how
  an engine is built (backend, partitioning, local index, optimisations);
* :func:`open_engine` / :func:`register_backend` — a string-keyed registry of
  interchangeable execution strategies ("backends") that all satisfy the
  :class:`Backend` protocol;
* :class:`ReachQuery` — the one query object every backend answers, returning
  the one :class:`QueryResult`.

>>> from repro.api import DSRConfig, ReachQuery, open_engine
>>> from repro.graph import generators
>>> graph = generators.social_graph(500, avg_degree=6, seed=1)
>>> engine = open_engine(graph, DSRConfig(num_partitions=4, local_index="msbfs"))
>>> result = engine.run(ReachQuery(sources=(0, 1, 2), targets=(100, 200)))
>>> sorted(result.pairs)  # doctest: +SKIP

The same config and query objects drive the CLI (``repro-dsr query --backend``),
the service layer (whose wire ``QueryRequest`` is a thin serialisation of
:class:`ReachQuery`) and the benchmarks.
"""

from repro.api.backends import (
    Backend,
    BackendFactory,
    UnknownBackendError,
    available_backends,
    open_engine,
    register_backend,
    unregister_backend,
)
from repro.api.config import ConfigError, DSRConfig, EPOCH_FLUSH_MODES, PARTITIONERS
from repro.api.query import (
    DIRECTIONS,
    QUERY_REPRESENTATIONS,
    QueryError,
    ReachQuery,
    as_reach_query,
)
from repro.core.query import QueryResult

__all__ = [
    "Backend",
    "BackendFactory",
    "ConfigError",
    "DIRECTIONS",
    "DSRConfig",
    "EPOCH_FLUSH_MODES",
    "PARTITIONERS",
    "QUERY_REPRESENTATIONS",
    "QueryError",
    "QueryResult",
    "ReachQuery",
    "UnknownBackendError",
    "as_reach_query",
    "available_backends",
    "open_engine",
    "register_backend",
    "unregister_backend",
]
