"""Boundary-graph construction (Definition 4).

The boundary graph ``G^B_i`` for partition ``G_i`` merges the static cut ``C``
with the transitive boundary reachability ``I_j ⇝ O_j`` of every *other*
partition ``G_j``.  With the equivalence-set optimisation, the transitive part
is expressed through virtual class vertices; without it, every reachable
``(b, o)`` member pair becomes an explicit edge.

The boundary graph is not used directly at query time (the compound graph
subsumes it); it exists as its own artefact because the paper reports its size
with and without the equivalence optimisation (Table 4) and because building
it in isolation makes the index logic much easier to test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from repro.core.summary import PartitionSummary
from repro.graph.digraph import DiGraph


@dataclass
class BoundaryGraphStats:
    """Size statistics of a boundary graph (Table 4)."""

    num_vertices: int
    num_edges: int
    num_forward_entries: int
    num_backward_entries: int


def add_summary_to_graph(graph: DiGraph, summary: PartitionSummary) -> None:
    """Add one remote partition's summary (vertices + edges) to ``graph``."""
    for vertex in summary.boundary_vertices:
        graph.add_vertex(vertex)
    if summary.use_equivalence:
        member_to_forward = summary.member_to_forward_class()
        member_to_backward = summary.member_to_backward_class()
        for cls in summary.forward_classes:
            graph.add_vertex(cls.class_id)
        for cls in summary.backward_classes:
            graph.add_vertex(cls.class_id)
        # Connectors: member -> its forward class, backward class -> member.
        for member, class_id in member_to_forward.items():
            graph.add_edge(member, class_id)
        for member, class_id in member_to_backward.items():
            graph.add_edge(class_id, member)
    for source, target in summary.class_edges:
        graph.add_edge(source, target)
    for source, target in summary.member_edges:
        graph.add_edge(source, target)


def build_boundary_graph(
    partition_id: int,
    summaries: Mapping[int, PartitionSummary],
    cut_edges: Iterable[Tuple[int, int]],
) -> DiGraph:
    """Build ``G^B_i``: the cut plus every *other* partition's summary."""
    graph = DiGraph()
    for u, v in cut_edges:
        graph.add_edge(u, v)
    for other_id, summary in summaries.items():
        if other_id == partition_id:
            continue
        add_summary_to_graph(graph, summary)
    return graph


def boundary_graph_stats(
    partition_id: int,
    summaries: Mapping[int, PartitionSummary],
    cut_edges: Iterable[Tuple[int, int]],
) -> BoundaryGraphStats:
    """Size statistics of ``G^B_i`` plus forward/backward entry counts.

    The forward (backward) entry count is the number of distinct entry (exit)
    handles contributed by the other partitions — the quantity Table 4 reports
    as ``#forward; #backward``.
    """
    graph = build_boundary_graph(partition_id, summaries, cut_edges)
    forward_entries = 0
    backward_entries = 0
    for other_id, summary in summaries.items():
        if other_id == partition_id:
            continue
        forward_entries += len(summary.forward_handles())
        backward_entries += len(summary.backward_handles())
    return BoundaryGraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_forward_entries=forward_entries,
        num_backward_entries=backward_entries,
    )
