"""One-round distributed evaluation of DSR queries (Algorithms 1 and 2).

The executor follows the paper's three-step protocol:

* **Step 1 (local, all slaves in parallel).**  Each slave ``i`` evaluates, over
  its compound graph:

  - ``S_i ⇝ T_i`` — source/target pairs that are both local (Theorem 1);
  - ``S_i ⇝ (T ∩ boundary vertices of remote partitions)`` — remote *boundary*
    targets are real vertices of every compound graph, so these pairs are
    resolved without any communication as well;
  - ``S_i ⇝ F_i`` — reachability to the forward handles (in-virtual vertices
    plus overlap boundaries) of every remote partition that still has
    unresolved targets.

* **Step 2 (single communication round).**  For each remote partition ``j``
  the reached handles are buffered per source and shipped from slave ``i`` to
  slave ``j`` in one message (Theorem 2: one round suffices regardless of the
  graph's diameter).

* **Step 3 (local, all slaves in parallel).**  Slave ``j`` expands every
  received handle (class → representative member, overlap handle → itself) and
  evaluates reachability from the expanded members to its remaining local
  targets, emitting ``(s, t)`` pairs.

Single-pair queries (Algorithm 1) are the special case ``|S| = |T| = 1``.

Representations
---------------
Every step runs in one of two *currencies*, chosen per query
(``representation=``): ``"bits"`` — the default for anything beyond tiny
queries on near-edgeless graphs — evaluates local reachability as packed
rows over the epoch's stable vertex-rank numbering
(:mod:`repro.reachability.packed`), intersects targets and handles with
big-int ``AND`` masks, ships ``{packed handle bytes: [sources]}`` messages,
and keeps answers in product form until the master materialises the
``(s, t)`` tuples once; ``"sets"`` is the original ``Set[int]`` pipeline.
Both produce identical answers (``tests/core/test_packed_pipeline.py``).

Concurrency and epochs
----------------------
A query captures the index's published :class:`~repro.core.index.EpochState`
**once** at entry and evaluates all three steps against it, so a maintenance
flush that swaps in epoch ``N+1`` mid-query cannot tear the answer: every
query is consistent with exactly one epoch (reported as
:attr:`QueryResult.epoch`).  Each query also runs over its own private
:class:`~repro.cluster.network.Network` and timing record — concurrent
queries never interleave inboxes or phase timings — and folds its exact
counters into the cluster's cumulative statistics when done.

On a sharded executor (``executor="processes"``) the two local steps run as
registered shard tasks inside the worker processes that were hydrated with
this epoch's CSR shards; if a worker already retired the captured epoch (the
query raced two consecutive flushes), the query transparently re-captures the
newest epoch and retries, falling back to the in-process path as a last
resort.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import ClusterStats, SimulatedCluster
from repro.cluster.executors import StaleEpochError
from repro.cluster.network import Network
from repro.core.index import DSRIndex, EpochState
from repro.core.packed_steps import Group, local_step_groups, remote_step_groups
from repro.obs.runtime import global_registry
from repro.obs.trace import QueryTrace
from repro.reachability.packed import iter_bits, row_from_bytes, row_to_bytes
from repro.resilience.deadline import check_deadline

#: How many times a sharded query re-captures the epoch before falling back.
_MAX_STALE_RETRIES = 2

#: Representations a query can be evaluated in.
REPRESENTATIONS = ("bits", "sets")

#: Below this |S|x|T| a sparse graph is cheaper to answer with plain sets
#: (packed rows pay a fixed mask-construction cost per step).
_SMALL_QUERY_PAIRS = 4
_SPARSE_AVG_DEGREE = 1.0


def choose_representation(
    num_sources: int, num_targets: int, avg_degree: float
) -> str:
    """Pick the evaluation currency for a query from its size and the graph.

    Packed rows win whenever there is batching to amortise — more than a
    handful of candidate pairs, or a graph dense enough that reached sets
    grow large; tiny queries over very sparse graphs stay on the set path,
    whose early-terminating traversals beat building masks.  Shared by
    :class:`~repro.core.engine.DSREngine` (``representation="auto"``) and
    the service planner, so both layers make the same call.
    """
    if num_sources * num_targets <= _SMALL_QUERY_PAIRS and avg_degree < _SPARSE_AVG_DEGREE:
        return "sets"
    return "bits"


@dataclass
class QueryResult:
    """Result of a DSR query: the reachable pairs plus execution statistics."""

    pairs: Set[Tuple[int, int]]
    parallel_seconds: float = 0.0
    total_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    per_phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Real elapsed wall-clock of the distributed phases (dispatch included).
    real_seconds: float = 0.0
    #: The index epoch this answer is consistent with (-1 when not applicable).
    epoch: int = -1
    #: Structured span trace (only when the query asked for one; excluded
    #: from :meth:`as_dict` — the wire layer serialises it separately).
    trace: Optional[QueryTrace] = None

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def swapped(self) -> "QueryResult":
        """This result with every ``(s, t)`` pair flipped to ``(t, s)``.

        Used to translate the answer of a backward query (run over the
        reversed index as ``T ⇝ S``) back into the caller's orientation.
        Implemented with :func:`dataclasses.replace` so every statistics
        field — including ones added later, and subclass extensions — is
        carried over unchanged.
        """
        return dataclasses.replace(
            self, pairs={(target, source) for source, target in self.pairs}
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_pairs": self.num_pairs,
            "parallel_seconds": self.parallel_seconds,
            "total_seconds": self.total_seconds,
            "real_seconds": self.real_seconds,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "rounds": self.rounds,
            "epoch": self.epoch,
        }


class DistributedQueryExecutor:
    """Evaluates DSR queries over a built :class:`~repro.core.index.DSRIndex`."""

    def __init__(self, index: DSRIndex, cluster: Optional[SimulatedCluster] = None) -> None:
        if not index.is_built:
            raise RuntimeError("the DSR index must be built before querying")
        self.index = index
        self.cluster = cluster or index.cluster

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def query(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        representation: str = "bits",
        trace: Optional[QueryTrace] = None,
    ) -> QueryResult:
        """Evaluate ``S ⇝ T`` and return every reachable ``(s, t)`` pair.

        ``representation`` selects the evaluation currency of the three-step
        protocol: ``"bits"`` (the default) runs every local step over packed
        rows and ships packed handle bytes, ``"sets"`` keeps the original
        ``Set[int]`` materialisation.  Both produce identical pairs.

        ``trace`` — when the caller passes a :class:`~repro.obs.trace.
        QueryTrace`, the three protocol steps, per-partition shard-task
        wall-clock, payload bytes and stale-epoch retries are recorded as
        spans, and the trace is attached to :attr:`QueryResult.trace`.
        """
        if representation not in REPRESENTATIONS:
            raise ValueError(
                f"unknown representation {representation!r}; "
                f"available: {', '.join(REPRESENTATIONS)}"
            )
        source_set = set(sources)
        target_set = set(targets)
        self._validate(source_set | target_set)

        use_shards = self.index.uses_sharded_queries
        attempts = _MAX_STALE_RETRIES if use_shards else 0
        while True:
            # Capture one consistent epoch; everything below reads only it.
            state = self.index.current_state()
            net = Network()
            stats = ClusterStats()
            try:
                pairs = self._execute(
                    state,
                    source_set,
                    target_set,
                    net,
                    stats,
                    sharded=use_shards,
                    representation=representation,
                    trace=trace,
                )
                break
            except StaleEpochError:
                # The captured epoch was retired under this query (it raced
                # two consecutive flushes).  Re-capture and retry; after the
                # retry budget, run in-process against the parent's state,
                # which is always available.
                registry = global_registry()
                if registry.enabled:
                    registry.inc("dsr_query_stale_retries_total")
                if trace is not None:
                    trace.event(
                        "stale_epoch_retry",
                        epoch=state.epoch,
                        fallback_in_process=attempts <= 0,
                    )
                if attempts <= 0:
                    use_shards = False
                    continue
                attempts -= 1
                # A deadlined query stops retrying the moment its budget is
                # gone — the retry would recompute an answer nobody awaits.
                check_deadline("stale_retry")

        # Fold the exact per-query counters into the cluster totals.
        self.cluster.absorb(stats, net.stats)
        snapshot = net.stats
        registry = global_registry()
        if registry.enabled:
            registry.inc("dsr_queries_total", representation=representation)
            registry.inc("dsr_query_pairs_total", len(pairs))
            registry.inc("dsr_query_messages_total", snapshot.messages_sent)
            registry.inc("dsr_query_bytes_total", snapshot.bytes_sent)
            registry.observe(
                "dsr_query_seconds", stats.real_seconds, representation=representation
            )
        if trace is not None:
            trace.attrs.setdefault("representation", representation)
            trace.attrs["epoch"] = state.epoch
            trace.attrs["sharded"] = use_shards
        return QueryResult(
            pairs=pairs,
            parallel_seconds=stats.parallel_seconds,
            total_seconds=stats.total_seconds,
            real_seconds=stats.real_seconds,
            messages_sent=snapshot.messages_sent,
            bytes_sent=snapshot.bytes_sent,
            rounds=snapshot.rounds,
            per_phase_seconds={
                phase.name: round(phase.parallel_seconds, 6) for phase in stats.phases
            },
            epoch=state.epoch,
            trace=trace,
        )

    def reachable(self, source: int, target: int) -> bool:
        """Single-pair reachability (Algorithm 1)."""
        result = self.query([source], [target])
        return (source, target) in result.pairs

    # ------------------------------------------------------------------ #
    # the three-step protocol over one captured epoch
    # ------------------------------------------------------------------ #
    def _split(
        self, state: EpochState, source_set: Set[int], target_set: Set[int]
    ) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]], Dict[int, Set[int]], Dict[int, Set[int]]]:
        """Partition the query and classify targets as boundary/interior.

        Routing reads the captured epoch's ``assignment`` snapshot, never the
        live partitioning: a vertex deletion racing a lock-free query cannot
        crash the split — the query keeps answering from its epoch, where
        the vertex still exists.  Vertices unknown to the epoch (not yet
        indexed) contribute no pairs, matching the worker shards.
        """
        assignment = state.assignment
        sources_of: Dict[int, Set[int]] = {}
        targets_of: Dict[int, Set[int]] = {}
        for source in source_set:
            pid = assignment.get(source)
            if pid is not None:
                sources_of.setdefault(pid, set()).add(source)
        for target in target_set:
            pid = assignment.get(target)
            if pid is not None:
                targets_of.setdefault(pid, set()).add(target)
        for pid in set(sources_of) | set(targets_of):
            sources_of.setdefault(pid, set())
            targets_of.setdefault(pid, set())

        # With the equivalence optimisation, targets that are boundary vertices
        # of their home partition are real vertices of every compound graph and
        # are resolved directly at the source's slave; only interior targets
        # need the handle exchange.  Without the optimisation the messages
        # carry real boundary members, so every remote target is resolved at
        # its home slave (the paper's original Algorithm 2).  Boundary sets
        # are read from the captured epoch, not the live cut.
        boundary_targets_of: Dict[int, Set[int]] = {}
        interior_targets_of: Dict[int, Set[int]] = {}
        for pid, partition_targets in targets_of.items():
            if self.index.use_equivalence:
                boundary = state.boundary_sets.get(pid, set())
                boundary_targets_of[pid] = partition_targets & boundary
                interior_targets_of[pid] = partition_targets - boundary
            else:
                boundary_targets_of[pid] = set()
                interior_targets_of[pid] = set(partition_targets)
        return sources_of, targets_of, boundary_targets_of, interior_targets_of

    def _execute(
        self,
        state: EpochState,
        source_set: Set[int],
        target_set: Set[int],
        net: Network,
        stats: ClusterStats,
        sharded: bool,
        representation: str = "bits",
        trace: Optional[QueryTrace] = None,
    ) -> Set[Tuple[int, int]]:
        sources_of, targets_of, boundary_targets_of, interior_targets_of = self._split(
            state, source_set, target_set
        )
        pairs: Set[Tuple[int, int]] = set()
        bits = representation == "bits"
        phases_before = len(stats.phases)

        # ----- Step 1: local evaluation at every slave --------------------- #
        if sharded:
            payloads: Dict[int, Dict[str, object]] = {}
            for rank, local_sources in sources_of.items():
                if not local_sources:
                    continue
                remote_boundary: Set[int] = set()
                for pid, boundary_targets in boundary_targets_of.items():
                    if pid != rank:
                        remote_boundary |= boundary_targets
                step1_targets = targets_of.get(rank, set()) | remote_boundary
                payload: Dict[str, object] = {
                    "sources": sorted(local_sources),
                    "interior_pids": sorted(
                        pid
                        for pid, interior in interior_targets_of.items()
                        if pid != rank and interior
                    ),
                }
                if bits:
                    # Packed wire form: targets travel as one row over the
                    # worker's epoch vertex rank (identical on both sides by
                    # construction — the blob ships the same id order).
                    # ``num_ranks`` guards the one way the numbering can
                    # move without an epoch bump (an in-place isolated-
                    # vertex insert always changes the cardinality): a
                    # mismatched worker raises StaleEpochError and the
                    # query re-captures and retries.
                    vrank = state.vertex_rank(rank)
                    payload["targets_bits"] = row_to_bytes(vrank.pack(step1_targets))
                    payload["num_ranks"] = len(vrank)
                else:
                    payload["targets"] = sorted(step1_targets)
                payloads[rank] = payload
            step1_results = (
                self.cluster.run_shard_phase(
                    "local", "dsr.local_step", payloads, epoch=state.epoch, stats=stats
                )
                if payloads
                else {}
            )
        else:
            step_fn = self._local_step_bits if bits else self._local_step

            def step1(rank: int):
                return step_fn(
                    state,
                    rank,
                    sources_of.get(rank, set()),
                    targets_of.get(rank, set()),
                    boundary_targets_of,
                    interior_targets_of,
                )

            step1_results = self.cluster.run_phase("local", step1, stats=stats)

        if trace is not None:
            request_bytes = 0
            if sharded:
                for payload in payloads.values():
                    if bits:
                        request_bytes += len(payload["targets_bits"])  # type: ignore[arg-type]
                    else:
                        request_bytes += 8 * len(payload["targets"])  # type: ignore[arg-type]
            self._trace_step(
                trace, stats, phases_before, "step1",
                sharded=sharded, payload_bytes=request_bytes,
                partitions=len(step1_results),
            )
            phases_before = len(stats.phases)

        for rank, (step1_answer, outgoing) in step1_results.items():
            if bits:
                # Product-form groups materialise exactly once, here.
                for group_sources, group_targets in step1_answer:
                    pairs.update(product(group_sources, group_targets))
            else:
                pairs |= step1_answer
            for destination, payload in outgoing.items():
                net.send(rank, destination, payload, tag="handles")

        # ----- Step 2: the single round of message exchange ---------------- #
        net.complete_round()
        if trace is not None:
            trace.event(
                "step2_bridge",
                messages=net.stats.messages_sent,
                payload_bytes=net.stats.per_tag_bytes.get("handles", 0),
            )

        # ----- Step 3: resolve received handles at the target slaves ------- #
        if sharded:
            payloads3: Dict[int, Dict[str, object]] = {}
            for rank in range(self.index.num_partitions):
                interior = interior_targets_of.get(rank, set())
                messages = net.deliver(rank)
                if not interior or not messages:
                    continue
                if bits:
                    sources_by_handle = self._invert_messages_bits(
                        messages, state.summaries[rank].forward_handle_order()
                    )
                else:
                    sources_by_handle = self._invert_messages(messages)
                if not sources_by_handle:
                    continue
                payload3: Dict[str, object] = {
                    "sources_by_handle": {
                        handle: sorted(handle_sources)
                        for handle, handle_sources in sources_by_handle.items()
                    },
                }
                if bits:
                    vrank = state.vertex_rank(rank)
                    payload3["targets_bits"] = row_to_bytes(vrank.pack(interior))
                    payload3["num_ranks"] = len(vrank)
                else:
                    payload3["interior_targets"] = sorted(interior)
                payloads3[rank] = payload3
            step3_results = (
                self.cluster.run_shard_phase(
                    "remote", "dsr.remote_step", payloads3, epoch=state.epoch, stats=stats
                )
                if payloads3
                else {}
            )
        else:
            remote_fn = self._remote_step_bits if bits else self._remote_step

            def step3(rank: int):
                return remote_fn(
                    state, rank, interior_targets_of.get(rank, set()), net
                )

            step3_results = self.cluster.run_phase("remote", step3, stats=stats)
        if trace is not None:
            request_bytes = 0
            if sharded:
                for payload3 in payloads3.values():
                    if bits:
                        request_bytes += len(payload3["targets_bits"])  # type: ignore[arg-type]
                    else:
                        request_bytes += 8 * len(payload3["interior_targets"])  # type: ignore[arg-type]
            self._trace_step(
                trace, stats, phases_before, "step3",
                sharded=sharded, payload_bytes=request_bytes,
                partitions=len(step3_results),
            )
        for step3_answer in step3_results.values():
            if bits:
                for group_sources, group_targets in step3_answer:
                    pairs.update(product(group_sources, group_targets))
            else:
                pairs |= step3_answer
        return pairs

    @staticmethod
    def _trace_step(
        trace: QueryTrace,
        stats: ClusterStats,
        phases_before: int,
        name: str,
        **attrs: object,
    ) -> None:
        """Record one protocol step plus its per-partition shard spans.

        The cluster appended a :class:`~repro.cluster.cluster.PhaseTiming`
        per executed phase; its ``per_worker_seconds`` are the workers'
        *self-measured* compute seconds (IPC excluded), which become one
        ``<step>.shard`` span per partition.
        """
        new_phases = stats.phases[phases_before:]
        trace.add(
            name,
            sum(phase.real_seconds for phase in new_phases),
            **attrs,
        )
        for phase in new_phases:
            for rank, seconds in sorted(phase.per_worker_seconds.items()):
                trace.add(f"{name}.shard", seconds, partition=rank)

    # ------------------------------------------------------------------ #
    # per-slave steps (in-process path)
    #
    # Kept in deliberate lockstep with the worker-side shard tasks in
    # repro.core.shard_exec (local_step / remote_step) — change the pair
    # logic in both places; TestExecutorParity is the tripwire.
    # ------------------------------------------------------------------ #
    def _local_step(
        self,
        state: EpochState,
        rank: int,
        local_sources: Set[int],
        local_targets: Set[int],
        boundary_targets_of: Dict[int, Set[int]],
        interior_targets_of: Dict[int, Set[int]],
    ) -> Tuple[Set[Tuple[int, int]], Dict[int, Dict[int, List[int]]]]:
        """Step 1 at slave ``rank``.

        Returns ``(pairs, outgoing)`` where ``outgoing[j]`` is the message
        payload ``{source: [handles of partition j reached]}`` for slave ``j``.
        """
        pairs: Set[Tuple[int, int]] = set()
        outgoing: Dict[int, Dict[int, List[int]]] = {}
        if not local_sources:
            return pairs, outgoing
        compound = state.compound_graphs[rank]

        # Remote boundary targets are resolvable locally; remote interior
        # targets need handles shipped to their home slave.
        remote_boundary_targets: Set[int] = set()
        handle_targets: Dict[int, Set[int]] = {}
        for pid, boundary_targets in boundary_targets_of.items():
            if pid != rank:
                remote_boundary_targets |= boundary_targets
        for pid, interior_targets in interior_targets_of.items():
            if pid != rank and interior_targets:
                handle_targets[pid] = compound.forward_handles_of(pid)

        all_targets = set(local_targets) | remote_boundary_targets
        all_handles: Set[int] = set()
        for handles in handle_targets.values():
            all_handles |= handles

        reach = compound.local_set_reachability(local_sources, all_targets | all_handles)

        for source in local_sources:
            reached = reach.get(source, set())
            for target in reached & all_targets:
                pairs.add((source, target))
            if not all_handles:
                continue
            reached_handles = reached & all_handles
            if not reached_handles:
                continue
            for pid, handles in handle_targets.items():
                hit = sorted(reached_handles & handles)
                if hit:
                    outgoing.setdefault(pid, {})[source] = hit
        return pairs, outgoing

    def _local_step_bits(
        self,
        state: EpochState,
        rank: int,
        local_sources: Set[int],
        local_targets: Set[int],
        boundary_targets_of: Dict[int, Set[int]],
        interior_targets_of: Dict[int, Set[int]],
    ) -> Tuple[List[Group], Dict[int, Dict[bytes, List[int]]]]:
        """Step 1 at slave ``rank``, evaluated entirely over packed rows.

        Targets and handles are packed once into masks over the compound
        graph's vertex rank; the row-grouping/decoding/packing core is
        :func:`repro.core.packed_steps.local_step_groups`, shared verbatim
        with the worker-side shard task.  The result stays in product form
        — ``(sources, targets)`` groups — and only the master materialises
        ``(s, t)`` tuples, once; the handles bound for slave ``j`` travel
        as ``{packed handle bytes: [sources]}`` in ``j``'s canonical handle
        order.
        """
        if not local_sources:
            return [], {}
        compound = state.compound_graphs[rank]
        # One view capture per step: every rank, mask and row below shares
        # its numbering, so an in-place rebuild racing this query cannot
        # mix bit positions across the swap.
        view = compound.condensation_view()
        vrank = view.vertex_rank

        remote_boundary_targets: Set[int] = set()
        for pid, boundary_targets in boundary_targets_of.items():
            if pid != rank:
                remote_boundary_targets |= boundary_targets
        interior_pids = [
            pid
            for pid, interior_targets in interior_targets_of.items()
            if pid != rank and interior_targets
        ]

        target_mask = vrank.pack(local_targets | remote_boundary_targets)
        pid_masks = [
            (pid, compound.handle_mask_of(pid, vrank)) for pid in interior_pids
        ]
        all_handle_mask = 0
        for _, pid_mask in pid_masks:
            all_handle_mask |= pid_mask

        rows = compound.local_set_reachability_rows(
            local_sources, target_mask | all_handle_mask, view
        )
        return local_step_groups(
            vrank,
            rows,
            local_sources,
            target_mask,
            all_handle_mask,
            pid_masks,
            compound.handle_positions_of,
        )

    @staticmethod
    def _invert_messages(messages) -> Dict[int, Set[int]]:
        """Invert ``{source: [handles]}`` payloads into handle → sources.

        This is the inverted index ``I_i(Υ, L)`` of Algorithm 2, Step 2.
        """
        sources_by_handle: Dict[int, Set[int]] = {}
        for message in messages:
            for source, handles in message.payload.items():
                for handle in handles:
                    sources_by_handle.setdefault(handle, set()).add(source)
        return sources_by_handle

    @staticmethod
    def _invert_messages_bits(
        messages, handle_order: Tuple[int, ...]
    ) -> Dict[int, List[int]]:
        """Invert packed ``{handle bytes: [sources]}`` payloads to handle → sources.

        ``handle_order`` is the receiving partition's canonical handle
        numbering; bit ``p`` of a payload row addresses ``handle_order[p]``.
        The payloads arrive pre-grouped by row (sources of one SCC ship one
        byte-identical row), so each distinct row decodes exactly once; the
        source lists are duplicate-free because every source lives in
        exactly one partition and ships exactly one row per destination.
        """
        sources_by_handle: Dict[int, List[int]] = {}
        for message in messages:
            for handle_bytes, row_sources in message.payload.items():
                for position in iter_bits(row_from_bytes(handle_bytes)):
                    sources_by_handle.setdefault(
                        handle_order[position], []
                    ).extend(row_sources)
        return sources_by_handle

    def _remote_step_bits(
        self, state: EpochState, rank: int, interior_targets: Set[int], net: Network
    ) -> List[Group]:
        """Step 3 at slave ``rank`` over packed rows.

        Received handle bytes are decoded against this partition's canonical
        handle order and expanded to representative members; the
        row-ORing/regrouping core is :func:`repro.core.packed_steps.
        remote_step_groups`, shared verbatim with the worker-side shard
        task.  Returns product-form ``(sources, targets)`` groups; the
        master materialises the tuples.
        """
        messages = net.deliver(rank)
        if not interior_targets or not messages:
            return []
        compound = state.compound_graphs[rank]
        summary = state.summaries[rank]

        sources_by_handle = self._invert_messages_bits(
            messages, summary.forward_handle_order()
        )
        if not sources_by_handle:
            return []

        members_by_handle: Dict[int, Tuple[int, ...]] = {
            handle: summary.expand_handle(handle) for handle in sources_by_handle
        }
        all_members = {
            member for members in members_by_handle.values() for member in members
        }
        # One view capture per step (see _local_step_bits).
        view = compound.condensation_view()
        vrank = view.vertex_rank
        interior_mask = vrank.pack(interior_targets)
        rows = compound.local_set_reachability_rows(all_members, interior_mask, view)
        return remote_step_groups(vrank, rows, sources_by_handle, members_by_handle)

    def _remote_step(
        self, state: EpochState, rank: int, interior_targets: Set[int], net: Network
    ) -> Set[Tuple[int, int]]:
        """Step 3 at slave ``rank``: expand received handles, finish locally."""
        messages = net.deliver(rank)
        pairs: Set[Tuple[int, int]] = set()
        if not interior_targets or not messages:
            return pairs
        compound = state.compound_graphs[rank]
        summary = state.summaries[rank]

        sources_by_handle = self._invert_messages(messages)
        if not sources_by_handle:
            return pairs

        # Expand handles to concrete member vertices and evaluate once.
        members_by_handle: Dict[int, Tuple[int, ...]] = {
            handle: summary.expand_handle(handle) for handle in sources_by_handle
        }
        all_members = {member for members in members_by_handle.values() for member in members}
        reach = compound.local_set_reachability(all_members, interior_targets)

        for handle, handle_sources in sources_by_handle.items():
            reached: Set[int] = set()
            for member in members_by_handle[handle]:
                reached |= reach.get(member, set())
            for source in handle_sources:
                for target in reached:
                    pairs.add((source, target))
        return pairs

    # ------------------------------------------------------------------ #
    def _validate(self, vertices: Set[int]) -> None:
        graph = self.index.partitioning.graph
        missing = [vertex for vertex in vertices if not graph.has_vertex(vertex)]
        if missing:
            raise ValueError(
                f"query mentions {len(missing)} unknown vertices (e.g. {missing[:5]})"
            )
