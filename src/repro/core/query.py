"""One-round distributed evaluation of DSR queries (Algorithms 1 and 2).

The executor follows the paper's three-step protocol:

* **Step 1 (local, all slaves in parallel).**  Each slave ``i`` evaluates, over
  its compound graph:

  - ``S_i ⇝ T_i`` — source/target pairs that are both local (Theorem 1);
  - ``S_i ⇝ (T ∩ boundary vertices of remote partitions)`` — remote *boundary*
    targets are real vertices of every compound graph, so these pairs are
    resolved without any communication as well;
  - ``S_i ⇝ F_i`` — reachability to the forward handles (in-virtual vertices
    plus overlap boundaries) of every remote partition that still has
    unresolved targets.

* **Step 2 (single communication round).**  For each remote partition ``j``
  the reached handles are buffered per source and shipped from slave ``i`` to
  slave ``j`` in one message (Theorem 2: one round suffices regardless of the
  graph's diameter).

* **Step 3 (local, all slaves in parallel).**  Slave ``j`` expands every
  received handle (class → representative member, overlap handle → itself) and
  evaluates reachability from the expanded members to its remaining local
  targets, emitting ``(s, t)`` pairs.

Single-pair queries (Algorithm 1) are the special case ``|S| = |T| = 1``.

Concurrency and epochs
----------------------
A query captures the index's published :class:`~repro.core.index.EpochState`
**once** at entry and evaluates all three steps against it, so a maintenance
flush that swaps in epoch ``N+1`` mid-query cannot tear the answer: every
query is consistent with exactly one epoch (reported as
:attr:`QueryResult.epoch`).  Each query also runs over its own private
:class:`~repro.cluster.network.Network` and timing record — concurrent
queries never interleave inboxes or phase timings — and folds its exact
counters into the cluster's cumulative statistics when done.

On a sharded executor (``executor="processes"``) the two local steps run as
registered shard tasks inside the worker processes that were hydrated with
this epoch's CSR shards; if a worker already retired the captured epoch (the
query raced two consecutive flushes), the query transparently re-captures the
newest epoch and retries, falling back to the in-process path as a last
resort.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import ClusterStats, SimulatedCluster
from repro.cluster.executors import StaleEpochError
from repro.cluster.network import Network
from repro.core.index import DSRIndex, EpochState

#: How many times a sharded query re-captures the epoch before falling back.
_MAX_STALE_RETRIES = 2


@dataclass
class QueryResult:
    """Result of a DSR query: the reachable pairs plus execution statistics."""

    pairs: Set[Tuple[int, int]]
    parallel_seconds: float = 0.0
    total_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    per_phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Real elapsed wall-clock of the distributed phases (dispatch included).
    real_seconds: float = 0.0
    #: The index epoch this answer is consistent with (-1 when not applicable).
    epoch: int = -1

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def swapped(self) -> "QueryResult":
        """This result with every ``(s, t)`` pair flipped to ``(t, s)``.

        Used to translate the answer of a backward query (run over the
        reversed index as ``T ⇝ S``) back into the caller's orientation.
        Implemented with :func:`dataclasses.replace` so every statistics
        field — including ones added later, and subclass extensions — is
        carried over unchanged.
        """
        return dataclasses.replace(
            self, pairs={(target, source) for source, target in self.pairs}
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_pairs": self.num_pairs,
            "parallel_seconds": self.parallel_seconds,
            "total_seconds": self.total_seconds,
            "real_seconds": self.real_seconds,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "rounds": self.rounds,
            "epoch": self.epoch,
        }


class DistributedQueryExecutor:
    """Evaluates DSR queries over a built :class:`~repro.core.index.DSRIndex`."""

    def __init__(self, index: DSRIndex, cluster: Optional[SimulatedCluster] = None) -> None:
        if not index.is_built:
            raise RuntimeError("the DSR index must be built before querying")
        self.index = index
        self.cluster = cluster or index.cluster

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def query(self, sources: Iterable[int], targets: Iterable[int]) -> QueryResult:
        """Evaluate ``S ⇝ T`` and return every reachable ``(s, t)`` pair."""
        source_set = set(sources)
        target_set = set(targets)
        self._validate(source_set | target_set)

        use_shards = self.index.uses_sharded_queries
        attempts = _MAX_STALE_RETRIES if use_shards else 0
        while True:
            # Capture one consistent epoch; everything below reads only it.
            state = self.index.current_state()
            net = Network()
            stats = ClusterStats()
            try:
                pairs = self._execute(
                    state, source_set, target_set, net, stats, sharded=use_shards
                )
                break
            except StaleEpochError:
                # The captured epoch was retired under this query (it raced
                # two consecutive flushes).  Re-capture and retry; after the
                # retry budget, run in-process against the parent's state,
                # which is always available.
                if attempts <= 0:
                    use_shards = False
                    continue
                attempts -= 1

        # Fold the exact per-query counters into the cluster totals.
        self.cluster.absorb(stats, net.stats)
        snapshot = net.stats
        return QueryResult(
            pairs=pairs,
            parallel_seconds=stats.parallel_seconds,
            total_seconds=stats.total_seconds,
            real_seconds=stats.real_seconds,
            messages_sent=snapshot.messages_sent,
            bytes_sent=snapshot.bytes_sent,
            rounds=snapshot.rounds,
            per_phase_seconds={
                phase.name: round(phase.parallel_seconds, 6) for phase in stats.phases
            },
            epoch=state.epoch,
        )

    def reachable(self, source: int, target: int) -> bool:
        """Single-pair reachability (Algorithm 1)."""
        result = self.query([source], [target])
        return (source, target) in result.pairs

    # ------------------------------------------------------------------ #
    # the three-step protocol over one captured epoch
    # ------------------------------------------------------------------ #
    def _split(
        self, state: EpochState, source_set: Set[int], target_set: Set[int]
    ) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]], Dict[int, Set[int]], Dict[int, Set[int]]]:
        """Partition the query and classify targets as boundary/interior.

        Routing reads the captured epoch's ``assignment`` snapshot, never the
        live partitioning: a vertex deletion racing a lock-free query cannot
        crash the split — the query keeps answering from its epoch, where
        the vertex still exists.  Vertices unknown to the epoch (not yet
        indexed) contribute no pairs, matching the worker shards.
        """
        assignment = state.assignment
        sources_of: Dict[int, Set[int]] = {}
        targets_of: Dict[int, Set[int]] = {}
        for source in source_set:
            pid = assignment.get(source)
            if pid is not None:
                sources_of.setdefault(pid, set()).add(source)
        for target in target_set:
            pid = assignment.get(target)
            if pid is not None:
                targets_of.setdefault(pid, set()).add(target)
        for pid in set(sources_of) | set(targets_of):
            sources_of.setdefault(pid, set())
            targets_of.setdefault(pid, set())

        # With the equivalence optimisation, targets that are boundary vertices
        # of their home partition are real vertices of every compound graph and
        # are resolved directly at the source's slave; only interior targets
        # need the handle exchange.  Without the optimisation the messages
        # carry real boundary members, so every remote target is resolved at
        # its home slave (the paper's original Algorithm 2).  Boundary sets
        # are read from the captured epoch, not the live cut.
        boundary_targets_of: Dict[int, Set[int]] = {}
        interior_targets_of: Dict[int, Set[int]] = {}
        for pid, partition_targets in targets_of.items():
            if self.index.use_equivalence:
                boundary = state.boundary_sets.get(pid, set())
                boundary_targets_of[pid] = partition_targets & boundary
                interior_targets_of[pid] = partition_targets - boundary
            else:
                boundary_targets_of[pid] = set()
                interior_targets_of[pid] = set(partition_targets)
        return sources_of, targets_of, boundary_targets_of, interior_targets_of

    def _execute(
        self,
        state: EpochState,
        source_set: Set[int],
        target_set: Set[int],
        net: Network,
        stats: ClusterStats,
        sharded: bool,
    ) -> Set[Tuple[int, int]]:
        sources_of, targets_of, boundary_targets_of, interior_targets_of = self._split(
            state, source_set, target_set
        )
        pairs: Set[Tuple[int, int]] = set()

        # ----- Step 1: local evaluation at every slave --------------------- #
        if sharded:
            payloads: Dict[int, Dict[str, object]] = {}
            for rank, local_sources in sources_of.items():
                if not local_sources:
                    continue
                remote_boundary: Set[int] = set()
                for pid, boundary_targets in boundary_targets_of.items():
                    if pid != rank:
                        remote_boundary |= boundary_targets
                payloads[rank] = {
                    "sources": sorted(local_sources),
                    "targets": sorted(targets_of.get(rank, set()) | remote_boundary),
                    "interior_pids": sorted(
                        pid
                        for pid, interior in interior_targets_of.items()
                        if pid != rank and interior
                    ),
                }
            step1_results = (
                self.cluster.run_shard_phase(
                    "local", "dsr.local_step", payloads, epoch=state.epoch, stats=stats
                )
                if payloads
                else {}
            )
        else:
            def step1(rank: int):
                return self._local_step(
                    state,
                    rank,
                    sources_of.get(rank, set()),
                    targets_of.get(rank, set()),
                    boundary_targets_of,
                    interior_targets_of,
                )

            step1_results = self.cluster.run_phase("local", step1, stats=stats)

        for rank, (local_pairs, outgoing) in step1_results.items():
            pairs |= local_pairs
            for destination, payload in outgoing.items():
                net.send(rank, destination, payload, tag="handles")

        # ----- Step 2: the single round of message exchange ---------------- #
        net.complete_round()

        # ----- Step 3: resolve received handles at the target slaves ------- #
        if sharded:
            payloads3: Dict[int, Dict[str, object]] = {}
            for rank in range(self.index.num_partitions):
                interior = interior_targets_of.get(rank, set())
                messages = net.deliver(rank)
                if not interior or not messages:
                    continue
                sources_by_handle = self._invert_messages(messages)
                if sources_by_handle:
                    payloads3[rank] = {
                        "sources_by_handle": {
                            handle: sorted(handle_sources)
                            for handle, handle_sources in sources_by_handle.items()
                        },
                        "interior_targets": sorted(interior),
                    }
            step3_results = (
                self.cluster.run_shard_phase(
                    "remote", "dsr.remote_step", payloads3, epoch=state.epoch, stats=stats
                )
                if payloads3
                else {}
            )
            for remote_pairs in step3_results.values():
                pairs |= remote_pairs
        else:
            def step3(rank: int):
                return self._remote_step(
                    state, rank, interior_targets_of.get(rank, set()), net
                )

            step3_results = self.cluster.run_phase("remote", step3, stats=stats)
            for remote_pairs in step3_results.values():
                pairs |= remote_pairs
        return pairs

    # ------------------------------------------------------------------ #
    # per-slave steps (in-process path)
    #
    # Kept in deliberate lockstep with the worker-side shard tasks in
    # repro.core.shard_exec (local_step / remote_step) — change the pair
    # logic in both places; TestExecutorParity is the tripwire.
    # ------------------------------------------------------------------ #
    def _local_step(
        self,
        state: EpochState,
        rank: int,
        local_sources: Set[int],
        local_targets: Set[int],
        boundary_targets_of: Dict[int, Set[int]],
        interior_targets_of: Dict[int, Set[int]],
    ) -> Tuple[Set[Tuple[int, int]], Dict[int, Dict[int, List[int]]]]:
        """Step 1 at slave ``rank``.

        Returns ``(pairs, outgoing)`` where ``outgoing[j]`` is the message
        payload ``{source: [handles of partition j reached]}`` for slave ``j``.
        """
        pairs: Set[Tuple[int, int]] = set()
        outgoing: Dict[int, Dict[int, List[int]]] = {}
        if not local_sources:
            return pairs, outgoing
        compound = state.compound_graphs[rank]

        # Remote boundary targets are resolvable locally; remote interior
        # targets need handles shipped to their home slave.
        remote_boundary_targets: Set[int] = set()
        handle_targets: Dict[int, Set[int]] = {}
        for pid, boundary_targets in boundary_targets_of.items():
            if pid != rank:
                remote_boundary_targets |= boundary_targets
        for pid, interior_targets in interior_targets_of.items():
            if pid != rank and interior_targets:
                handle_targets[pid] = compound.forward_handles_of(pid)

        all_targets = set(local_targets) | remote_boundary_targets
        all_handles: Set[int] = set()
        for handles in handle_targets.values():
            all_handles |= handles

        reach = compound.local_set_reachability(local_sources, all_targets | all_handles)

        for source in local_sources:
            reached = reach.get(source, set())
            for target in reached & all_targets:
                pairs.add((source, target))
            if not all_handles:
                continue
            reached_handles = reached & all_handles
            if not reached_handles:
                continue
            for pid, handles in handle_targets.items():
                hit = sorted(reached_handles & handles)
                if hit:
                    outgoing.setdefault(pid, {})[source] = hit
        return pairs, outgoing

    @staticmethod
    def _invert_messages(messages) -> Dict[int, Set[int]]:
        """Invert ``{source: [handles]}`` payloads into handle → sources.

        This is the inverted index ``I_i(Υ, L)`` of Algorithm 2, Step 2.
        """
        sources_by_handle: Dict[int, Set[int]] = {}
        for message in messages:
            for source, handles in message.payload.items():
                for handle in handles:
                    sources_by_handle.setdefault(handle, set()).add(source)
        return sources_by_handle

    def _remote_step(
        self, state: EpochState, rank: int, interior_targets: Set[int], net: Network
    ) -> Set[Tuple[int, int]]:
        """Step 3 at slave ``rank``: expand received handles, finish locally."""
        messages = net.deliver(rank)
        pairs: Set[Tuple[int, int]] = set()
        if not interior_targets or not messages:
            return pairs
        compound = state.compound_graphs[rank]
        summary = state.summaries[rank]

        sources_by_handle = self._invert_messages(messages)
        if not sources_by_handle:
            return pairs

        # Expand handles to concrete member vertices and evaluate once.
        members_by_handle: Dict[int, Tuple[int, ...]] = {
            handle: summary.expand_handle(handle) for handle in sources_by_handle
        }
        all_members = {member for members in members_by_handle.values() for member in members}
        reach = compound.local_set_reachability(all_members, interior_targets)

        for handle, handle_sources in sources_by_handle.items():
            reached: Set[int] = set()
            for member in members_by_handle[handle]:
                reached |= reach.get(member, set())
            for source in handle_sources:
                for target in reached:
                    pairs.add((source, target))
        return pairs

    # ------------------------------------------------------------------ #
    def _validate(self, vertices: Set[int]) -> None:
        graph = self.index.partitioning.graph
        missing = [vertex for vertex in vertices if not graph.has_vertex(vertex)]
        if missing:
            raise ValueError(
                f"query mentions {len(missing)} unknown vertices (e.g. {missing[:5]})"
            )
