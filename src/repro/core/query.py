"""One-round distributed evaluation of DSR queries (Algorithms 1 and 2).

The executor follows the paper's three-step protocol:

* **Step 1 (local, all slaves in parallel).**  Each slave ``i`` evaluates, over
  its compound graph:

  - ``S_i ⇝ T_i`` — source/target pairs that are both local (Theorem 1);
  - ``S_i ⇝ (T ∩ boundary vertices of remote partitions)`` — remote *boundary*
    targets are real vertices of every compound graph, so these pairs are
    resolved without any communication as well;
  - ``S_i ⇝ F_i`` — reachability to the forward handles (in-virtual vertices
    plus overlap boundaries) of every remote partition that still has
    unresolved targets.

* **Step 2 (single communication round).**  For each remote partition ``j``
  the reached handles are buffered per source and shipped from slave ``i`` to
  slave ``j`` in one message (Theorem 2: one round suffices regardless of the
  graph's diameter).

* **Step 3 (local, all slaves in parallel).**  Slave ``j`` expands every
  received handle (class → representative member, overlap handle → itself) and
  evaluates reachability from the expanded members to its remaining local
  targets, emitting ``(s, t)`` pairs.

Single-pair queries (Algorithm 1) are the special case ``|S| = |T| = 1``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.core.index import DSRIndex


@dataclass
class QueryResult:
    """Result of a DSR query: the reachable pairs plus execution statistics."""

    pairs: Set[Tuple[int, int]]
    parallel_seconds: float = 0.0
    total_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    per_phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def swapped(self) -> "QueryResult":
        """This result with every ``(s, t)`` pair flipped to ``(t, s)``.

        Used to translate the answer of a backward query (run over the
        reversed index as ``T ⇝ S``) back into the caller's orientation.
        Implemented with :func:`dataclasses.replace` so every statistics
        field — including ones added later, and subclass extensions — is
        carried over unchanged.
        """
        return dataclasses.replace(
            self, pairs={(target, source) for source, target in self.pairs}
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_pairs": self.num_pairs,
            "parallel_seconds": self.parallel_seconds,
            "total_seconds": self.total_seconds,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "rounds": self.rounds,
        }


class DistributedQueryExecutor:
    """Evaluates DSR queries over a built :class:`~repro.core.index.DSRIndex`."""

    def __init__(self, index: DSRIndex, cluster: Optional[SimulatedCluster] = None) -> None:
        if not index.is_built:
            raise RuntimeError("the DSR index must be built before querying")
        self.index = index
        self.cluster = cluster or index.cluster

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def query(self, sources: Iterable[int], targets: Iterable[int]) -> QueryResult:
        """Evaluate ``S ⇝ T`` and return every reachable ``(s, t)`` pair."""
        source_set = set(sources)
        target_set = set(targets)
        self._validate(source_set | target_set)
        self.cluster.reset_stats()

        partitioning = self.index.partitioning
        per_partition = partitioning.split_query(source_set, target_set)
        sources_of = {pid: subquery[0] for pid, subquery in per_partition.items()}
        targets_of = {pid: subquery[1] for pid, subquery in per_partition.items()}

        # With the equivalence optimisation, targets that are boundary vertices
        # of their home partition are real vertices of every compound graph and
        # are resolved directly at the source's slave; only interior targets
        # need the handle exchange.  Without the optimisation the messages
        # carry real boundary members, so every remote target is resolved at
        # its home slave (the paper's original Algorithm 2).
        boundary_targets_of: Dict[int, Set[int]] = {}
        interior_targets_of: Dict[int, Set[int]] = {}
        for pid, partition_targets in targets_of.items():
            if self.index.use_equivalence:
                boundary = partitioning.in_boundaries(pid) | partitioning.out_boundaries(pid)
                boundary_targets_of[pid] = partition_targets & boundary
                interior_targets_of[pid] = partition_targets - boundary
            else:
                boundary_targets_of[pid] = set()
                interior_targets_of[pid] = set(partition_targets)

        pairs: Set[Tuple[int, int]] = set()

        # ----- Step 1: local evaluation at every slave --------------------- #
        def step1(rank: int):
            return self._local_step(
                rank,
                sources_of.get(rank, set()),
                targets_of.get(rank, set()),
                boundary_targets_of,
                interior_targets_of,
            )

        step1_results = self.cluster.run_phase("local", step1)
        for rank, (local_pairs, outgoing) in step1_results.items():
            pairs |= local_pairs
            for destination, payload in outgoing.items():
                self.cluster.send(rank, destination, payload, tag="handles")

        # ----- Step 2: the single round of message exchange ---------------- #
        self.cluster.complete_round()

        # ----- Step 3: resolve received handles at the target slaves ------- #
        def step3(rank: int):
            return self._remote_step(rank, interior_targets_of.get(rank, set()))

        step3_results = self.cluster.run_phase("remote", step3)
        for remote_pairs in step3_results.values():
            pairs |= remote_pairs

        snapshot = self.cluster.snapshot()
        return QueryResult(
            pairs=pairs,
            parallel_seconds=snapshot["parallel_seconds"],
            total_seconds=snapshot["total_seconds"],
            messages_sent=snapshot["messages_sent"],
            bytes_sent=snapshot["bytes_sent"],
            rounds=snapshot["rounds"],
            per_phase_seconds=snapshot["phases"],
        )

    def reachable(self, source: int, target: int) -> bool:
        """Single-pair reachability (Algorithm 1)."""
        result = self.query([source], [target])
        return (source, target) in result.pairs

    # ------------------------------------------------------------------ #
    # per-slave steps
    # ------------------------------------------------------------------ #
    def _local_step(
        self,
        rank: int,
        local_sources: Set[int],
        local_targets: Set[int],
        boundary_targets_of: Dict[int, Set[int]],
        interior_targets_of: Dict[int, Set[int]],
    ) -> Tuple[Set[Tuple[int, int]], Dict[int, Dict[int, List[int]]]]:
        """Step 1 at slave ``rank``.

        Returns ``(pairs, outgoing)`` where ``outgoing[j]`` is the message
        payload ``{source: [handles of partition j reached]}`` for slave ``j``.
        """
        pairs: Set[Tuple[int, int]] = set()
        outgoing: Dict[int, Dict[int, List[int]]] = {}
        if not local_sources:
            return pairs, outgoing
        compound = self.index.compound_graphs[rank]

        # Remote boundary targets are resolvable locally; remote interior
        # targets need handles shipped to their home slave.
        remote_boundary_targets: Set[int] = set()
        handle_targets: Dict[int, Set[int]] = {}
        for pid, boundary_targets in boundary_targets_of.items():
            if pid != rank:
                remote_boundary_targets |= boundary_targets
        for pid, interior_targets in interior_targets_of.items():
            if pid != rank and interior_targets:
                handle_targets[pid] = compound.forward_handles_of(pid)

        all_targets = set(local_targets) | remote_boundary_targets
        all_handles: Set[int] = set()
        for handles in handle_targets.values():
            all_handles |= handles

        reach = compound.local_set_reachability(local_sources, all_targets | all_handles)

        for source in local_sources:
            reached = reach.get(source, set())
            for target in reached & all_targets:
                pairs.add((source, target))
            if not all_handles:
                continue
            reached_handles = reached & all_handles
            if not reached_handles:
                continue
            for pid, handles in handle_targets.items():
                hit = sorted(reached_handles & handles)
                if hit:
                    outgoing.setdefault(pid, {})[source] = hit
        return pairs, outgoing

    def _remote_step(
        self, rank: int, interior_targets: Set[int]
    ) -> Set[Tuple[int, int]]:
        """Step 3 at slave ``rank``: expand received handles, finish locally."""
        messages = self.cluster.deliver(rank)
        pairs: Set[Tuple[int, int]] = set()
        if not interior_targets or not messages:
            return pairs
        compound = self.index.compound_graphs[rank]
        summary = self.index.summaries[rank]

        # Invert the received payloads into handle -> set of remote sources
        # (the inverted index I_i(Υ, L) of Algorithm 2, Step 2).
        sources_by_handle: Dict[int, Set[int]] = {}
        for message in messages:
            for source, handles in message.payload.items():
                for handle in handles:
                    sources_by_handle.setdefault(handle, set()).add(source)
        if not sources_by_handle:
            return pairs

        # Expand handles to concrete member vertices and evaluate once.
        members_by_handle: Dict[int, Tuple[int, ...]] = {
            handle: summary.expand_handle(handle) for handle in sources_by_handle
        }
        all_members = {member for members in members_by_handle.values() for member in members}
        reach = compound.local_set_reachability(all_members, interior_targets)

        for handle, sources in sources_by_handle.items():
            reached: Set[int] = set()
            for member in members_by_handle[handle]:
                reached |= reach.get(member, set())
            for source in sources:
                for target in reached:
                    pairs.add((source, target))
        return pairs

    # ------------------------------------------------------------------ #
    def _validate(self, vertices: Set[int]) -> None:
        graph = self.index.partitioning.graph
        missing = [vertex for vertex in vertices if not graph.has_vertex(vertex)]
        if missing:
            raise ValueError(
                f"query mentions {len(missing)} unknown vertices (e.g. {missing[:5]})"
            )
