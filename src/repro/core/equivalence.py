"""Forward- and backward-equivalence sets over partition boundaries.

Definition 5 of the paper: two in-boundaries ``b1, b2`` of partition ``G_i``
are *forward-equivalent* iff they reach exactly the same vertices of
``V_i − I_i``; two out-boundaries are *backward-equivalent* iff they are
reached by exactly the same vertices of ``V_i − O_i``.  Equivalent boundaries
are replaced by a single virtual vertex, which shrinks both the boundary graph
and the messages exchanged at query time.

Algorithm 3 computes the classes by (1) condensing the partition into its SCC
DAG — same-SCC boundaries are trivially equivalent — and (2) comparing
reachability signatures over the *direct successors* ``S(I_i) − I_i`` only,
which is sufficient because any path to a vertex outside ``I_i`` must pass
through such a successor.

Two refinements relative to the paper (both strictly conservative — they can
only split classes, never merge inequivalent vertices — and they make the
compressed index lossless *without* per-edge member labels):

* classes are formed only over ``I_i \\ O_i`` (resp. ``O_i \\ I_i``);
  *overlap* vertices ``I_i ∩ O_i`` are always kept at member level;
* the grouping signature additionally includes reachability to the overlap
  vertices, so that any two members of a class behave identically with
  respect to every vertex that can route a path out of the partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex
from repro.reachability.factory import make_reachability_index

FORWARD = "forward"
BACKWARD = "backward"


@dataclass(frozen=True)
class EquivalenceClass:
    """A set of mutually equivalent boundary vertices of one partition."""

    class_id: int
    partition_id: int
    kind: str  # FORWARD (in-virtual vertex) or BACKWARD (out-virtual vertex)
    members: FrozenSet[int]
    representative: int

    def __post_init__(self) -> None:
        if self.kind not in (FORWARD, BACKWARD):
            raise ValueError(f"invalid equivalence kind {self.kind!r}")
        if self.representative not in self.members:
            raise ValueError("representative must be one of the members")

    def __len__(self) -> int:
        return len(self.members)

    def message_size(self) -> int:
        return 4 * (len(self.members) + 3)


class ClassIdAllocator:
    """Allocates globally unique virtual-vertex ids above the real id range."""

    def __init__(self, first_id: int) -> None:
        self._next = first_id

    def allocate(self) -> int:
        value = self._next
        self._next += 1
        return value

    @property
    def next_id(self) -> int:
        return self._next


def _successor_targets(
    graph: DiGraph, boundary: Set[int], overlap: Set[int]
) -> Set[int]:
    """Targets used for the forward signature: ``S(I) − I`` plus overlap."""
    successors: Set[int] = set()
    for vertex in boundary:
        successors.update(graph.successors(vertex))
    return (successors - boundary) | overlap


def _predecessor_targets(
    graph: DiGraph, boundary: Set[int], overlap: Set[int]
) -> Set[int]:
    """Targets used for the backward signature: ``P(O) − O`` plus overlap."""
    predecessors: Set[int] = set()
    for vertex in boundary:
        predecessors.update(graph.predecessors(vertex))
    return (predecessors - boundary) | overlap


def _group_by_signature(
    candidates: Iterable[int],
    signatures: Dict[int, FrozenSet[int]],
) -> List[List[int]]:
    """Group candidates sharing an identical reachability signature."""
    groups: Dict[FrozenSet[int], List[int]] = {}
    for vertex in sorted(candidates):
        groups.setdefault(signatures[vertex], []).append(vertex)
    return [members for _, members in sorted(groups.items(), key=lambda kv: kv[1][0])]


def compute_forward_classes(
    local_graph: DiGraph,
    in_boundaries: Set[int],
    out_boundaries: Set[int],
    partition_id: int,
    allocator: ClassIdAllocator,
    local_index: ReachabilityIndex = None,
) -> List[EquivalenceClass]:
    """Compute the forward-equivalent classes of ``in_boundaries``.

    Classes cover only ``I_i \\ O_i``; overlap vertices stay at member level.
    """
    overlap = in_boundaries & out_boundaries
    candidates = in_boundaries - out_boundaries
    if not candidates:
        return []
    if local_index is None:
        local_index = make_reachability_index("msbfs", local_graph)
    targets = _successor_targets(local_graph, in_boundaries, overlap)
    rset = local_index.set_reachability(candidates, targets)
    signatures = {vertex: frozenset(rset[vertex]) for vertex in candidates}
    classes = []
    for members in _group_by_signature(candidates, signatures):
        classes.append(
            EquivalenceClass(
                class_id=allocator.allocate(),
                partition_id=partition_id,
                kind=FORWARD,
                members=frozenset(members),
                representative=min(members),
            )
        )
    return classes


def compute_backward_classes(
    local_graph: DiGraph,
    in_boundaries: Set[int],
    out_boundaries: Set[int],
    partition_id: int,
    allocator: ClassIdAllocator,
    reverse_index: ReachabilityIndex = None,
) -> List[EquivalenceClass]:
    """Compute the backward-equivalent classes of ``out_boundaries``.

    Backward equivalence over the original graph is forward equivalence over
    the reversed graph, so the signature is computed with a reverse search.
    """
    overlap = in_boundaries & out_boundaries
    candidates = out_boundaries - in_boundaries
    if not candidates:
        return []
    reversed_graph = local_graph.reverse()
    if reverse_index is None:
        reverse_index = make_reachability_index("msbfs", reversed_graph)
    targets = _predecessor_targets(local_graph, out_boundaries, overlap)
    rset = reverse_index.set_reachability(candidates, targets)
    signatures = {vertex: frozenset(rset[vertex]) for vertex in candidates}
    classes = []
    for members in _group_by_signature(candidates, signatures):
        classes.append(
            EquivalenceClass(
                class_id=allocator.allocate(),
                partition_id=partition_id,
                kind=BACKWARD,
                members=frozenset(members),
                representative=min(members),
            )
        )
    return classes


def compute_equivalence_sets(
    local_graph: DiGraph,
    in_boundaries: Set[int],
    out_boundaries: Set[int],
    partition_id: int,
    allocator: ClassIdAllocator,
    local_index_name: str = "msbfs",
) -> Tuple[List[EquivalenceClass], List[EquivalenceClass]]:
    """Convenience wrapper computing both directions at once."""
    forward_index = make_reachability_index(local_index_name, local_graph)
    forward = compute_forward_classes(
        local_graph,
        in_boundaries,
        out_boundaries,
        partition_id,
        allocator,
        local_index=forward_index,
    )
    backward = compute_backward_classes(
        local_graph,
        in_boundaries,
        out_boundaries,
        partition_id,
        allocator,
    )
    return forward, backward


def singleton_classes(
    members: Iterable[int],
    partition_id: int,
    kind: str,
    allocator: ClassIdAllocator,
) -> List[EquivalenceClass]:
    """One class per member — used when the equivalence optimisation is off."""
    classes = []
    for member in sorted(set(members)):
        classes.append(
            EquivalenceClass(
                class_id=allocator.allocate(),
                partition_id=partition_id,
                kind=kind,
                members=frozenset([member]),
                representative=member,
            )
        )
    return classes
