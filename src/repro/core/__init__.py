"""The paper's primary contribution: Distributed Set Reachability (DSR).

Contract: turns a partitioned graph into a distributed index (summaries →
one broadcast → compound graphs) and answers any ``S ⇝ T`` query in ONE
communication round, staying consistent under incremental updates.  Builds
on :mod:`repro.graph` / :mod:`repro.reachability` / :mod:`repro.partition` /
:mod:`repro.cluster`; per-partition evaluation runs the CSR-snapshot
strategies (see ``docs/ARCHITECTURE.md``).

Layout (Section 3 of the paper → modules):

* :mod:`repro.core.equivalence` — forward/backward equivalence sets over the
  partition boundaries (Definition 5, Algorithm 3).
* :mod:`repro.core.summary` — the per-partition reachability summary that a
  slave shares with every other slave (the ``I_j ⇝ O_j`` information that,
  merged with the cut, forms the boundary graph of Definition 4).
* :mod:`repro.core.boundary_graph` — explicit boundary-graph construction
  (Definition 4), used for Table 4 and for testing.
* :mod:`repro.core.compound_graph` — the compound graphs ``G^C_i``
  (Definition 6) plus forward/backward handle lists.
* :mod:`repro.core.index` — :class:`DSRIndex`, the distributed index build.
* :mod:`repro.core.query` — one-round distributed query evaluation
  (Algorithms 1 and 2).
* :mod:`repro.core.naive` / :mod:`repro.core.fan` — the DSR-Naïve and DSR-Fan
  baselines (Sections 3.1 and 3.2).
* :mod:`repro.core.updates` — incremental edge/vertex insertions and
  deletions (Section 3.3.3).
* :mod:`repro.core.engine` — :class:`DSREngine`, the public API.
"""

from repro.core.engine import DSREngine
from repro.core.fan import DSRFan
from repro.core.index import DSRIndex
from repro.core.naive import DSRNaive
from repro.core.query import QueryResult

__all__ = ["DSREngine", "DSRIndex", "DSRFan", "DSRNaive", "QueryResult"]
