"""The distributed DSR index (Section 3.3.1), epoch-versioned.

:class:`DSRIndex` orchestrates the index build over a simulated cluster:

1. every slave computes the summary of its own partition in parallel
   (SCCs, equivalence classes, transitive boundary reachability);
2. the summaries are broadcast — this is the only index-build communication,
   and its volume is what shrinks when the equivalence optimisation is on;
3. every slave assembles its compound graph ``G^C_i`` from its local subgraph,
   the remote summaries and the static cut, condenses it and builds the chosen
   local reachability strategy over the condensation.

Epoch versioning
----------------
The built structures — local graphs, summaries, compound graphs — are grouped
into one immutable-by-contract :class:`EpochState` and published through a
single attribute swap.  Queries capture :meth:`DSRIndex.current_state` once at
entry and evaluate everything against that state, so a maintenance flush that
is busy building epoch ``N+1`` (see :mod:`repro.core.updates`) never exposes a
half-merged view: readers see epoch ``N`` until the one-pointer swap, then
``N+1``.  When the cluster runs on a sharded executor (``processes``), the
worker processes are hydrated with the new epoch's CSR shards *before* the
swap, keyed by epoch, and keep the previous epoch alive for in-flight queries.

The index also exposes the size statistics reported in Tables 2 and 4.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.cluster.cluster import ClusterStats, SimulatedCluster
from repro.obs.runtime import global_registry
from repro.core.boundary_graph import BoundaryGraphStats, boundary_graph_stats
from repro.core.compound_graph import CompoundGraph, build_compound_graph
from repro.core.equivalence import ClassIdAllocator
from repro.core.summary import PartitionSummary, build_partition_summary
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


@dataclass
class IndexBuildReport:
    """Timing and size statistics of one index build."""

    build_seconds: float
    parallel_build_seconds: float
    summary_bytes: int
    per_partition_original_edges: Dict[int, int] = field(default_factory=dict)
    per_partition_dag_edges: Dict[int, int] = field(default_factory=dict)
    per_partition_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def max_original_edges(self) -> int:
        return max(self.per_partition_original_edges.values(), default=0)

    @property
    def max_dag_edges(self) -> int:
        return max(self.per_partition_dag_edges.values(), default=0)

    @property
    def total_bytes(self) -> int:
        return sum(self.per_partition_bytes.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "build_seconds": self.build_seconds,
            "parallel_build_seconds": self.parallel_build_seconds,
            "summary_bytes": self.summary_bytes,
            "max_original_edges": self.max_original_edges,
            "max_dag_edges": self.max_dag_edges,
            "total_bytes": self.total_bytes,
        }


@dataclass
class EpochState:
    """One consistent, published version of every per-partition structure.

    A state is immutable by contract once published: maintenance builds a
    *new* state and swaps it in, it never edits a published one (the single
    sanctioned exception is the provably answer-preserving in-place edits for
    non-structural updates, e.g. an edge insert inside an existing SCC).
    """

    epoch: int
    local_graphs: Dict[int, DiGraph]
    summaries: Dict[int, PartitionSummary]
    compound_graphs: Dict[int, CompoundGraph]
    #: Per-partition boundary vertices (``I_i ∪ O_i``) as of this epoch, so
    #: query-time boundary/interior classification reads the same version as
    #: the compound graphs instead of the live (possibly newer) cut.
    boundary_sets: Dict[int, Set[int]] = field(default_factory=dict)
    #: Vertex → partition assignment as of this epoch.  Queries split and
    #: route against this snapshot, so a racing vertex deletion on the live
    #: partitioning can never crash or tear a lock-free read (the one
    #: sanctioned in-place edit: an isolated-vertex insert registers here).
    assignment: Dict[int, int] = field(default_factory=dict)
    #: How long :meth:`DSRIndex.build_epoch_state` held the mutation lock
    #: (cut recompute + local-graph copies) building this state.
    build_snapshot_seconds: float = 0.0
    #: How long the unlocked heavy part (summaries, compound graphs,
    #: condensations) of the build took.
    build_heavy_seconds: float = 0.0

    def vertex_rank(self, partition_id: int):
        """The stable vertex-rank numbering of one partition's compound graph.

        Every packed row and mask of this epoch — in-process, on the wire,
        and inside hydrated worker processes — is addressed in this
        numbering; it is frozen with the compound graph's CSR snapshot, so
        it cannot drift until the next epoch swaps in a new compound graph
        (whose snapshot then defines the next numbering).
        """
        return self.compound_graphs[partition_id].vertex_rank


class DSRIndex:
    """Precomputed index structures for distributed set reachability."""

    def __init__(
        self,
        partitioning: GraphPartitioning,
        use_equivalence: bool = True,
        local_strategy: str = "dfs",
        summary_strategy: str = "msbfs",
        strategy_kwargs: Optional[dict] = None,
        cluster: Optional[SimulatedCluster] = None,
        shard_hydration: bool = True,
    ) -> None:
        self.partitioning = partitioning
        self.use_equivalence = use_equivalence
        self.local_strategy = local_strategy
        self.summary_strategy = summary_strategy
        self.strategy_kwargs = strategy_kwargs or {}
        self.cluster = cluster or SimulatedCluster(partitioning.num_partitions)
        #: Whether this index ships worker shards to a sharded executor.
        #: Exactly one index per cluster may hydrate (shards are keyed by
        #: (rank, epoch) on the workers): an engine's optional reverse index
        #: shares the forward cluster and must opt out, so its queries run on
        #: the always-available in-process path instead.
        self.shard_hydration = shard_hydration

        self.allocator: Optional[ClassIdAllocator] = None
        self.build_report: Optional[IndexBuildReport] = None
        self._state: Optional[EpochState] = None
        self._publish_lock = threading.Lock()
        #: Shared-memory segment ledger for zero-copy shard hydration
        #: (created lazily on the first sharded publish; None when the
        #: executor never hydrates or shm is unavailable/disabled).
        self._shm_ledger = None
        #: When the serving epoch was published: monotonic clock for ages,
        #: unix time for exposition.  ``None`` before the first publish.
        self._published_monotonic: Optional[float] = None
        self._published_unix: Optional[float] = None

    # ------------------------------------------------------------------ #
    # epoch state access
    # ------------------------------------------------------------------ #
    @property
    def num_partitions(self) -> int:
        return self.partitioning.num_partitions

    @property
    def is_built(self) -> bool:
        return self._state is not None

    @property
    def epoch(self) -> int:
        """The currently published epoch (-1 before the first build)."""
        state = self._state
        return state.epoch if state is not None else -1

    def current_state(self) -> EpochState:
        """The published epoch state (capture once per query)."""
        state = self._state
        if state is None:
            raise RuntimeError("index not built")
        return state

    # Legacy dict attributes now delegate to the published epoch state so
    # existing read paths (and the sanctioned in-place non-structural edits)
    # keep working unchanged.
    @property
    def local_graphs(self) -> Dict[int, DiGraph]:
        return self.current_state().local_graphs

    @property
    def summaries(self) -> Dict[int, PartitionSummary]:
        return self.current_state().summaries

    @property
    def compound_graphs(self) -> Dict[int, CompoundGraph]:
        return self.current_state().compound_graphs

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _first_virtual_id(self) -> int:
        graph = self.partitioning.graph
        highest = max(graph.vertices(), default=-1)
        return highest + 1

    def build(self) -> IndexBuildReport:
        """Run the three-phase distributed index build (publishes epoch 0)."""
        self.cluster.reset_stats()
        self.allocator = ClassIdAllocator(self._first_virtual_id())
        local_graphs = {
            pid: self.partitioning.local_subgraph(pid)
            for pid in range(self.num_partitions)
        }

        # Phase 1: every slave summarises its own partition.
        def summarise(rank: int) -> PartitionSummary:
            return build_partition_summary(
                partition_id=rank,
                local_graph=local_graphs[rank],
                in_boundaries=self.partitioning.in_boundaries(rank),
                out_boundaries=self.partitioning.out_boundaries(rank),
                allocator=self.allocator,
                use_equivalence=self.use_equivalence,
                local_index_name=self.summary_strategy,
            )

        summaries = self.cluster.run_phase("summarise", summarise)

        # Phase 2: broadcast summaries (all-to-all exchange).
        summary_bytes = self._broadcast(summaries, tag="summary")

        # Phase 3: every slave assembles and condenses its compound graph.
        cut_edges = self.partitioning.cut_edges()

        def assemble(rank: int) -> CompoundGraph:
            return build_compound_graph(
                partition_id=rank,
                local_graph=local_graphs[rank],
                summaries=summaries,
                cut_edges=cut_edges,
                local_strategy=self.local_strategy,
                strategy_kwargs=self.strategy_kwargs,
            )

        compound_graphs = self.cluster.run_phase("assemble", assemble)
        self.publish(
            EpochState(
                epoch=0,
                local_graphs=local_graphs,
                summaries=summaries,
                compound_graphs=compound_graphs,
                boundary_sets={
                    pid: self.partitioning.in_boundaries(pid)
                    | self.partitioning.out_boundaries(pid)
                    for pid in range(self.num_partitions)
                },
                assignment=dict(self.partitioning.assignment),
            )
        )

        self.build_report = IndexBuildReport(
            build_seconds=self.cluster.stats.total_seconds,
            parallel_build_seconds=self.cluster.stats.parallel_seconds,
            summary_bytes=summary_bytes,
            per_partition_original_edges={
                pid: cg.original_num_edges() for pid, cg in compound_graphs.items()
            },
            per_partition_dag_edges={
                pid: cg.dag_num_edges() for pid, cg in compound_graphs.items()
            },
            per_partition_bytes={
                pid: cg.estimated_bytes() for pid, cg in compound_graphs.items()
            },
        )
        return self.build_report

    def _broadcast(
        self, summaries: Dict[int, PartitionSummary], tag: str, only: Optional[Iterable[int]] = None
    ) -> int:
        """All-to-all summary exchange with byte accounting (one round)."""
        summary_bytes = 0
        source_ranks = sorted(summaries) if only is None else sorted(only)
        for source_rank in source_ranks:
            for dest_rank in range(self.num_partitions):
                if dest_rank == source_rank:
                    continue
                message = self.cluster.network.send(
                    source_rank, dest_rank, summaries[source_rank], tag=tag
                )
                summary_bytes += message.size_bytes
        self.cluster.complete_round()
        # Drain the inboxes (every slave now has every refreshed summary).
        for rank in range(self.num_partitions):
            self.cluster.deliver(rank)
        return summary_bytes

    # ------------------------------------------------------------------ #
    # epoch construction and publication
    # ------------------------------------------------------------------ #
    def build_epoch_state(
        self,
        dirty: Set[int],
        mutation_lock: Optional[threading.RLock] = None,
    ) -> EpochState:
        """Build the next epoch's state off the hot path (no publication).

        The *snapshot* part — re-deriving the cut, boundaries and a private
        copy of every partition's local subgraph from the live data graph —
        runs under ``mutation_lock`` (the maintainer's update lock) so it can
        never race a concurrent graph mutation; the *heavy* part (summaries,
        compound graphs, condensations) runs unlocked, which is what lets
        queries keep being answered from the current epoch while this builds.

        Known tradeoff: the snapshot copies *all* partitions' graphs, not
        just the dirty ones, so updates stall for an O(V+E) copy per flush.
        Sharing clean partitions with the published state is not an option —
        a sanctioned in-place edit (same-SCC edge insert) could mutate a
        shared graph while the unlocked heavy phase iterates it.  The copy
        is a small fraction of the heavy phase it feeds, and queries are
        never stalled either way.
        """
        current = self.current_state()
        dirty = set(dirty)
        lock = mutation_lock if mutation_lock is not None else threading.RLock()
        snapshot_start = time.perf_counter()
        with lock:
            # Snapshot phase: recompute the cut from the mutated graph, then
            # freeze everything the heavy phase will read.
            self.partitioning._cut_edges = [
                (u, v)
                for u, v in self.partitioning.graph.edges()
                if self.partitioning.assignment[u] != self.partitioning.assignment[v]
            ]
            cut_edges = self.partitioning.cut_edges()
            # Every partition's local graph is copied under the lock — clean
            # ones included.  Sharing a clean partition's DiGraph with the
            # published state would let a concurrent in-place edge edit
            # mutate it while the unlocked heavy phase below iterates it.
            local_graphs = {
                pid: (
                    self.partitioning.local_subgraph(pid)
                    if pid in dirty
                    else current.local_graphs[pid].copy()
                )
                for pid in range(self.num_partitions)
            }
            assignment = dict(self.partitioning.assignment)
            boundary_sets = dict(current.boundary_sets)
            boundaries: Dict[int, Tuple[Set[int], Set[int]]] = {}
            for pid in dirty:
                boundaries[pid] = (
                    self.partitioning.in_boundaries(pid),
                    self.partitioning.out_boundaries(pid),
                )
                boundary_sets[pid] = boundaries[pid][0] | boundaries[pid][1]

        snapshot_seconds = time.perf_counter() - snapshot_start
        heavy_start = time.perf_counter()

        # Heavy phase (no locks held): summarise dirty partitions...
        # Timings go to a private record folded into the cumulative totals
        # as O(1) aggregates (same as queries): a long-lived service under a
        # steady update stream must not grow the phase list per flush.
        flush_stats = ClusterStats()
        summaries = dict(current.summaries)

        def summarise(rank: int) -> PartitionSummary:
            return build_partition_summary(
                partition_id=rank,
                local_graph=local_graphs[rank],
                in_boundaries=boundaries[rank][0],
                out_boundaries=boundaries[rank][1],
                allocator=self.allocator,
                use_equivalence=self.use_equivalence,
                local_index_name=self.summary_strategy,
            )

        if dirty:
            refreshed = self.cluster.run_phase(
                "summarise-epoch", summarise, workers=sorted(dirty), stats=flush_stats
            )
            summaries.update(refreshed)
            self._broadcast(summaries, tag="summary-update", only=sorted(dirty))

        # ... then reassemble every compound graph against the new summaries.
        def assemble(rank: int) -> CompoundGraph:
            return build_compound_graph(
                partition_id=rank,
                local_graph=local_graphs[rank],
                summaries=summaries,
                cut_edges=cut_edges,
                local_strategy=self.local_strategy,
                strategy_kwargs=self.strategy_kwargs,
            )

        compound_graphs = self.cluster.run_phase(
            "assemble-epoch", assemble, stats=flush_stats
        )
        self.cluster.stats.absorb(flush_stats)
        heavy_seconds = time.perf_counter() - heavy_start
        registry = global_registry()
        if registry.enabled:
            registry.observe("dsr_flush_snapshot_seconds", snapshot_seconds)
            registry.observe("dsr_flush_heavy_seconds", heavy_seconds)
        return EpochState(
            epoch=current.epoch + 1,
            local_graphs=local_graphs,
            summaries=summaries,
            compound_graphs=compound_graphs,
            boundary_sets=boundary_sets,
            assignment=assignment,
            build_snapshot_seconds=snapshot_seconds,
            build_heavy_seconds=heavy_seconds,
        )

    def publish(self, state: EpochState) -> None:
        """Atomically swap ``state`` in as the current epoch.

        Sharded executors are hydrated with the new epoch's worker shards
        *before* the swap: a query that captured the previous epoch keeps
        its shards (workers retain two epochs), a query arriving after the
        swap finds the new epoch already worker-resident.
        """
        with self._publish_lock:
            self._hydrate_shards(state)
            self._state = state
            self._published_monotonic = time.monotonic()
            self._published_unix = time.time()
        registry = global_registry()
        if registry.enabled:
            registry.inc("dsr_epochs_published_total")
            registry.set_gauge("dsr_epoch", state.epoch)
            registry.set_gauge("dsr_epoch_published_timestamp_seconds", self._published_unix)

    def epoch_age_seconds(self) -> Optional[float]:
        """Age of the serving epoch (time since its publish), a.k.a. epoch
        lag — how stale the answers a reader gets right now can be.  ``None``
        before the first publish."""
        published = self._published_monotonic
        if published is None:
            return None
        return time.monotonic() - published

    @property
    def published_at_unix(self) -> Optional[float]:
        """Unix timestamp of the serving epoch's publish (``None`` pre-build)."""
        return self._published_unix

    @property
    def uses_sharded_queries(self) -> bool:
        """True when queries against this index run through worker shards."""
        return self.shard_hydration and self.cluster.wants_sharded_queries

    def _ensure_ledger(self):
        """The index's shm ledger, created on first use (None when disabled).

        Availability is re-checked per call (not latched) so ``REPRO_SHM=0``
        can force the pickled fallback for a fresh engine without a restart.
        Executors whose workers live outside this machine's address space
        (``supports_shm_hydration = False``, e.g. ``tcp``) always get
        ``None``: their blobs must be self-contained to cross the wire.
        """
        executor = getattr(self.cluster, "executor", None)
        if executor is not None and not getattr(
            executor, "supports_shm_hydration", True
        ):
            return None
        if self._shm_ledger is None:
            from repro.cluster.shm import ShmLedger, shm_available

            if shm_available():
                self._shm_ledger = ShmLedger()
        return self._shm_ledger

    def _record_publish_bytes(self, blobs) -> None:
        """Account the bytes each publish pushes through worker pipes.

        ``dsr_epoch_publish_bytes`` is the exact pickled size of every
        hydration blob of the publish — in shm mode the blobs carry segment
        names instead of CSR payloads, so this gauge is what the publish-cost
        benchmark compares against the pickled baseline.  Computed only when
        metrics are enabled (the extra pickle pass is pure accounting).
        """
        registry = global_registry()
        if not registry.enabled:
            return
        import pickle

        total = sum(len(pickle.dumps(blob, protocol=-1)) for blob in blobs.values())
        registry.set_gauge("dsr_epoch_publish_bytes", total)

    def _hydrate_shards(self, state: EpochState) -> None:
        if not self.uses_sharded_queries:
            return
        from repro.core.shard_exec import DSR_SHARD_LOADER, build_shard_blob

        ledger = self._ensure_ledger()
        blobs = {
            rank: build_shard_blob(
                rank,
                state.epoch,
                state.compound_graphs[rank],
                state.summaries[rank],
                ledger=ledger,
            )
            for rank in range(self.num_partitions)
        }
        self._record_publish_bytes(blobs)
        self.cluster.hydrate_shards(
            state.epoch,
            blobs,
            DSR_SHARD_LOADER,
            retire_below=max(0, state.epoch - 1),
        )
        if ledger is not None:
            # Mirror the workers' retain window: segments for epochs the
            # workers just dropped are unlinked here (an unlink never tears
            # an in-flight reader — mappings survive until detached).
            ledger.retire_below(max(0, state.epoch - 1))

    def close(self) -> None:
        """Release publish-side resources (shared-memory segments)."""
        ledger, self._shm_ledger = self._shm_ledger, None
        if ledger is not None:
            ledger.close()

    def rehydrate_partition(self, partition_id: int) -> None:
        """Refresh one rank's worker shard for the *current* epoch.

        Used after the sanctioned in-place non-structural edits (e.g. an
        isolated-vertex insert) so sharded workers learn the new vertex
        without waiting for a full epoch flush.
        """
        if not self.uses_sharded_queries or not self.is_built:
            return
        from repro.core.shard_exec import DSR_SHARD_LOADER, build_shard_blob

        state = self.current_state()
        blob = build_shard_blob(
            partition_id,
            state.epoch,
            state.compound_graphs[partition_id],
            state.summaries[partition_id],
            ledger=self._ensure_ledger(),
        )
        self.cluster.hydrate_shards(state.epoch, {partition_id: blob}, DSR_SHARD_LOADER)

    # ------------------------------------------------------------------ #
    # legacy eager-maintenance entry points (now epoch-publishing)
    # ------------------------------------------------------------------ #
    def rebuild_summary(self, partition_id: int) -> PartitionSummary:
        """Recompute one partition's summary from its current local subgraph."""
        if not self.is_built:
            raise RuntimeError("index must be built before incremental updates")
        return build_partition_summary(
            partition_id=partition_id,
            local_graph=self.local_graphs[partition_id],
            in_boundaries=self.partitioning.in_boundaries(partition_id),
            out_boundaries=self.partitioning.out_boundaries(partition_id),
            allocator=self.allocator,
            use_equivalence=self.use_equivalence,
            local_index_name=self.summary_strategy,
        )

    def broadcast_summaries(self, partition_ids) -> None:
        """Re-broadcast refreshed summaries to every other slave (one round)."""
        self._broadcast(self.summaries, tag="summary-update", only=partition_ids)

    def rebuild_partition(self, partition_id: int) -> None:
        """Recompute one partition's summary and refresh every compound graph.

        This is the eager form of incremental maintenance
        (:mod:`repro.core.updates` batches it): built as a full next-epoch
        state and atomically published, so concurrent readers never observe
        the intermediate steps.
        """
        self.publish(self.build_epoch_state({partition_id}))

    def refresh_compound_graphs(self) -> None:
        """Re-assemble every compound graph from the current summaries."""
        self.publish(self.build_epoch_state(set()))

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def boundary_stats(self, partition_id: int) -> BoundaryGraphStats:
        """Boundary-graph size statistics for one partition (Table 4)."""
        return boundary_graph_stats(
            partition_id, self.summaries, self.partitioning.cut_edges()
        )

    def total_boundary_entries(self) -> Tuple[int, int]:
        """Total forward/backward entry handles across all partitions.

        Reads one consistent epoch state (a single capture), so the numbers
        are never mixed across a concurrent epoch swap.
        """
        summaries = self.current_state().summaries
        forward = sum(len(s.forward_handles()) for s in summaries.values())
        backward = sum(len(s.backward_handles()) for s in summaries.values())
        return forward, backward

    def index_sizes(self) -> Dict[str, object]:
        """Table-2-style index size summary."""
        if self.build_report is None:
            raise RuntimeError("index not built")
        return {
            "max_original_edges": self.build_report.max_original_edges,
            "max_dag_edges": self.build_report.max_dag_edges,
            "total_bytes": self.build_report.total_bytes,
            "summary_bytes": self.build_report.summary_bytes,
        }
