"""The distributed DSR index (Section 3.3.1).

:class:`DSRIndex` orchestrates the index build over a simulated cluster:

1. every slave computes the summary of its own partition in parallel
   (SCCs, equivalence classes, transitive boundary reachability);
2. the summaries are broadcast — this is the only index-build communication,
   and its volume is what shrinks when the equivalence optimisation is on;
3. every slave assembles its compound graph ``G^C_i`` from its local subgraph,
   the remote summaries and the static cut, condenses it and builds the chosen
   local reachability strategy over the condensation.

The index also exposes the size statistics reported in Tables 2 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.core.boundary_graph import BoundaryGraphStats, boundary_graph_stats
from repro.core.compound_graph import CompoundGraph, build_compound_graph
from repro.core.equivalence import ClassIdAllocator
from repro.core.summary import PartitionSummary, build_partition_summary
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


@dataclass
class IndexBuildReport:
    """Timing and size statistics of one index build."""

    build_seconds: float
    parallel_build_seconds: float
    summary_bytes: int
    per_partition_original_edges: Dict[int, int] = field(default_factory=dict)
    per_partition_dag_edges: Dict[int, int] = field(default_factory=dict)
    per_partition_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def max_original_edges(self) -> int:
        return max(self.per_partition_original_edges.values(), default=0)

    @property
    def max_dag_edges(self) -> int:
        return max(self.per_partition_dag_edges.values(), default=0)

    @property
    def total_bytes(self) -> int:
        return sum(self.per_partition_bytes.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "build_seconds": self.build_seconds,
            "parallel_build_seconds": self.parallel_build_seconds,
            "summary_bytes": self.summary_bytes,
            "max_original_edges": self.max_original_edges,
            "max_dag_edges": self.max_dag_edges,
            "total_bytes": self.total_bytes,
        }


class DSRIndex:
    """Precomputed index structures for distributed set reachability."""

    def __init__(
        self,
        partitioning: GraphPartitioning,
        use_equivalence: bool = True,
        local_strategy: str = "dfs",
        summary_strategy: str = "msbfs",
        strategy_kwargs: Optional[dict] = None,
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        self.partitioning = partitioning
        self.use_equivalence = use_equivalence
        self.local_strategy = local_strategy
        self.summary_strategy = summary_strategy
        self.strategy_kwargs = strategy_kwargs or {}
        self.cluster = cluster or SimulatedCluster(partitioning.num_partitions)

        self.local_graphs: Dict[int, DiGraph] = {}
        self.summaries: Dict[int, PartitionSummary] = {}
        self.compound_graphs: Dict[int, CompoundGraph] = {}
        self.allocator: Optional[ClassIdAllocator] = None
        self.build_report: Optional[IndexBuildReport] = None
        self._built = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @property
    def num_partitions(self) -> int:
        return self.partitioning.num_partitions

    @property
    def is_built(self) -> bool:
        return self._built

    def _first_virtual_id(self) -> int:
        graph = self.partitioning.graph
        highest = max(graph.vertices(), default=-1)
        return highest + 1

    def build(self) -> IndexBuildReport:
        """Run the three-phase distributed index build."""
        self.cluster.reset_stats()
        self.allocator = ClassIdAllocator(self._first_virtual_id())
        self.local_graphs = {
            pid: self.partitioning.local_subgraph(pid)
            for pid in range(self.num_partitions)
        }

        # Phase 1: every slave summarises its own partition.
        def summarise(rank: int) -> PartitionSummary:
            return build_partition_summary(
                partition_id=rank,
                local_graph=self.local_graphs[rank],
                in_boundaries=self.partitioning.in_boundaries(rank),
                out_boundaries=self.partitioning.out_boundaries(rank),
                allocator=self.allocator,
                use_equivalence=self.use_equivalence,
                local_index_name=self.summary_strategy,
            )

        self.summaries = self.cluster.run_phase("summarise", summarise)

        # Phase 2: broadcast summaries (all-to-all exchange).
        summary_bytes = 0
        for source_rank, summary in self.summaries.items():
            for dest_rank in range(self.num_partitions):
                if dest_rank == source_rank:
                    continue
                message = self.cluster.network.send(
                    source_rank, dest_rank, summary, tag="summary"
                )
                summary_bytes += message.size_bytes
        self.cluster.complete_round()
        # Drain the inboxes (every slave now has every summary).
        for rank in range(self.num_partitions):
            self.cluster.deliver(rank)

        # Phase 3: every slave assembles and condenses its compound graph.
        cut_edges = self.partitioning.cut_edges()

        def assemble(rank: int) -> CompoundGraph:
            return build_compound_graph(
                partition_id=rank,
                local_graph=self.local_graphs[rank],
                summaries=self.summaries,
                cut_edges=cut_edges,
                local_strategy=self.local_strategy,
                strategy_kwargs=self.strategy_kwargs,
            )

        self.compound_graphs = self.cluster.run_phase("assemble", assemble)
        self._built = True

        self.build_report = IndexBuildReport(
            build_seconds=self.cluster.stats.total_seconds,
            parallel_build_seconds=self.cluster.stats.parallel_seconds,
            summary_bytes=summary_bytes,
            per_partition_original_edges={
                pid: cg.original_num_edges() for pid, cg in self.compound_graphs.items()
            },
            per_partition_dag_edges={
                pid: cg.dag_num_edges() for pid, cg in self.compound_graphs.items()
            },
            per_partition_bytes={
                pid: cg.estimated_bytes() for pid, cg in self.compound_graphs.items()
            },
        )
        return self.build_report

    def rebuild_summary(self, partition_id: int) -> PartitionSummary:
        """Recompute one partition's summary from its current local subgraph."""
        if not self._built:
            raise RuntimeError("index must be built before incremental updates")
        return build_partition_summary(
            partition_id=partition_id,
            local_graph=self.local_graphs[partition_id],
            in_boundaries=self.partitioning.in_boundaries(partition_id),
            out_boundaries=self.partitioning.out_boundaries(partition_id),
            allocator=self.allocator,
            use_equivalence=self.use_equivalence,
            local_index_name=self.summary_strategy,
        )

    def broadcast_summaries(self, partition_ids) -> None:
        """Re-broadcast refreshed summaries to every other slave (one round)."""
        for partition_id in partition_ids:
            for dest_rank in range(self.num_partitions):
                if dest_rank != partition_id:
                    self.cluster.network.send(
                        partition_id,
                        dest_rank,
                        self.summaries[partition_id],
                        tag="summary-update",
                    )
        self.cluster.complete_round()
        for rank in range(self.num_partitions):
            self.cluster.deliver(rank)

    def rebuild_partition(self, partition_id: int) -> None:
        """Recompute one partition's summary and refresh every compound graph.

        This is the eager form of incremental maintenance
        (:mod:`repro.core.updates` batches it): only the affected partition
        recomputes its boundary reachability; the other partitions merely
        re-merge the new summary into their compound graphs.
        """
        self.local_graphs[partition_id] = self.partitioning.local_subgraph(partition_id)
        self.summaries[partition_id] = self.rebuild_summary(partition_id)
        self.broadcast_summaries([partition_id])
        self.refresh_compound_graphs()

    def refresh_compound_graphs(self) -> None:
        """Re-assemble every compound graph from the current summaries."""
        cut_edges = self.partitioning.cut_edges()

        def assemble(rank: int) -> CompoundGraph:
            return build_compound_graph(
                partition_id=rank,
                local_graph=self.local_graphs[rank],
                summaries=self.summaries,
                cut_edges=cut_edges,
                local_strategy=self.local_strategy,
                strategy_kwargs=self.strategy_kwargs,
            )

        self.compound_graphs = self.cluster.run_phase("reassemble", assemble)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def boundary_stats(self, partition_id: int) -> BoundaryGraphStats:
        """Boundary-graph size statistics for one partition (Table 4)."""
        return boundary_graph_stats(
            partition_id, self.summaries, self.partitioning.cut_edges()
        )

    def total_boundary_entries(self) -> Tuple[int, int]:
        """Total forward/backward entry handles across all partitions."""
        forward = sum(len(s.forward_handles()) for s in self.summaries.values())
        backward = sum(len(s.backward_handles()) for s in self.summaries.values())
        return forward, backward

    def index_sizes(self) -> Dict[str, object]:
        """Table-2-style index size summary."""
        if self.build_report is None:
            raise RuntimeError("index not built")
        return {
            "max_original_edges": self.build_report.max_original_edges,
            "max_dag_edges": self.build_report.max_dag_edges,
            "total_bytes": self.build_report.total_bytes,
            "summary_bytes": self.build_report.summary_bytes,
        }
