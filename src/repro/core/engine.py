"""The public DSR engine.

:class:`DSREngine` is the top-level API a downstream user works with: give it
a directed graph and a :class:`~repro.api.config.DSRConfig` describing how to
partition it, which local reachability strategy to plug in and whether to
enable the equivalence-set optimisation, then build the index once and run as
many set-reachability queries and incremental updates as needed.

Example
-------
>>> from repro.api import DSRConfig, ReachQuery, open_engine
>>> from repro.graph import generators
>>> graph = generators.social_graph(500, avg_degree=6, seed=1)
>>> engine = open_engine(graph, DSRConfig(num_partitions=4, local_index="msbfs"))
>>> result = engine.run(ReachQuery(sources=(0, 1, 2), targets=(100, 200)))

The pre-``repro.api`` entry points — ``DSREngine(graph, num_partitions=...)``
and ``engine.query(sources, targets)`` — keep working as thin shims but emit
:class:`DeprecationWarning`; see the README's "Public API" section for the
migration table.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.api.config import DSRConfig
from repro.api.query import ReachQuery
from repro.cluster.cluster import SimulatedCluster
from repro.core.index import DSRIndex, IndexBuildReport
from repro.core.query import (
    DistributedQueryExecutor,
    QueryResult,
    choose_representation,
)
from repro.core.updates import IncrementalMaintainer, UpdateResult
from repro.graph.digraph import DiGraph
from repro.obs.trace import QueryTrace
from repro.partition.partition import GraphPartitioning, make_partitioning

_INIT_DEPRECATION = (
    "constructing DSREngine(graph, ...) directly is deprecated; use "
    "repro.api.open_engine(graph, DSRConfig(...)) or "
    "DSREngine.from_config(graph, config) instead"
)


class DSREngine:
    """End-to-end distributed set-reachability engine."""

    def __init__(
        self,
        graph: DiGraph,
        num_partitions: int = 4,
        partitioner: str = "metis",
        local_index: str = "dfs",
        use_equivalence: bool = True,
        parallel: bool = False,
        seed: int = 0,
        partitioning: Optional[GraphPartitioning] = None,
        local_index_options: Optional[dict] = None,
        enable_backward: bool = False,
    ) -> None:
        """Deprecated keyword-soup constructor (shim).

        Prefer :meth:`from_config` / :func:`repro.api.open_engine`, which
        take the same knobs as a validated, serialisable
        :class:`~repro.api.config.DSRConfig`.
        """
        warnings.warn(_INIT_DEPRECATION, DeprecationWarning, stacklevel=2)
        self._init(
            graph,
            num_partitions=num_partitions,
            partitioner=partitioner,
            local_index=local_index,
            use_equivalence=use_equivalence,
            parallel=parallel,
            seed=seed,
            partitioning=partitioning,
            local_index_options=local_index_options,
            enable_backward=enable_backward,
        )

    @classmethod
    def from_config(
        cls,
        graph: DiGraph,
        config: Optional[DSRConfig] = None,
        *,
        partitioning: Optional[GraphPartitioning] = None,
    ) -> "DSREngine":
        """Build an engine from a :class:`~repro.api.config.DSRConfig`.

        ``partitioning`` optionally supplies a pre-computed partitioning to
        share with other engines; the stored :attr:`config` is then
        reconciled to its partition count so it keeps describing the engine
        faithfully (the ``partitioner``/``seed`` fields describe how a
        partitioning *would* be derived and do not apply to a supplied one).
        The index is *not* built yet — call :meth:`build_index`, or use
        :func:`repro.api.open_engine` which returns a ready-to-query engine.
        """
        config = config if config is not None else DSRConfig()
        if partitioning is not None and (
            config.num_partitions != partitioning.num_partitions
        ):
            config = config.replace(num_partitions=partitioning.num_partitions)
        if config.backend != "dsr":
            raise ValueError(
                f"DSREngine.from_config expects backend='dsr', got "
                f"{config.backend!r}; use repro.api.open_engine for other backends"
            )
        engine = cls.__new__(cls)
        engine._init(
            graph,
            num_partitions=config.num_partitions,
            partitioner=config.partitioner,
            local_index=config.local_index,
            use_equivalence=config.use_equivalence,
            parallel=config.parallel,
            seed=config.seed,
            partitioning=partitioning,
            local_index_options=(
                dict(config.local_index_options)
                if config.local_index_options
                else None
            ),
            enable_backward=config.enable_backward,
            executor=config.executor,
            epoch_flush=config.epoch_flush,
            kernels=config.kernels,
            worker_hosts=config.worker_hosts,
        )
        engine.config = config
        return engine

    def _init(
        self,
        graph: DiGraph,
        num_partitions: int,
        partitioner: str,
        local_index: str,
        use_equivalence: bool,
        parallel: bool,
        seed: int,
        partitioning: Optional[GraphPartitioning],
        local_index_options: Optional[dict],
        enable_backward: bool,
        executor: str = "serial",
        epoch_flush: str = "inline",
        kernels: str = "auto",
        worker_hosts: Optional[Sequence[str]] = None,
    ) -> None:
        # Select the bitset-kernel backend.  The selection is process-global
        # (see repro.reachability.kernels): safe because every backend is
        # byte-identical — engines only ever disagree about speed — and
        # global is what lets forked shard workers inherit the choice.
        from repro.reachability.kernels import set_kernel_backend

        self.kernels = set_kernel_backend(kernels)
        self.graph = graph
        #: Registry name under which this engine satisfies the Backend protocol.
        self.name = "dsr"
        #: The config this engine was opened from (``None`` for engines built
        #: through the deprecated keyword constructor).
        self.config: Optional[DSRConfig] = None
        if partitioning is not None:
            self.partitioning = partitioning
        else:
            self.partitioning = make_partitioning(
                graph, num_partitions, strategy=partitioner, seed=seed
            )
        # The legacy parallel=True flag maps to the threads executor unless a
        # specific executor was chosen explicitly.
        effective_executor = (
            executor if executor != "serial" else ("threads" if parallel else "serial")
        )
        if worker_hosts is not None:
            if effective_executor != "tcp":
                raise ValueError(
                    "worker_hosts requires executor='tcp', "
                    f"got {effective_executor!r}"
                )
            from repro.cluster.tcp import TcpExecutor

            effective_executor = TcpExecutor(worker_hosts=worker_hosts)
        #: How batched updates fold into the index ("inline" | "background").
        self.epoch_flush = epoch_flush
        self.cluster = SimulatedCluster(
            self.partitioning.num_partitions,
            parallel=parallel,
            executor=effective_executor,
        )
        self.index = DSRIndex(
            self.partitioning,
            use_equivalence=use_equivalence,
            local_strategy=local_index,
            strategy_kwargs=local_index_options,
            cluster=self.cluster,
        )
        # Optional backward-processing support ("Forward vs. Backward
        # Processing", Section 3.3.2): a mirror index over the reversed graph
        # that lets a query start from the target side when |T| < |S|.
        self.enable_backward = enable_backward
        self._use_equivalence = use_equivalence
        self._local_index = local_index
        self._local_index_options = local_index_options
        self._reverse_index: Optional[DSRIndex] = None
        self._reverse_executor: Optional[DistributedQueryExecutor] = None
        self._reverse_maintainer: Optional[IncrementalMaintainer] = None

        self._executor: Optional[DistributedQueryExecutor] = None
        self._maintainer: Optional[IncrementalMaintainer] = None
        self.last_build_report: Optional[IndexBuildReport] = None
        self.last_query_result: Optional[QueryResult] = None

    # ------------------------------------------------------------------ #
    # index lifecycle
    # ------------------------------------------------------------------ #
    def build_index(self) -> IndexBuildReport:
        """Build the distributed index (summaries + compound graphs)."""
        self.last_build_report = self.index.build()
        self._executor = DistributedQueryExecutor(self.index, self.cluster)
        self._maintainer = IncrementalMaintainer(self.index)
        if self.enable_backward:
            self._build_reverse_index()
        return self.last_build_report

    def _build_reverse_index(self) -> None:
        """Build the mirror index over the reversed data graph."""
        reversed_graph = self.graph.reverse()
        reverse_partitioning = GraphPartitioning(
            reversed_graph, dict(self.partitioning.assignment),
            self.partitioning.num_partitions,
        )
        # The mirror index runs on the *same* simulated cluster as the forward
        # index: the paper's deployment keeps both directions on one set of
        # slaves, and sharing the cluster means backward queries report their
        # communication statistics through the same counters as forward ones.
        # Worker shards stay exclusive to the forward index (shards are keyed
        # by (rank, epoch) on the workers), so backward queries evaluate on
        # the in-process path.
        self._reverse_index = DSRIndex(
            reverse_partitioning,
            use_equivalence=self._use_equivalence,
            local_strategy=self._local_index,
            strategy_kwargs=self._local_index_options,
            cluster=self.cluster,
            shard_hydration=False,
        )
        self._reverse_index.build()
        self._reverse_executor = DistributedQueryExecutor(self._reverse_index, self.cluster)
        self._reverse_maintainer = IncrementalMaintainer(self._reverse_index)

    @property
    def is_built(self) -> bool:
        return self.index.is_built

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("call build_index() before querying or updating")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def run(self, query: ReachQuery) -> QueryResult:
        """Answer one :class:`~repro.api.query.ReachQuery`.

        This is the canonical query entry point shared by every backend.
        ``query.direction`` selects the processing direction (Section 3.3.2,
        "Forward vs. Backward Processing"):

        * ``"forward"`` — start from the sources (the default behaviour);
        * ``"backward"`` — start from the targets over the reversed index
          (requires ``enable_backward=True``);
        * ``"auto"`` — use the backward index when it is available and the
          query has fewer targets than sources.
        """
        self._require_built()
        if not isinstance(query, ReachQuery):
            raise TypeError(
                f"run() takes a ReachQuery, got {type(query).__name__}; "
                "the positional form lives on the deprecated query() shim"
            )
        # Trivially empty queries short-circuit before the distributed
        # pipeline (and before folding updates — the empty answer is correct
        # regardless of pending changes).
        trace = QueryTrace() if query.trace else None
        if query.is_empty:
            result = QueryResult(pairs=set(), trace=trace)
            if trace is not None:
                trace.attrs["empty"] = True
            self.last_query_result = result
            return result
        # Inline epoch mode: batched incremental updates are folded into the
        # index before answering, so query results always reflect every
        # applied update (and the query waits on that maintenance).
        # Background epoch mode: never flush on the query path — the query
        # reads the currently published epoch (consistent, possibly one flush
        # behind) while the maintenance thread builds the next one.
        if self.epoch_flush == "inline":
            flush_needed = (
                self._maintainer is not None
                and self._maintainer.has_pending_changes
            ) or (
                self._reverse_maintainer is not None
                and self._reverse_maintainer.has_pending_changes
            )
            flush_start = time.perf_counter() if (trace is not None and flush_needed) else None
            if self._maintainer is not None and self._maintainer.has_pending_changes:
                self._maintainer.flush()
            if (
                self._reverse_maintainer is not None
                and self._reverse_maintainer.has_pending_changes
            ):
                self._reverse_maintainer.flush()
            if flush_start is not None:
                trace.add("flush_inline", time.perf_counter() - flush_start)

        representation = self._resolve_representation(query)
        use_backward = query.direction == "backward" or (
            query.direction == "auto"
            and self._reverse_executor is not None
            and len(query.targets) < len(query.sources)
        )
        if trace is not None:
            trace.attrs["direction"] = "backward" if use_backward else "forward"
        if use_backward:
            if self._reverse_executor is None:
                raise RuntimeError(
                    "backward processing requires enable_backward=True at construction"
                )
            result = self._reverse_executor.query(
                query.targets, query.sources,
                representation=representation,
                trace=trace,
            ).swapped()
        else:
            result = self._executor.query(
                query.sources, query.targets,
                representation=representation,
                trace=trace,
            )
        self.last_query_result = result
        return result

    def _resolve_representation(self, query: ReachQuery) -> str:
        """Resolve ``query.representation`` (``"auto"`` → degree heuristic).

        Reads the data graph's cached CSR degree statistics when a snapshot
        is live (never *builds* one — resolution must stay lock-free), with
        the O(1) edge/vertex counters as the fallback; the same
        :func:`~repro.core.query.choose_representation` heuristic the
        service planner applies, so both entry points agree.
        """
        if query.representation != "auto":
            return query.representation
        snapshot = self.graph.csr_if_cached()
        if snapshot is not None:
            avg_degree = snapshot.degree_stats()["avg_degree"]
        elif self.graph.num_vertices:
            avg_degree = self.graph.num_edges / self.graph.num_vertices
        else:
            avg_degree = 0.0
        return choose_representation(
            len(query.sources), len(query.targets), avg_degree
        )

    def query(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        direction: str = "auto",
    ) -> Set[Tuple[int, int]]:
        """Deprecated shim: use ``run(ReachQuery(...)).pairs`` instead."""
        warnings.warn(
            "DSREngine.query(sources, targets) is deprecated; use "
            "run(ReachQuery(sources, targets)).pairs",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(
            ReachQuery(tuple(sources), tuple(targets), direction=direction)
        ).pairs

    def query_with_stats(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        direction: str = "auto",
    ) -> QueryResult:
        """Deprecated shim: use ``run(ReachQuery(...))`` instead."""
        warnings.warn(
            "DSREngine.query_with_stats(sources, targets) is deprecated; use "
            "run(ReachQuery(sources, targets))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(
            ReachQuery(tuple(sources), tuple(targets), direction=direction)
        )

    def reachable(self, source: int, target: int) -> bool:
        """Single-pair reachability (Algorithm 1)."""
        self._require_built()
        return (source, target) in self.run(ReachQuery.single(source, target)).pairs

    @property
    def last_query_stats(self) -> Dict[str, object]:
        if self.last_query_result is None:
            return {}
        return self.last_query_result.as_dict()

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def _schedule_maintenance(self) -> None:
        """In background mode, kick the coalescing epoch-flush worker(s)."""
        if self.epoch_flush != "background":
            return
        if self._maintainer is not None and self._maintainer.has_pending_changes:
            self._maintainer.request_background_flush()
        if (
            self._reverse_maintainer is not None
            and self._reverse_maintainer.has_pending_changes
        ):
            self._reverse_maintainer.request_background_flush()

    def insert_edge(self, u: int, v: int) -> UpdateResult:
        self._require_built()
        result = self._maintainer.insert_edge(u, v)
        if self._reverse_maintainer is not None:
            self._reverse_maintainer.insert_edge(v, u)
        self._schedule_maintenance()
        return result

    def delete_edge(self, u: int, v: int) -> UpdateResult:
        self._require_built()
        result = self._maintainer.delete_edge(u, v)
        if self._reverse_maintainer is not None:
            self._reverse_maintainer.delete_edge(v, u)
        self._schedule_maintenance()
        return result

    def insert_vertex(
        self, vertex: Optional[int] = None, partition_id: Optional[int] = None
    ) -> int:
        self._require_built()
        new_vertex = self._maintainer.insert_vertex(vertex, partition_id)
        if self._reverse_maintainer is not None:
            self._reverse_maintainer.insert_vertex(
                new_vertex, self.partitioning.partition_of(new_vertex)
            )
        # No-op unless the insert raced an in-flight flush and had to mark
        # its partition dirty (see IncrementalMaintainer.insert_vertex).
        self._schedule_maintenance()
        return new_vertex

    def delete_vertex(self, vertex: int) -> UpdateResult:
        self._require_built()
        if self._reverse_maintainer is not None:
            self._reverse_maintainer.delete_vertex(vertex)
        result = self._maintainer.delete_vertex(vertex)
        self._schedule_maintenance()
        return result

    def flush_updates(self):
        """Fold any batched incremental updates into the index now.

        In ``epoch_flush="inline"`` mode updates are otherwise folded in
        automatically before the next query; in ``"background"`` mode the
        maintenance thread does it off the hot path.  Calling this explicitly
        is useful when measuring maintenance cost (Figure 6) or before
        serialising index statistics.  Synchronous: the new epoch is
        published when it returns.
        """
        self._require_built()
        result = self._maintainer.flush()
        if self._reverse_maintainer is not None:
            # Unconditional (not gated on has_pending_changes): an in-flight
            # background reverse flush drains the dirty set before it
            # publishes, and flush() on a clean maintainer still serialises
            # on its flush lock — so when this returns, no reverse epoch
            # publication can be pending either.
            self._reverse_maintainer.flush()
        return result

    def rebuild_local_strategy(
        self, local_index: str, local_index_options: Optional[dict] = None
    ):
        """Swap the local reachability strategy by publishing a new epoch.

        The fleet tuner's online re-specialisation path: the index keeps
        serving the current epoch while every compound graph is reassembled
        with the new strategy off the hot path, then the new epoch swaps in
        atomically (the same machinery as an update flush — see
        :meth:`IncrementalMaintainer.rebuild_index`).  Any pending updates
        fold into the same epoch.  All registered strategies answer
        identically, so the swap is invisible to in-flight queries beyond
        the epoch bump.  Synchronous; run it on a worker thread to keep a
        serving loop unblocked.  Returns the forward index's
        :class:`~repro.core.updates.FlushResult`.
        """
        self._require_built()
        from repro.reachability.factory import available_strategies

        if local_index.lower() not in available_strategies():
            raise ValueError(
                f"unknown reachability strategy {local_index!r}; "
                f"available: {', '.join(available_strategies())}"
            )
        result = self._maintainer.rebuild_index(
            local_strategy=local_index, strategy_kwargs=local_index_options
        )
        self._local_index = local_index
        self._local_index_options = (
            dict(local_index_options) if local_index_options else None
        )
        if self._reverse_maintainer is not None:
            self._reverse_maintainer.rebuild_index(
                local_strategy=local_index, strategy_kwargs=local_index_options
            )
        if self.config is not None:
            self.config = self.config.replace(
                local_index=local_index,
                local_index_options=self._local_index_options,
            )
        return result

    @property
    def local_index(self) -> str:
        """Registry name of the local reachability strategy currently served."""
        return self._local_index

    def wait_for_maintenance(self, timeout: Optional[float] = None) -> bool:
        """Block until no background epoch flush is pending (False on timeout)."""
        done = True
        if self._maintainer is not None:
            done = self._maintainer.wait_for_flushes(timeout) and done
        if self._reverse_maintainer is not None:
            done = self._reverse_maintainer.wait_for_flushes(timeout) and done
        return done

    @property
    def has_pending_updates(self) -> bool:
        return self._maintainer is not None and self._maintainer.has_pending_changes

    @property
    def epoch(self) -> int:
        """The currently published index epoch (-1 before build)."""
        return self.index.epoch

    @property
    def maintainer(self) -> Optional[IncrementalMaintainer]:
        """The forward index's incremental maintainer (``None`` before build).

        Exposed so observers — e.g. the service layer's result cache — can
        subscribe to the update/flush stream via
        :meth:`IncrementalMaintainer.add_update_listener`.
        """
        return self._maintainer

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release executor resources (worker processes, thread pools).

        Safe to call more than once; the engine must not be queried after.
        The reverse index shares the forward cluster, so one close suffices.
        """
        if self._maintainer is not None:
            self._maintainer.wait_for_flushes(timeout=5.0)
        if self._reverse_maintainer is not None:
            self._reverse_maintainer.wait_for_flushes(timeout=5.0)
        self.cluster.close()
        # Unlink any shared-memory epoch segments after the workers are gone.
        self.index.close()
        if self._reverse_index is not None:
            self._reverse_index.close()

    def __enter__(self) -> "DSREngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def index_sizes(self) -> Dict[str, object]:
        """Table-2-style index size summary."""
        self._require_built()
        return self.index.index_sizes()

    def partition_summary(self) -> Dict[str, object]:
        """Partitioning statistics (cut size, balance, boundary counts)."""
        summary = self.partitioning.summary()
        if self.is_built:
            forward, backward = self.index.total_boundary_entries()
            summary["forward_entries"] = forward
            summary["backward_entries"] = backward
        return summary
