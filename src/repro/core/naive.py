"""DSR-Naïve: one independent distributed reachability query per pair.

Section 3.1 of the paper: the obvious way to answer ``S ⇝ T`` over a
partitioned graph is to run Fan et al.'s single-source/single-target
algorithm [9] once for every ``(s, t)`` pair.  Nothing is shared between
pairs, so the per-query dependency graph is rebuilt ``|S| · |T|`` times —
the cost Table 2 and Table 3 quantify.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cluster.cluster import SimulatedCluster
from repro.core.fan import DSRFan, FanQueryResult
from repro.core.query import QueryResult
from repro.partition.partition import GraphPartitioning


class DSRNaive:
    """Per-pair evaluation of DSR queries."""

    def __init__(
        self,
        partitioning: GraphPartitioning,
        local_strategy: str = "dfs",
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        self.partitioning = partitioning
        self.cluster = cluster or SimulatedCluster(partitioning.num_partitions)
        self._fan = DSRFan(partitioning, local_strategy=local_strategy, cluster=self.cluster)
        self.last_average_dependency_edges = 0.0

    def query(self, sources: Iterable[int], targets: Iterable[int]) -> QueryResult:
        source_list = sorted(set(sources))
        target_list = sorted(set(targets))
        pairs = set()
        parallel_seconds = 0.0
        total_seconds = 0.0
        messages = 0
        bytes_sent = 0
        rounds = 0
        dependency_edges = []

        for source in source_list:
            for target in target_list:
                single: FanQueryResult = self._fan.query([source], [target])
                if (source, target) in single.pairs:
                    pairs.add((source, target))
                parallel_seconds += single.parallel_seconds
                total_seconds += single.total_seconds
                messages += single.messages_sent
                bytes_sent += single.bytes_sent
                rounds += single.rounds
                dependency_edges.append(single.dependency_graph_edges)

        self.last_average_dependency_edges = (
            sum(dependency_edges) / len(dependency_edges) if dependency_edges else 0.0
        )
        return QueryResult(
            pairs=pairs,
            parallel_seconds=parallel_seconds,
            total_seconds=total_seconds,
            messages_sent=messages,
            bytes_sent=bytes_sent,
            rounds=rounds,
        )

    def reachable(self, source: int, target: int) -> bool:
        return (source, target) in self.query([source], [target]).pairs
