"""Per-partition reachability summaries.

A :class:`PartitionSummary` is everything slave ``j`` precomputes about its
own partition and ships to every other slave during the index build: its
boundary sets, its equivalence classes (Definition 5), and the transitive
reachability among its boundary vertices — compressed to class level wherever
the equivalence sets allow it and kept at member level otherwise.

Merging all remote summaries with the static cut yields the boundary graph of
Definition 4 (see :mod:`repro.core.boundary_graph`); merging them with the
local subgraph yields the compound graph of Definition 6 (see
:mod:`repro.core.compound_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.equivalence import (
    ClassIdAllocator,
    EquivalenceClass,
    compute_backward_classes,
    compute_forward_classes,
)
from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex
from repro.reachability.factory import make_reachability_index
from repro.reachability.packed import VertexRank


@dataclass
class PartitionSummary:
    """Reachability summary of one partition, shared with all other slaves."""

    partition_id: int
    in_boundaries: FrozenSet[int]
    out_boundaries: FrozenSet[int]
    use_equivalence: bool
    forward_classes: List[EquivalenceClass] = field(default_factory=list)
    backward_classes: List[EquivalenceClass] = field(default_factory=list)
    # Class-level transitive edges (forward-class id -> backward-class id).
    class_edges: Set[Tuple[int, int]] = field(default_factory=set)
    # Member-level transitive edges between real boundary vertices.
    member_edges: Set[Tuple[int, int]] = field(default_factory=set)
    # Lazily built derived caches.  A summary is immutable by contract once
    # its build returns, but the member→class maps are requested per remote
    # summary in every boundary/compound-graph assembly and the expansion
    # table per received handle in query step 3 — memoising them turns
    # thousands of per-call dict rebuilds into one.  Excluded from equality
    # (derived state) and rebuilt on the receiving side after pickling.
    _member_to_forward: Optional[Dict[int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _member_to_backward: Optional[Dict[int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _expand_table: Optional[Dict[int, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _forward_handle_order: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # derived accessors
    # ------------------------------------------------------------------ #
    @property
    def overlap(self) -> Set[int]:
        """Vertices that are both in- and out-boundaries (kept member level)."""
        return set(self.in_boundaries) & set(self.out_boundaries)

    @property
    def boundary_vertices(self) -> Set[int]:
        return set(self.in_boundaries) | set(self.out_boundaries)

    def member_to_forward_class(self) -> Dict[int, int]:
        """Map each classified in-boundary member to its class id (memoised).

        The returned dict is a shared cache — treat it as read-only.
        """
        if self._member_to_forward is None:
            mapping: Dict[int, int] = {}
            for cls in self.forward_classes:
                for member in cls.members:
                    mapping[member] = cls.class_id
            self._member_to_forward = mapping
        return self._member_to_forward

    def member_to_backward_class(self) -> Dict[int, int]:
        """Map each classified out-boundary member to its class id (memoised).

        The returned dict is a shared cache — treat it as read-only.
        """
        if self._member_to_backward is None:
            mapping: Dict[int, int] = {}
            for cls in self.backward_classes:
                for member in cls.members:
                    mapping[member] = cls.class_id
            self._member_to_backward = mapping
        return self._member_to_backward

    def forward_handles(self) -> Set[int]:
        """Entry handles other slaves use to address this partition.

        With the equivalence optimisation these are the forward-class ids plus
        the overlap vertices; without it they are the raw in-boundaries.
        """
        if not self.use_equivalence:
            return set(self.in_boundaries)
        handles = {cls.class_id for cls in self.forward_classes}
        handles |= self.overlap
        return handles

    def backward_handles(self) -> Set[int]:
        """Exit handles (used by the optional backward query processing)."""
        if not self.use_equivalence:
            return set(self.out_boundaries)
        handles = {cls.class_id for cls in self.backward_classes}
        handles |= self.overlap
        return handles

    def expand_handle(self, handle: int) -> Tuple[int, ...]:
        """Expand a received handle into concrete member vertices.

        A class handle expands to its representative (the equivalence
        guarantee makes any member interchangeable for non-boundary targets);
        a member handle expands to itself.  The class→representative table
        is memoised (see :meth:`expand_table`): step 3 expands one handle
        per received message entry, and a linear class scan per handle does
        not scale.
        """
        return self.expand_table().get(handle, (handle,))

    def expand_table(self) -> Dict[int, Tuple[int, ...]]:
        """The memoised class-id → expansion-members table (read-only).

        This is the single definition of the handle-expansion contract:
        :meth:`expand_handle` reads it in-process and
        :func:`repro.core.shard_exec.build_shard_blob` ships it to worker
        processes, so the two evaluation paths cannot drift.
        """
        if self._expand_table is None:
            self._expand_table = {
                cls.class_id: (cls.representative,)
                for cls in list(self.forward_classes) + list(self.backward_classes)
            }
        return self._expand_table

    def forward_handle_order(self) -> Tuple[int, ...]:
        """The canonical (sorted) forward-handle numbering of this partition.

        Packed cross-partition messages address this partition's handles by
        *position* in this tuple; every slave derives the same order from
        the broadcast summary, so the positions agree cluster-wide.
        """
        if self._forward_handle_order is None:
            self._forward_handle_order = tuple(sorted(self.forward_handles()))
        return self._forward_handle_order

    def classes_by_id(self) -> Dict[int, EquivalenceClass]:
        return {
            cls.class_id: cls
            for cls in list(self.forward_classes) + list(self.backward_classes)
        }

    # ------------------------------------------------------------------ #
    # size accounting (Table 2 / Table 4)
    # ------------------------------------------------------------------ #
    def num_transitive_edges(self) -> int:
        """Edges this summary contributes to every remote boundary graph."""
        connectors = 0
        if self.use_equivalence:
            connectors = sum(len(cls.members) for cls in self.forward_classes)
            connectors += sum(len(cls.members) for cls in self.backward_classes)
        return len(self.class_edges) + len(self.member_edges) + connectors

    def message_size(self) -> int:
        """Estimated size (bytes) of shipping this summary to another slave."""
        size = 4 * (len(self.in_boundaries) + len(self.out_boundaries) + 4)
        size += sum(cls.message_size() for cls in self.forward_classes)
        size += sum(cls.message_size() for cls in self.backward_classes)
        size += 8 * (len(self.class_edges) + len(self.member_edges))
        return size


def build_partition_summary(
    partition_id: int,
    local_graph: DiGraph,
    in_boundaries: Set[int],
    out_boundaries: Set[int],
    allocator: ClassIdAllocator,
    use_equivalence: bool = True,
    local_index: ReachabilityIndex = None,
    local_index_name: str = "msbfs",
) -> PartitionSummary:
    """Compute the summary of one partition (runs at its home slave).

    ``local_index`` may be provided to reuse an existing index over
    ``local_graph``; otherwise one is created with ``local_index_name`` (the
    default ``"msbfs"`` evaluates the whole ``I_j ⇝ (I_j ∪ O_j)`` batch with
    the CSR bitset kernel of :mod:`repro.reachability.bitset_msbfs` — one
    frontier pass for all in-boundaries instead of one BFS each).

    The transitive reachability is materialised as follows:

    * without equivalence: the full member-level ``I_j ⇝ O_j`` pairs
      (Definition 4 verbatim);
    * with equivalence: class-level edges between forward and backward
      classes, plus member-level edges for every pair that the equivalence
      guarantee does not cover — pairs involving overlap vertices and
      in-boundary → in-boundary pairs (the latter make remote boundary
      *targets* resolvable without an extra communication round).
    """
    in_boundaries = set(in_boundaries)
    out_boundaries = set(out_boundaries)
    summary = PartitionSummary(
        partition_id=partition_id,
        in_boundaries=frozenset(in_boundaries),
        out_boundaries=frozenset(out_boundaries),
        use_equivalence=use_equivalence,
    )
    if not in_boundaries and not out_boundaries:
        return summary
    if local_index is None:
        local_index = make_reachability_index(local_index_name, local_graph)

    # All boundary reachability is harvested through packed rows over the
    # local snapshot's vertex ranks: the kernel covers the B boundary
    # vertices in ceil(B/W) passes and only touches the *reached* target
    # bits, instead of probing every (source, boundary) combination.
    rank = VertexRank.from_csr(local_graph.csr())

    if not use_equivalence:
        out_mask = rank.pack(out_boundaries)
        rows = local_index.set_reachability_bits(in_boundaries, rank, out_mask)
        for source in in_boundaries:
            for target in rank.unpack(rows.get(source, 0)):
                if source != target:
                    summary.member_edges.add((source, target))
        return summary

    summary.forward_classes = compute_forward_classes(
        local_graph,
        in_boundaries,
        out_boundaries,
        partition_id,
        allocator,
        local_index=local_index,
    )
    summary.backward_classes = compute_backward_classes(
        local_graph,
        in_boundaries,
        out_boundaries,
        partition_id,
        allocator,
    )

    # Reachability from every in-boundary to every boundary vertex; this is
    # the same O(|I_j| * |O_j|)-style computation the paper performs, the
    # compression happens in what gets *stored*.
    boundary_mask = rank.pack(in_boundaries | out_boundaries)
    rows = local_index.set_reachability_bits(in_boundaries, rank, boundary_mask)

    pure_in = in_boundaries - out_boundaries
    pure_out = out_boundaries - in_boundaries
    member_to_forward = summary.member_to_forward_class()
    member_to_backward = summary.member_to_backward_class()

    for source in in_boundaries:
        for target in rank.unpack(rows.get(source, 0)):
            if source == target:
                continue
            if source in pure_in and target in pure_out:
                # Covered by a class-level edge.
                summary.class_edges.add(
                    (member_to_forward[source], member_to_backward[target])
                )
            else:
                summary.member_edges.add((source, target))
    return summary
