"""Per-partition reachability summaries.

A :class:`PartitionSummary` is everything slave ``j`` precomputes about its
own partition and ships to every other slave during the index build: its
boundary sets, its equivalence classes (Definition 5), and the transitive
reachability among its boundary vertices — compressed to class level wherever
the equivalence sets allow it and kept at member level otherwise.

Merging all remote summaries with the static cut yields the boundary graph of
Definition 4 (see :mod:`repro.core.boundary_graph`); merging them with the
local subgraph yields the compound graph of Definition 6 (see
:mod:`repro.core.compound_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.equivalence import (
    ClassIdAllocator,
    EquivalenceClass,
    compute_backward_classes,
    compute_forward_classes,
)
from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex
from repro.reachability.factory import make_reachability_index


@dataclass
class PartitionSummary:
    """Reachability summary of one partition, shared with all other slaves."""

    partition_id: int
    in_boundaries: FrozenSet[int]
    out_boundaries: FrozenSet[int]
    use_equivalence: bool
    forward_classes: List[EquivalenceClass] = field(default_factory=list)
    backward_classes: List[EquivalenceClass] = field(default_factory=list)
    # Class-level transitive edges (forward-class id -> backward-class id).
    class_edges: Set[Tuple[int, int]] = field(default_factory=set)
    # Member-level transitive edges between real boundary vertices.
    member_edges: Set[Tuple[int, int]] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # derived accessors
    # ------------------------------------------------------------------ #
    @property
    def overlap(self) -> Set[int]:
        """Vertices that are both in- and out-boundaries (kept member level)."""
        return set(self.in_boundaries) & set(self.out_boundaries)

    @property
    def boundary_vertices(self) -> Set[int]:
        return set(self.in_boundaries) | set(self.out_boundaries)

    def member_to_forward_class(self) -> Dict[int, int]:
        """Map each classified in-boundary member to its class id."""
        mapping: Dict[int, int] = {}
        for cls in self.forward_classes:
            for member in cls.members:
                mapping[member] = cls.class_id
        return mapping

    def member_to_backward_class(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for cls in self.backward_classes:
            for member in cls.members:
                mapping[member] = cls.class_id
        return mapping

    def forward_handles(self) -> Set[int]:
        """Entry handles other slaves use to address this partition.

        With the equivalence optimisation these are the forward-class ids plus
        the overlap vertices; without it they are the raw in-boundaries.
        """
        if not self.use_equivalence:
            return set(self.in_boundaries)
        handles = {cls.class_id for cls in self.forward_classes}
        handles |= self.overlap
        return handles

    def backward_handles(self) -> Set[int]:
        """Exit handles (used by the optional backward query processing)."""
        if not self.use_equivalence:
            return set(self.out_boundaries)
        handles = {cls.class_id for cls in self.backward_classes}
        handles |= self.overlap
        return handles

    def expand_handle(self, handle: int) -> Tuple[int, ...]:
        """Expand a received handle into concrete member vertices.

        A class handle expands to its representative (the equivalence
        guarantee makes any member interchangeable for non-boundary targets);
        a member handle expands to itself.
        """
        for cls in self.forward_classes:
            if cls.class_id == handle:
                return (cls.representative,)
        for cls in self.backward_classes:
            if cls.class_id == handle:
                return (cls.representative,)
        return (handle,)

    def classes_by_id(self) -> Dict[int, EquivalenceClass]:
        return {
            cls.class_id: cls
            for cls in list(self.forward_classes) + list(self.backward_classes)
        }

    # ------------------------------------------------------------------ #
    # size accounting (Table 2 / Table 4)
    # ------------------------------------------------------------------ #
    def num_transitive_edges(self) -> int:
        """Edges this summary contributes to every remote boundary graph."""
        connectors = 0
        if self.use_equivalence:
            connectors = sum(len(cls.members) for cls in self.forward_classes)
            connectors += sum(len(cls.members) for cls in self.backward_classes)
        return len(self.class_edges) + len(self.member_edges) + connectors

    def message_size(self) -> int:
        """Estimated size (bytes) of shipping this summary to another slave."""
        size = 4 * (len(self.in_boundaries) + len(self.out_boundaries) + 4)
        size += sum(cls.message_size() for cls in self.forward_classes)
        size += sum(cls.message_size() for cls in self.backward_classes)
        size += 8 * (len(self.class_edges) + len(self.member_edges))
        return size


def build_partition_summary(
    partition_id: int,
    local_graph: DiGraph,
    in_boundaries: Set[int],
    out_boundaries: Set[int],
    allocator: ClassIdAllocator,
    use_equivalence: bool = True,
    local_index: ReachabilityIndex = None,
    local_index_name: str = "msbfs",
) -> PartitionSummary:
    """Compute the summary of one partition (runs at its home slave).

    ``local_index`` may be provided to reuse an existing index over
    ``local_graph``; otherwise one is created with ``local_index_name`` (the
    default ``"msbfs"`` evaluates the whole ``I_j ⇝ (I_j ∪ O_j)`` batch with
    the CSR bitset kernel of :mod:`repro.reachability.bitset_msbfs` — one
    frontier pass for all in-boundaries instead of one BFS each).

    The transitive reachability is materialised as follows:

    * without equivalence: the full member-level ``I_j ⇝ O_j`` pairs
      (Definition 4 verbatim);
    * with equivalence: class-level edges between forward and backward
      classes, plus member-level edges for every pair that the equivalence
      guarantee does not cover — pairs involving overlap vertices and
      in-boundary → in-boundary pairs (the latter make remote boundary
      *targets* resolvable without an extra communication round).
    """
    in_boundaries = set(in_boundaries)
    out_boundaries = set(out_boundaries)
    summary = PartitionSummary(
        partition_id=partition_id,
        in_boundaries=frozenset(in_boundaries),
        out_boundaries=frozenset(out_boundaries),
        use_equivalence=use_equivalence,
    )
    if not in_boundaries and not out_boundaries:
        return summary
    if local_index is None:
        local_index = make_reachability_index(local_index_name, local_graph)

    if not use_equivalence:
        rset = local_index.set_reachability(in_boundaries, out_boundaries)
        for source, reached in rset.items():
            for target in reached:
                if source != target:
                    summary.member_edges.add((source, target))
        return summary

    summary.forward_classes = compute_forward_classes(
        local_graph,
        in_boundaries,
        out_boundaries,
        partition_id,
        allocator,
        local_index=local_index,
    )
    summary.backward_classes = compute_backward_classes(
        local_graph,
        in_boundaries,
        out_boundaries,
        partition_id,
        allocator,
    )

    overlap = in_boundaries & out_boundaries
    # Reachability from every in-boundary to every boundary vertex; this is
    # the same O(|I_j| * |O_j|)-style computation the paper performs, the
    # compression happens in what gets *stored*.
    rset = local_index.set_reachability(in_boundaries, in_boundaries | out_boundaries)

    pure_in = in_boundaries - out_boundaries
    pure_out = out_boundaries - in_boundaries
    member_to_forward = summary.member_to_forward_class()
    member_to_backward = summary.member_to_backward_class()

    for source in in_boundaries:
        for target in rset.get(source, set()):
            if source == target:
                continue
            if source in pure_in and target in pure_out:
                # Covered by a class-level edge.
                summary.class_edges.add(
                    (member_to_forward[source], member_to_backward[target])
                )
            else:
                summary.member_edges.add((source, target))
    return summary
