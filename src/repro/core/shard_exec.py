"""Worker-side DSR execution over hydrated CSR shards.

When the cluster runs on the ``processes`` executor, the per-slave steps of
the one-round query protocol (:mod:`repro.core.query`) execute inside
long-lived worker processes.  Workers never see the engine's Python object
graph; instead each is *hydrated once per epoch* with a
:class:`WorkerShard` — the immutable, self-contained slice of the index that
slave ``i`` needs to answer its part of any query:

* the CSR snapshot of its **condensed compound graph** (the same DAG the
  in-process path queries through), shipped via the compact
  :meth:`repro.graph.csr.CSRGraph.to_bytes` serialisation;
* the vertex → SCC-component mapping of that condensation;
* the forward entry handles of every remote partition (so step-1 payloads
  stay small: the parent names partitions, the worker knows their handles);
* its own summary's handle → representative expansion table for step 3.

Reachability inside a worker is evaluated directly with the bitset
multi-source BFS kernel (:mod:`repro.reachability.bitset_msbfs`) over the
condensation CSR — stateless per query, nothing to keep in sync.

The task functions are registered with the executor registry
(:mod:`repro.cluster.executors`) under ``dsr.local_step`` / ``dsr.remote_step``
and must stay pure reads of the shard: one hydrated epoch serves every
in-flight query of that epoch concurrently.

.. warning::
   :func:`local_step` / :func:`remote_step` deliberately mirror
   ``DistributedQueryExecutor._local_step`` / ``_remote_step`` (the
   in-process path keeps the *configured* local strategy; workers always
   use the stateless bitset kernel).  Any semantic change to the pair logic
   in :mod:`repro.core.query` must be applied here too — the cross-executor
   parity tests (``tests/core/test_epochs.py::TestExecutorParity``) are the
   tripwire.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster import shm as cluster_shm
from repro.cluster.executors import (
    StaleEpochError,
    register_shard_loader,
    register_shard_task,
)
from repro.core.packed_steps import (
    build_member_masks,
    condensation_rows,
    local_step_groups,
    remote_step_groups,
)
from repro.graph.csr import CSRGraph
from repro.obs.runtime import global_registry
from repro.reachability.bitset_msbfs import (
    set_reachability as _bitset_set_reachability,
    set_reachability_rows as _bitset_set_reachability_rows,
)
from repro.reachability.packed import VertexRank, handle_positions, row_from_bytes

#: Registry name of the hydration loader used for DSR shards.
DSR_SHARD_LOADER = "dsr.load_shard"
LOCAL_STEP_TASK = "dsr.local_step"
REMOTE_STEP_TASK = "dsr.remote_step"


@dataclass
class WorkerShardBlob:
    """Picklable hydration payload for one ``(rank, epoch)`` shard.

    In the zero-copy mode, ``shm_segment`` names a shared-memory segment
    written by the master's :class:`~repro.cluster.shm.ShmLedger` and every
    bulk field — ``dag_csr_bytes``, ``component_of``, ``vertex_ids``, the
    handle tables and the expansion table — travels *inside the segment*
    instead of the blob, so the pipe carries essentially just the name.
    With ``shm_segment=None`` the blob is self-contained (the pickled
    fallback).
    """

    rank: int
    epoch: int
    dag_csr_bytes: bytes
    component_of: Dict[int, int]
    remote_forward_handles: Dict[int, Tuple[int, ...]]
    expand_members: Dict[int, Tuple[int, ...]]
    #: The epoch's vertex-rank id order of this partition's compound graph —
    #: the numbering every packed mask/row in step payloads is addressed in.
    #: Shipped verbatim so worker and parent can never disagree on a rank.
    vertex_ids: Tuple[int, ...] = ()
    #: Name of the shared-memory segment holding the bulk payload, or None.
    shm_segment: Optional[str] = None


@dataclass
class WorkerShard:
    """The materialised shard a worker queries against (immutable)."""

    rank: int
    epoch: int
    dag_csr: CSRGraph
    component_of: Dict[int, int]
    remote_forward_handles: Dict[int, Tuple[int, ...]]
    expand_members: Dict[int, Tuple[int, ...]]
    #: Packed-pipeline structures, derived once at hydration.
    vertex_rank: Optional[VertexRank] = None
    member_masks: Tuple[int, ...] = ()
    _handle_positions: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def handle_positions_of(self, pid: int) -> Dict[int, int]:
        """Handle id → canonical wire position for remote partition ``pid``.

        Derived through the shared
        :func:`repro.reachability.packed.handle_positions`, so positions
        agree with every other slave's
        :meth:`~repro.core.summary.PartitionSummary.forward_handle_order`.
        """
        positions = self._handle_positions.get(pid)
        if positions is None:
            positions = handle_positions(self.remote_forward_handles.get(pid, ()))
            self._handle_positions[pid] = positions
        return positions

    def close(self) -> None:
        """Detach from the shard's shared-memory segment, if any.

        Called when the executor retires the epoch holding this shard; a
        closed shard must not serve further tasks.
        """
        if self.dag_csr is not None:
            self.dag_csr.release_shared()


# ---------------------------------------------------------------------- #
# shared-memory segment layout
# ---------------------------------------------------------------------- #
# [u64 n_members][member ids: n*8 int64][component ids: n*8 int64, aligned
# to the member order][handle table][expansion table][CSR wire image
# (CSRGraph.write_shared format)].  Each *table* serialises one
# ``Dict[int, Tuple[int, ...]]`` as
# [u64 n_entries][(key, len) pairs: n*16 int64][values: total*8 int64].
_SHM_COUNT = struct.Struct("<Q")


def _table_size(mapping: Dict[int, Tuple[int, ...]]) -> int:
    return (
        _SHM_COUNT.size
        + 16 * len(mapping)
        + 8 * sum(len(values) for values in mapping.values())
    )


def _write_table(buf, cursor: int, mapping: Dict[int, Tuple[int, ...]]) -> int:
    _SHM_COUNT.pack_into(buf, cursor, len(mapping))
    cursor += _SHM_COUNT.size
    header = array("q")
    values = array("q")
    for key, vals in mapping.items():
        header.append(key)
        header.append(len(vals))
        values.extend(vals)
    for chunk in (header, values):
        raw = chunk.tobytes()
        buf[cursor : cursor + len(raw)] = raw
        cursor += len(raw)
    return cursor


def _read_table(buf, cursor: int):
    (count,) = _SHM_COUNT.unpack_from(buf, cursor)
    cursor += _SHM_COUNT.size
    header = buf[cursor : cursor + 16 * count].cast("q")
    cursor += 16 * count
    total = sum(header[2 * index + 1] for index in range(count))
    values = buf[cursor : cursor + 8 * total].cast("q")
    cursor += 8 * total
    mapping: Dict[int, Tuple[int, ...]] = {}
    position = 0
    for index in range(count):
        length = header[2 * index + 1]
        mapping[header[2 * index]] = tuple(values[position : position + length])
        position += length
    header.release()
    values.release()
    return mapping, cursor


def _write_shard_segment(
    ledger, epoch: int, rank: int, csr, vertex_ids, component_of, handles, expand
):
    """Write one shard's bulk payload into a fresh ledger segment.

    Returns the segment name.  Raises ``KeyError`` when ``component_of``
    does not cover ``vertex_ids`` (caller falls back to the pickled blob).
    """
    comps = array("q", (component_of[vertex] for vertex in vertex_ids))
    ids = array("q", vertex_ids)
    n = len(vertex_ids)
    nbytes = (
        _SHM_COUNT.size
        + 16 * n
        + _table_size(handles)
        + _table_size(expand)
        + csr.shared_size()
    )
    segment = ledger.create(epoch, rank, nbytes)
    buf = segment.buf
    _SHM_COUNT.pack_into(buf, 0, n)
    cursor = _SHM_COUNT.size
    for chunk in (ids, comps):
        raw = chunk.tobytes()
        buf[cursor : cursor + len(raw)] = raw
        cursor += len(raw)
    cursor = _write_table(buf, cursor, handles)
    cursor = _write_table(buf, cursor, expand)
    csr.write_shared(buf, cursor)
    return segment.name


def _read_shard_segment(name: str):
    """Attach to a shard segment; returns
    ``(vertex_ids, component_of, handles, expand, csr)``.

    The CSR's adjacency buffers stay zero-copy views into the mapping (the
    attachment is pinned on the snapshot); the id tuple, component dict and
    the two tables are materialised per process — they are Python object
    structures.
    """
    segment = cluster_shm.attach(name)
    buf = segment.buf
    (n,) = _SHM_COUNT.unpack_from(buf, 0)
    cursor = _SHM_COUNT.size
    ids_view = buf[cursor : cursor + 8 * n].cast("q")
    comps_view = buf[cursor + 8 * n : cursor + 16 * n].cast("q")
    vertex_ids = tuple(ids_view)
    component_of = dict(zip(vertex_ids, comps_view))
    ids_view.release()
    comps_view.release()
    cursor += 16 * n
    handles, cursor = _read_table(buf, cursor)
    expand, cursor = _read_table(buf, cursor)
    from repro.graph.csr import CSRGraph as _CSR

    csr = _CSR.from_shared(buf, offset=cursor, keepalive=segment)
    return vertex_ids, component_of, handles, expand, csr


def build_shard_blob(
    rank: int, epoch: int, compound, summary, ledger=None
) -> WorkerShardBlob:
    """Derive the shard blob for one partition from its epoch state.

    ``compound`` is the partition's :class:`~repro.core.compound_graph.
    CompoundGraph` (its condensed reachability is built if missing) and
    ``summary`` its :class:`~repro.core.summary.PartitionSummary`.

    With a :class:`~repro.cluster.shm.ShmLedger`, the bulk payload (CSR
    image, vertex-rank order, component mapping, handle tables, expansion
    table) is written into a shared segment once and the blob ships only
    its name — workers hydrate by attaching, not by deserializing.  Any
    failure to build the segment falls back to the self-contained pickled
    form.
    """
    if compound.reachability is None:
        compound.build_reachability()
    reach = compound.reachability
    csr = reach.dag.csr()
    vertex_ids = reach.vertex_rank.ids
    component_of = reach.vertex_to_component
    remote_forward_handles = {
        pid: tuple(sorted(handles))
        for pid, handles in compound.remote_forward_handles.items()
    }
    # The single expansion contract, shared with the in-process path.
    expand_members = dict(summary.expand_table())
    shm_segment: Optional[str] = None
    if ledger is not None:
        try:
            shm_segment = _write_shard_segment(
                ledger,
                epoch,
                rank,
                csr,
                vertex_ids,
                component_of,
                remote_forward_handles,
                expand_members,
            )
        except (KeyError, OSError, RuntimeError):
            shm_segment = None
    return WorkerShardBlob(
        rank=rank,
        epoch=epoch,
        dag_csr_bytes=b"" if shm_segment else csr.to_bytes(),
        component_of={} if shm_segment else dict(component_of),
        remote_forward_handles={} if shm_segment else remote_forward_handles,
        expand_members={} if shm_segment else expand_members,
        vertex_ids=() if shm_segment else vertex_ids,
        shm_segment=shm_segment,
    )


@register_shard_loader(DSR_SHARD_LOADER)
def load_shard(blob: WorkerShardBlob) -> WorkerShard:
    """Hydrate a blob into the worker's queryable shard.

    A blob naming a shared segment hydrates by *attach*: the CSR adjacency
    stays a zero-copy view into the master-owned mapping (pointer flip, no
    ``from_bytes`` pass).  A self-contained blob re-inflates the CSR from
    its pickled bytes.  Either way the packed-pipeline structures — the
    vertex rank and the per-component member masks — are derived here, once
    per epoch, so every query of the epoch expands component rows with
    plain ORs.
    """
    if blob.shm_segment is not None:
        vertex_ids, component_map, handles, expand, dag_csr = _read_shard_segment(
            blob.shm_segment
        )
        blob = WorkerShardBlob(
            rank=blob.rank,
            epoch=blob.epoch,
            dag_csr_bytes=b"",
            component_of=component_map,
            remote_forward_handles=handles,
            expand_members=expand,
            vertex_ids=vertex_ids,
            shm_segment=blob.shm_segment,
        )
        registry = global_registry()
        if registry.enabled:
            registry.inc("dsr_shard_shm_attach_total")
    else:
        dag_csr = CSRGraph.from_bytes(blob.dag_csr_bytes)
    vertex_ids = blob.vertex_ids or tuple(sorted(blob.component_of))
    vertex_rank = VertexRank(vertex_ids)
    masks = build_member_masks(
        vertex_ids,
        blob.component_of,
        VertexRank.from_csr(dag_csr).rank_of,
        dag_csr.num_vertices,
    )
    return WorkerShard(
        rank=blob.rank,
        epoch=blob.epoch,
        dag_csr=dag_csr,
        component_of=blob.component_of,
        remote_forward_handles=blob.remote_forward_handles,
        expand_members=blob.expand_members,
        vertex_rank=vertex_rank,
        member_masks=tuple(masks),
    )


def _check_rank_cardinality(shard: WorkerShard, payload: Dict[str, Any]) -> None:
    """Reject packed payloads addressed in a different rank numbering.

    An in-place isolated-vertex insert shifts the vertex-rank numbering
    without bumping the epoch (it always changes the cardinality), and
    :meth:`repro.core.index.DSRIndex.rehydrate_partition` reships this
    shard under the *same* epoch — so a bits payload packed on the other
    side of that window must not be decoded here.  Raising
    :class:`StaleEpochError` routes it into the query's existing
    re-capture-and-retry path.
    """
    expected = payload.get("num_ranks")
    if expected is not None and expected != len(shard.vertex_rank.ids):
        raise StaleEpochError(shard.rank, shard.epoch, (shard.epoch,))


def _record_payload(step: str, payload: Dict[str, Any]) -> None:
    """Account the request payload that crossed (or would cross) the IPC
    boundary for one step: packed target bytes in bits form, an 8-byte-per-id
    estimate in set form.  Recorded in whichever process runs the task, so
    worker totals ship back via the executor's delta piggybacking."""
    registry = global_registry()
    if not registry.enabled:
        return
    bits = payload.get("targets_bits")
    if bits is not None:
        nbytes = len(bits)
        form = "bits"
    else:
        targets = payload.get("targets") or payload.get("interior_targets") or ()
        nbytes = 8 * len(targets)
        form = "sets"
    registry.inc("dsr_shard_payload_bytes_total", nbytes, step=step, form=form)


# ---------------------------------------------------------------------- #
# reachability over the hydrated condensation
# ---------------------------------------------------------------------- #
def _shard_set_reachability(
    shard: WorkerShard, sources: Iterable[int], targets: Iterable[int]
) -> Dict[int, Set[int]]:
    """``{source: reachable targets}`` over the shard's condensation CSR.

    Mirrors :meth:`repro.core.compound_graph.CondensedReachability.
    set_reachability`: translate to component ids, run the batched bitset
    kernel over the DAG, translate back.  Ids unknown to the shard (e.g. a
    vertex inserted after this epoch) yield empty results.
    """
    sources = list(sources)
    result: Dict[int, Set[int]] = {source: set() for source in sources}
    component_of = shard.component_of
    source_comps = {
        source: component_of[source] for source in sources if source in component_of
    }
    target_comps: Dict[int, List[int]] = {}
    for target in set(targets):
        comp = component_of.get(target)
        if comp is not None:
            target_comps.setdefault(comp, []).append(target)
    if not source_comps or not target_comps:
        return result
    comp_result = _bitset_set_reachability(
        shard.dag_csr, set(source_comps.values()), set(target_comps)
    )
    for source, comp in source_comps.items():
        reached: Set[int] = set()
        for reached_comp in comp_result.get(comp, ()):
            reached.update(target_comps[reached_comp])
        result[source] = reached
    return result


def _shard_set_reachability_rows(
    shard: WorkerShard, sources: Iterable[int], target_mask: int
) -> Dict[int, int]:
    """Packed ``{source: row}`` over the shard's vertex rank.

    Mirrors :meth:`repro.core.compound_graph.CondensedReachability.
    set_reachability_rows`: translate the mask to DAG components, run the
    packed bitset kernel, expand reached components through the hydrated
    member masks with single ORs.
    """
    dag_csr = shard.dag_csr
    return condensation_rows(
        sources,
        shard.component_of,
        lambda comps, dag_mask: _bitset_set_reachability_rows(
            dag_csr, comps, dag_mask
        ),
        shard.member_masks,
        shard.vertex_rank.ids,
        VertexRank.from_csr(dag_csr).rank_of,
        target_mask,
    )


# ---------------------------------------------------------------------- #
# the two per-slave query steps (Algorithms 1 and 2)
# ---------------------------------------------------------------------- #
@register_shard_task(LOCAL_STEP_TASK)
def local_step(shard: WorkerShard, payload: Dict[str, Any]):
    """Step 1 at this slave: local pairs + handles to ship per partition.

    Payload: ``{"sources": [...], "interior_pids": [...]}`` plus the targets
    in one of two wire forms — ``"targets_bits"`` (packed bytes over this
    shard's vertex rank; the bits-native pipeline) or ``"targets"`` (sorted
    id list; the set pipeline).  ``targets`` already bundles local targets
    with remote *boundary* targets (resolvable here without communication)
    and ``interior_pids`` names the remote partitions whose interior targets
    need handle shipping.  Returns ``(pairs, outgoing)`` with
    ``outgoing[pid] = {source: packed handle bytes}`` in bits form and
    ``{source: [handles]}`` in set form.
    """
    _record_payload("local", payload)
    if "targets_bits" in payload:
        return _local_step_bits(shard, payload)
    pairs: Set[Tuple[int, int]] = set()
    outgoing: Dict[int, Dict[int, List[int]]] = {}
    sources = payload["sources"]
    if not sources:
        return pairs, outgoing
    handle_targets = {
        pid: set(shard.remote_forward_handles.get(pid, ()))
        for pid in payload["interior_pids"]
        if pid != shard.rank
    }
    all_targets = set(payload["targets"])
    all_handles: Set[int] = set()
    for handles in handle_targets.values():
        all_handles |= handles

    reach = _shard_set_reachability(shard, sources, all_targets | all_handles)
    for source in sources:
        reached = reach.get(source, set())
        for target in reached & all_targets:
            pairs.add((source, target))
        if not all_handles:
            continue
        reached_handles = reached & all_handles
        if not reached_handles:
            continue
        for pid, handles in handle_targets.items():
            hit = sorted(reached_handles & handles)
            if hit:
                outgoing.setdefault(pid, {})[source] = hit
    return pairs, outgoing


def _local_step_bits(shard: WorkerShard, payload: Dict[str, Any]):
    """Bits-native step 1: masks in, product groups + packed bytes out.

    The row-grouping/decoding/packing core is the same
    :func:`repro.core.packed_steps.local_step_groups` the in-process path
    runs — only the mask plumbing differs.  The answer ships as
    ``(sources, targets)`` product groups (the parent materialises the
    tuples once) and the handle traffic as ``{packed handle bytes:
    [sources]}`` per destination partition.
    """
    sources = payload["sources"]
    if not sources:
        return [], {}
    _check_rank_cardinality(shard, payload)
    vrank = shard.vertex_rank
    interior_pids = [pid for pid in payload["interior_pids"] if pid != shard.rank]

    target_mask = row_from_bytes(payload["targets_bits"])
    pid_masks = [
        (pid, vrank.pack(shard.remote_forward_handles.get(pid, ())))
        for pid in interior_pids
    ]
    all_handle_mask = 0
    for _, pid_mask in pid_masks:
        all_handle_mask |= pid_mask

    rows = _shard_set_reachability_rows(
        shard, sources, target_mask | all_handle_mask
    )
    return local_step_groups(
        vrank,
        rows,
        sources,
        target_mask,
        all_handle_mask,
        pid_masks,
        shard.handle_positions_of,
    )


@register_shard_task(REMOTE_STEP_TASK)
def remote_step(shard: WorkerShard, payload: Dict[str, Any]):
    """Step 3 at this slave: expand received handles, finish locally.

    Payload: ``{"sources_by_handle": {handle: [sources]}}`` plus the
    remaining interior targets as either ``"targets_bits"`` (packed bytes
    over this shard's vertex rank) or ``"interior_targets"`` (sorted list) —
    the parent has already drained and inverted this slave's inbox.
    Returns the resolved ``(s, t)`` pairs.
    """
    pairs: Set[Tuple[int, int]] = set()
    sources_by_handle: Dict[int, List[int]] = payload["sources_by_handle"]
    if not sources_by_handle:
        return pairs
    _record_payload("remote", payload)
    if "targets_bits" in payload:
        return _remote_step_bits(shard, payload)
    interior_targets = payload["interior_targets"]
    if not interior_targets:
        return pairs

    members_by_handle = {
        handle: shard.expand_members.get(handle, (handle,))
        for handle in sources_by_handle
    }
    all_members = {
        member for members in members_by_handle.values() for member in members
    }
    reach = _shard_set_reachability(shard, all_members, interior_targets)
    for handle, sources in sources_by_handle.items():
        reached: Set[int] = set()
        for member in members_by_handle[handle]:
            reached |= reach.get(member, set())
        for source in sources:
            for target in reached:
                pairs.add((source, target))
    return pairs


def _remote_step_bits(shard: WorkerShard, payload: Dict[str, Any]):
    """Bits-native step 3: expand handles, AND rows against the target mask.

    The row-ORing/regrouping core is the same
    :func:`repro.core.packed_steps.remote_step_groups` the in-process path
    runs.  Returns product-form ``(sources, targets)`` groups; the parent
    materialises the tuples.
    """
    sources_by_handle: Dict[int, List[int]] = payload["sources_by_handle"]
    _check_rank_cardinality(shard, payload)
    interior_mask = row_from_bytes(payload["targets_bits"])
    if not interior_mask:
        return []

    members_by_handle = {
        handle: shard.expand_members.get(handle, (handle,))
        for handle in sources_by_handle
    }
    all_members = {
        member for members in members_by_handle.values() for member in members
    }
    rows = _shard_set_reachability_rows(shard, all_members, interior_mask)
    return remote_step_groups(
        shard.vertex_rank, rows, sources_by_handle, members_by_handle
    )


__all__ = [
    "DSR_SHARD_LOADER",
    "LOCAL_STEP_TASK",
    "REMOTE_STEP_TASK",
    "WorkerShard",
    "WorkerShardBlob",
    "build_shard_blob",
    "load_shard",
]
