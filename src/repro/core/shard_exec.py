"""Worker-side DSR execution over hydrated CSR shards.

When the cluster runs on the ``processes`` executor, the per-slave steps of
the one-round query protocol (:mod:`repro.core.query`) execute inside
long-lived worker processes.  Workers never see the engine's Python object
graph; instead each is *hydrated once per epoch* with a
:class:`WorkerShard` — the immutable, self-contained slice of the index that
slave ``i`` needs to answer its part of any query:

* the CSR snapshot of its **condensed compound graph** (the same DAG the
  in-process path queries through), shipped via the compact
  :meth:`repro.graph.csr.CSRGraph.to_bytes` serialisation;
* the vertex → SCC-component mapping of that condensation;
* the forward entry handles of every remote partition (so step-1 payloads
  stay small: the parent names partitions, the worker knows their handles);
* its own summary's handle → representative expansion table for step 3.

Reachability inside a worker is evaluated directly with the bitset
multi-source BFS kernel (:mod:`repro.reachability.bitset_msbfs`) over the
condensation CSR — stateless per query, nothing to keep in sync.

The task functions are registered with the executor registry
(:mod:`repro.cluster.executors`) under ``dsr.local_step`` / ``dsr.remote_step``
and must stay pure reads of the shard: one hydrated epoch serves every
in-flight query of that epoch concurrently.

.. warning::
   :func:`local_step` / :func:`remote_step` deliberately mirror
   ``DistributedQueryExecutor._local_step`` / ``_remote_step`` (the
   in-process path keeps the *configured* local strategy; workers always
   use the stateless bitset kernel).  Any semantic change to the pair logic
   in :mod:`repro.core.query` must be applied here too — the cross-executor
   parity tests (``tests/core/test_epochs.py::TestExecutorParity``) are the
   tripwire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.cluster.executors import register_shard_loader, register_shard_task
from repro.graph.csr import CSRGraph
from repro.reachability.bitset_msbfs import set_reachability as _bitset_set_reachability

#: Registry name of the hydration loader used for DSR shards.
DSR_SHARD_LOADER = "dsr.load_shard"
LOCAL_STEP_TASK = "dsr.local_step"
REMOTE_STEP_TASK = "dsr.remote_step"


@dataclass
class WorkerShardBlob:
    """Picklable hydration payload for one ``(rank, epoch)`` shard."""

    rank: int
    epoch: int
    dag_csr_bytes: bytes
    component_of: Dict[int, int]
    remote_forward_handles: Dict[int, Tuple[int, ...]]
    expand_members: Dict[int, Tuple[int, ...]]


@dataclass
class WorkerShard:
    """The materialised shard a worker queries against (immutable)."""

    rank: int
    epoch: int
    dag_csr: CSRGraph
    component_of: Dict[int, int]
    remote_forward_handles: Dict[int, Tuple[int, ...]]
    expand_members: Dict[int, Tuple[int, ...]]


def build_shard_blob(rank: int, epoch: int, compound, summary) -> WorkerShardBlob:
    """Derive the shard blob for one partition from its epoch state.

    ``compound`` is the partition's :class:`~repro.core.compound_graph.
    CompoundGraph` (its condensed reachability is built if missing) and
    ``summary`` its :class:`~repro.core.summary.PartitionSummary`.
    """
    if compound.reachability is None:
        compound.build_reachability()
    reach = compound.reachability
    expand: Dict[int, Tuple[int, ...]] = {}
    for cls in list(summary.forward_classes) + list(summary.backward_classes):
        expand[cls.class_id] = (cls.representative,)
    return WorkerShardBlob(
        rank=rank,
        epoch=epoch,
        dag_csr_bytes=reach.dag.csr().to_bytes(),
        component_of=dict(reach.vertex_to_component),
        remote_forward_handles={
            pid: tuple(sorted(handles))
            for pid, handles in compound.remote_forward_handles.items()
        },
        expand_members=expand,
    )


@register_shard_loader(DSR_SHARD_LOADER)
def load_shard(blob: WorkerShardBlob) -> WorkerShard:
    """Hydrate a blob into the worker's queryable shard (CSR re-inflated)."""
    return WorkerShard(
        rank=blob.rank,
        epoch=blob.epoch,
        dag_csr=CSRGraph.from_bytes(blob.dag_csr_bytes),
        component_of=blob.component_of,
        remote_forward_handles=blob.remote_forward_handles,
        expand_members=blob.expand_members,
    )


# ---------------------------------------------------------------------- #
# reachability over the hydrated condensation
# ---------------------------------------------------------------------- #
def _shard_set_reachability(
    shard: WorkerShard, sources: Iterable[int], targets: Iterable[int]
) -> Dict[int, Set[int]]:
    """``{source: reachable targets}`` over the shard's condensation CSR.

    Mirrors :meth:`repro.core.compound_graph.CondensedReachability.
    set_reachability`: translate to component ids, run the batched bitset
    kernel over the DAG, translate back.  Ids unknown to the shard (e.g. a
    vertex inserted after this epoch) yield empty results.
    """
    sources = list(sources)
    result: Dict[int, Set[int]] = {source: set() for source in sources}
    component_of = shard.component_of
    source_comps = {
        source: component_of[source] for source in sources if source in component_of
    }
    target_comps: Dict[int, List[int]] = {}
    for target in set(targets):
        comp = component_of.get(target)
        if comp is not None:
            target_comps.setdefault(comp, []).append(target)
    if not source_comps or not target_comps:
        return result
    comp_result = _bitset_set_reachability(
        shard.dag_csr, set(source_comps.values()), set(target_comps)
    )
    for source, comp in source_comps.items():
        reached: Set[int] = set()
        for reached_comp in comp_result.get(comp, ()):
            reached.update(target_comps[reached_comp])
        result[source] = reached
    return result


# ---------------------------------------------------------------------- #
# the two per-slave query steps (Algorithms 1 and 2)
# ---------------------------------------------------------------------- #
@register_shard_task(LOCAL_STEP_TASK)
def local_step(shard: WorkerShard, payload: Dict[str, Any]):
    """Step 1 at this slave: local pairs + handles to ship per partition.

    Payload: ``{"sources": [...], "targets": [...], "interior_pids": [...]}``
    where ``targets`` already bundles local targets with remote *boundary*
    targets (resolvable here without communication) and ``interior_pids``
    names the remote partitions whose interior targets need handle shipping.
    Returns ``(pairs, outgoing)`` with ``outgoing[pid] = {source: [handles]}``.
    """
    pairs: Set[Tuple[int, int]] = set()
    outgoing: Dict[int, Dict[int, List[int]]] = {}
    sources = payload["sources"]
    if not sources:
        return pairs, outgoing
    handle_targets = {
        pid: set(shard.remote_forward_handles.get(pid, ()))
        for pid in payload["interior_pids"]
        if pid != shard.rank
    }
    all_targets = set(payload["targets"])
    all_handles: Set[int] = set()
    for handles in handle_targets.values():
        all_handles |= handles

    reach = _shard_set_reachability(shard, sources, all_targets | all_handles)
    for source in sources:
        reached = reach.get(source, set())
        for target in reached & all_targets:
            pairs.add((source, target))
        if not all_handles:
            continue
        reached_handles = reached & all_handles
        if not reached_handles:
            continue
        for pid, handles in handle_targets.items():
            hit = sorted(reached_handles & handles)
            if hit:
                outgoing.setdefault(pid, {})[source] = hit
    return pairs, outgoing


@register_shard_task(REMOTE_STEP_TASK)
def remote_step(shard: WorkerShard, payload: Dict[str, Any]):
    """Step 3 at this slave: expand received handles, finish locally.

    Payload: ``{"sources_by_handle": {handle: [sources]},
    "interior_targets": [...]}`` (the parent has already drained and
    inverted this slave's inbox).  Returns the resolved ``(s, t)`` pairs.
    """
    pairs: Set[Tuple[int, int]] = set()
    sources_by_handle: Dict[int, List[int]] = payload["sources_by_handle"]
    interior_targets = payload["interior_targets"]
    if not interior_targets or not sources_by_handle:
        return pairs

    members_by_handle = {
        handle: shard.expand_members.get(handle, (handle,))
        for handle in sources_by_handle
    }
    all_members = {
        member for members in members_by_handle.values() for member in members
    }
    reach = _shard_set_reachability(shard, all_members, interior_targets)
    for handle, sources in sources_by_handle.items():
        reached: Set[int] = set()
        for member in members_by_handle[handle]:
            reached |= reach.get(member, set())
        for source in sources:
            for target in reached:
                pairs.add((source, target))
    return pairs


__all__ = [
    "DSR_SHARD_LOADER",
    "LOCAL_STEP_TASK",
    "REMOTE_STEP_TASK",
    "WorkerShard",
    "WorkerShardBlob",
    "build_shard_blob",
    "load_shard",
]
