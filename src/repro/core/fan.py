"""DSR-Fan: set reachability with a dynamic dependency graph (Section 3.2).

This is the generalisation of Fan et al.'s distributed reachability algorithm
[9] to sets of sources and targets, used by the paper as its strongest
non-indexed baseline:

1. the master partitions ``S ⇝ T`` into per-partition subqueries;
2. every slave evaluates, over its *local* subgraph only, the reachability
   from ``S_i ∪ I_i`` to ``O_i ∪ T_i`` (the Boolean-formula encoding of the
   paper reduces to this set of reachable pairs);
3. all partial results are shipped to the master, which assembles the
   query-specific *dependency graph* — partial pairs plus the static cut —
   and runs a plain set-reachability search over it.

The dependency graph is rebuilt from scratch for every query, which is exactly
the inefficiency the static DSR index removes; its size is reported in
Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.core.query import QueryResult
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning
from repro.reachability.factory import make_reachability_index


@dataclass
class FanQueryResult(QueryResult):
    """Adds the dynamic dependency-graph size to the standard result."""

    dependency_graph_edges: int = 0
    dependency_graph_vertices: int = 0


class DSRFan:
    """Dynamic-dependency-graph evaluation of DSR queries."""

    def __init__(
        self,
        partitioning: GraphPartitioning,
        local_strategy: str = "msbfs",
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        self.partitioning = partitioning
        self.local_strategy = local_strategy
        self.cluster = cluster or SimulatedCluster(partitioning.num_partitions)
        self.local_graphs: Dict[int, DiGraph] = {
            pid: partitioning.local_subgraph(pid)
            for pid in range(partitioning.num_partitions)
        }
        self.last_dependency_edges = 0

    # ------------------------------------------------------------------ #
    def query(self, sources: Iterable[int], targets: Iterable[int]) -> FanQueryResult:
        source_set = set(sources)
        target_set = set(targets)
        self.cluster.reset_stats()
        per_partition = self.partitioning.split_query(source_set, target_set)

        # Step 1: local evaluation of (S_i ∪ I_i) ⇝ (O_i ∪ T_i) at every slave.
        def local_eval(rank: int) -> Set[Tuple[int, int]]:
            local_graph = self.local_graphs[rank]
            local_sources, local_targets = per_partition.get(rank, (set(), set()))
            from_set = (local_sources | self.partitioning.in_boundaries(rank)) & set(
                local_graph.vertices()
            )
            to_set = (local_targets | self.partitioning.out_boundaries(rank)) & set(
                local_graph.vertices()
            )
            if not from_set or not to_set:
                return set()
            index = make_reachability_index(self.local_strategy, local_graph)
            pairs = set()
            for source, reached in index.set_reachability(from_set, to_set).items():
                for target in reached:
                    if source != target:
                        pairs.add((source, target))
            return pairs

        partial = self.cluster.run_phase("local", local_eval)

        # Step 2: ship every partial result to the master.
        for rank, pairs in partial.items():
            self.cluster.send(rank, SimulatedCluster.MASTER_RANK, sorted(pairs), tag="partial")
        self.cluster.complete_round()
        self.cluster.deliver(SimulatedCluster.MASTER_RANK)

        # Step 3: the master assembles the dependency graph and evaluates it.
        def master_eval() -> Tuple[Set[Tuple[int, int]], int, int]:
            dependency = DiGraph()
            for vertex in source_set | target_set:
                dependency.add_vertex(vertex)
            for pairs in partial.values():
                for u, v in pairs:
                    dependency.add_edge(u, v)
            for u, v in self.partitioning.cut_edges():
                dependency.add_edge(u, v)
            index = make_reachability_index(self.local_strategy, dependency)
            result_pairs = set()
            for source, reached in index.set_reachability(source_set, target_set).items():
                for target in reached:
                    result_pairs.add((source, target))
            return result_pairs, dependency.num_edges, dependency.num_vertices

        pairs, dep_edges, dep_vertices = self.cluster.run_master("master", master_eval)
        self.last_dependency_edges = dep_edges

        snapshot = self.cluster.snapshot()
        return FanQueryResult(
            pairs=pairs,
            parallel_seconds=snapshot["parallel_seconds"],
            total_seconds=snapshot["total_seconds"],
            messages_sent=snapshot["messages_sent"],
            bytes_sent=snapshot["bytes_sent"],
            rounds=snapshot["rounds"],
            per_phase_seconds=snapshot["phases"],
            dependency_graph_edges=dep_edges,
            dependency_graph_vertices=dep_vertices,
        )

    def reachable(self, source: int, target: int) -> bool:
        return (source, target) in self.query([source], [target]).pairs
