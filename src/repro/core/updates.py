"""Incremental maintenance of the DSR index (Section 3.3.3).

Insertions
----------
* A local edge ``(u, v)`` whose endpoints already lie in the same SCC of the
  local compound graph cannot change any reachability, so it is applied to the
  stored graphs and otherwise ignored (the paper makes the same observation).
* Any other local edge marks its partition *dirty*: the partition's summary
  (SCCs, equivalence classes, boundary reachability) must be recomputed and
  re-broadcast so that the other slaves can re-merge it into their compound
  graphs.
* A cut edge never changes intra-partition reachability but may create new
  boundary vertices, so it marks *both* incident partitions dirty.

Deletions
---------
Deletions always mark the incident partition(s) dirty; the affected summary is
recomputed from the stored (uncondensed) local subgraph — the same strategy as
the paper, whose deletion cost is therefore close to rebuilding that
partition's boundary information.

Batching
--------
Recomputing summaries and re-merging compound graphs per *individual* edge
would be wasteful, so maintenance is deferred: updates mutate the graph and
record dirty partitions; :meth:`IncrementalMaintainer.flush` performs the
recomputation once for the whole batch.  The engine flushes automatically
before the next query, so query answers are always consistent with every
applied update.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.index import DSRIndex


@dataclass
class UpdateResult:
    """Outcome of a single incremental update."""

    kind: str
    affected_partitions: Set[int]
    structural_change: bool
    seconds: float
    flushed: bool = False


@dataclass
class FlushResult:
    """Outcome of one maintenance flush."""

    refreshed_partitions: Set[int] = field(default_factory=set)
    seconds: float = 0.0


class IncrementalMaintainer:
    """Applies edge/vertex updates to a graph and its DSR index."""

    def __init__(self, index: DSRIndex, auto_flush: bool = False) -> None:
        self.index = index
        self.partitioning = index.partitioning
        self.graph = index.partitioning.graph
        self.auto_flush = auto_flush
        self._dirty: Set[int] = set()
        self._update_listeners: List[Callable[[UpdateResult], None]] = []
        self._flush_listeners: List[Callable[[FlushResult], None]] = []

    # ------------------------------------------------------------------ #
    # observers
    # ------------------------------------------------------------------ #
    def add_update_listener(self, listener: Callable[[UpdateResult], None]) -> None:
        """Call ``listener(update_result)`` after every applied update.

        The listener runs *before* the batched flush, i.e. at the moment the
        index first diverges from its last consistent state — the right point
        for a result cache to invalidate (waiting for the flush would leave a
        window where stale answers could still be served).
        """
        self._update_listeners.append(listener)

    def add_flush_listener(self, listener: Callable[[FlushResult], None]) -> None:
        """Call ``listener(flush_result)`` after every maintenance flush."""
        self._flush_listeners.append(listener)

    def remove_listener(self, listener: Callable) -> None:
        """Detach a previously registered update or flush listener."""
        if listener in self._update_listeners:
            self._update_listeners.remove(listener)
        if listener in self._flush_listeners:
            self._flush_listeners.remove(listener)

    def _notify(self, result: UpdateResult) -> UpdateResult:
        for listener in self._update_listeners:
            listener(result)
        return result

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def has_pending_changes(self) -> bool:
        return bool(self._dirty)

    def flush(self) -> FlushResult:
        """Recompute dirty summaries and re-merge all compound graphs once."""
        start = time.perf_counter()
        result = FlushResult(refreshed_partitions=set(self._dirty))
        if not self._dirty:
            result.seconds = time.perf_counter() - start
            return result
        self._refresh_cut()
        for partition_id in sorted(self._dirty):
            self.index.local_graphs[partition_id] = self.partitioning.local_subgraph(
                partition_id
            )
            self.index.summaries[partition_id] = self.index.rebuild_summary(partition_id)
        self.index.broadcast_summaries(sorted(self._dirty))
        self.index.refresh_compound_graphs()
        self._dirty.clear()
        result.seconds = time.perf_counter() - start
        for listener in self._flush_listeners:
            listener(result)
        return result

    def _mark_dirty(self, partition_ids) -> None:
        self._dirty.update(partition_ids)
        if self.auto_flush:
            self.flush()

    # ------------------------------------------------------------------ #
    # edge updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: int, v: int) -> UpdateResult:
        """Insert edge ``(u, v)``; endpoints must already exist."""
        start = time.perf_counter()
        for vertex in (u, v):
            if not self.graph.has_vertex(vertex):
                raise ValueError(f"vertex {vertex} does not exist; add it first")
        pid_u = self.partitioning.partition_of(u)
        pid_v = self.partitioning.partition_of(v)

        if not self.graph.add_edge(u, v):
            return self._notify(
                UpdateResult("insert-edge", set(), False, time.perf_counter() - start)
            )

        if pid_u == pid_v:
            # Keep the per-partition graphs in sync immediately (cheap).
            self.index.local_graphs[pid_u].add_edge(u, v)
            compound = self.index.compound_graphs.get(pid_u)
            if compound is not None:
                compound.graph.add_edge(u, v)
            same_scc = False
            if (
                pid_u not in self._dirty
                and compound is not None
                and compound.reachability is not None
            ):
                components = compound.reachability.vertex_to_component
                same_scc = (
                    components.get(u) is not None
                    and components.get(u) == components.get(v)
                )
            if same_scc:
                # Both endpoints are already mutually reachable: no summary or
                # condensation change is possible (Section 3.3.3).
                return self._notify(
                    UpdateResult("insert-edge", {pid_u}, False, time.perf_counter() - start)
                )
            self._mark_dirty({pid_u})
            return self._notify(
                UpdateResult(
                    "insert-edge",
                    {pid_u},
                    True,
                    time.perf_counter() - start,
                    flushed=self.auto_flush,
                )
            )

        # Cut edge: boundary sets of both incident partitions may change.
        self._mark_dirty({pid_u, pid_v})
        return self._notify(
            UpdateResult(
                "insert-edge",
                {pid_u, pid_v},
                True,
                time.perf_counter() - start,
                flushed=self.auto_flush,
            )
        )

    def delete_edge(self, u: int, v: int) -> UpdateResult:
        """Delete edge ``(u, v)`` if present."""
        start = time.perf_counter()
        if not self.graph.has_edge(u, v):
            return self._notify(
                UpdateResult("delete-edge", set(), False, time.perf_counter() - start)
            )
        pid_u = self.partitioning.partition_of(u)
        pid_v = self.partitioning.partition_of(v)
        self.graph.remove_edge(u, v)
        if pid_u == pid_v:
            self.index.local_graphs[pid_u].remove_edge(u, v)
            compound = self.index.compound_graphs.get(pid_u)
            if compound is not None:
                compound.graph.remove_edge(u, v)
            affected = {pid_u}
        else:
            affected = {pid_u, pid_v}
        self._mark_dirty(affected)
        return self._notify(
            UpdateResult(
                "delete-edge",
                affected,
                True,
                time.perf_counter() - start,
                flushed=self.auto_flush,
            )
        )

    # ------------------------------------------------------------------ #
    # vertex updates
    # ------------------------------------------------------------------ #
    def insert_vertex(
        self, vertex: Optional[int] = None, partition_id: Optional[int] = None
    ) -> int:
        """Insert an isolated vertex and assign it to a partition."""
        if vertex is not None and self.graph.has_vertex(vertex):
            # Re-inserting must not silently reassign the vertex's partition:
            # the old partition would keep its edges while the new one claims
            # the vertex, corrupting every later dirty-marking decision.
            raise ValueError(f"vertex {vertex} already exists")
        new_vertex = self.graph.add_vertex(vertex)
        if partition_id is None:
            sizes = [
                (len(self.partitioning.vertices_of(pid)), pid)
                for pid in range(self.partitioning.num_partitions)
            ]
            partition_id = min(sizes)[1]
        self.partitioning.assignment[new_vertex] = partition_id
        self.partitioning.vertices_of(partition_id).add(new_vertex)
        if self.index.is_built:
            self.index.local_graphs[partition_id].add_vertex(new_vertex)
            compound = self.index.compound_graphs[partition_id]
            compound.graph.add_vertex(new_vertex)
            compound.local_vertices.add(new_vertex)
            if compound.reachability is not None:
                compound.reachability.rebuild()
        # An isolated vertex cannot change reachability between existing
        # vertices, so the update is reported as non-structural.
        self._notify(UpdateResult("insert-vertex", {partition_id}, False, 0.0))
        return new_vertex

    def delete_vertex(self, vertex: int) -> UpdateResult:
        """Delete a vertex together with all incident edges."""
        start = time.perf_counter()
        pid = self.partitioning.partition_of(vertex)
        touched = {pid}
        for neighbour in set(self.graph.successors(vertex)) | set(
            self.graph.predecessors(vertex)
        ):
            touched.add(self.partitioning.partition_of(neighbour))
        self.graph.remove_vertex(vertex)
        self.partitioning.vertices_of(pid).discard(vertex)
        del self.partitioning.assignment[vertex]
        # Removing a vertex can change the local structure of every touched
        # partition, so recompute them from the partitioning at flush time.
        self._mark_dirty(touched)
        return self._notify(
            UpdateResult(
                "delete-vertex",
                touched,
                True,
                time.perf_counter() - start,
                flushed=self.auto_flush,
            )
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _refresh_cut(self) -> None:
        """Recompute the cached cut after the underlying graph changed."""
        self.partitioning._cut_edges = [
            (a, b)
            for a, b in self.graph.edges()
            if self.partitioning.assignment[a] != self.partitioning.assignment[b]
        ]
