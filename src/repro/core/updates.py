"""Incremental maintenance of the DSR index (Section 3.3.3), epoch-versioned.

Insertions
----------
* A local edge ``(u, v)`` whose endpoints already lie in the same SCC of the
  local compound graph cannot change any reachability, so it is applied to the
  stored graphs and otherwise ignored (the paper makes the same observation).
* Any other local edge marks its partition *dirty*: the partition's summary
  (SCCs, equivalence classes, boundary reachability) must be recomputed and
  re-broadcast so that the other slaves can re-merge it into their compound
  graphs.
* A cut edge never changes intra-partition reachability but may create new
  boundary vertices, so it marks *both* incident partitions dirty.

Deletions
---------
Deletions always mark the incident partition(s) dirty; the affected summary is
recomputed from the stored (uncondensed) local subgraph — the same strategy as
the paper, whose deletion cost is therefore close to rebuilding that
partition's boundary information.

Batching and epochs
-------------------
Recomputing summaries and re-merging compound graphs per *individual* edge
would be wasteful, so maintenance is deferred: updates mutate the graph and
record dirty partitions; :meth:`IncrementalMaintainer.flush` performs the
recomputation once for the whole batch — as a **new epoch**.  The flush asks
the index for the next :class:`~repro.core.index.EpochState` (built off the
hot path, with only a brief snapshot section under the mutation lock) and
atomically publishes it, so a query running concurrently with a flush always
sees either epoch ``N`` or epoch ``N+1``, never a half-merged view.

:meth:`request_background_flush` runs the same flush on a coalescing daemon
thread — the engine's ``epoch_flush="background"`` mode — so queries are never
blocked behind maintenance: they keep reading epoch ``N`` until ``N+1`` swaps
in.  All mutating entry points take one re-entrant mutation lock, making the
maintainer safe to drive from a concurrent service.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.index import DSRIndex, EpochState
from repro.obs.runtime import global_registry


@dataclass
class UpdateResult:
    """Outcome of a single incremental update."""

    kind: str
    affected_partitions: Set[int]
    structural_change: bool
    seconds: float
    flushed: bool = False


@dataclass
class FlushResult:
    """Outcome of one maintenance flush."""

    refreshed_partitions: Set[int] = field(default_factory=set)
    seconds: float = 0.0
    #: The epoch this flush published (the pre-flush epoch if nothing was dirty).
    epoch: int = -1
    #: Time the epoch build held the mutation lock (0.0 for no-op flushes).
    snapshot_seconds: float = 0.0
    #: Time of the unlocked heavy rebuild (0.0 for no-op flushes).
    heavy_seconds: float = 0.0


class IncrementalMaintainer:
    """Applies edge/vertex updates to a graph and its DSR index."""

    def __init__(self, index: DSRIndex, auto_flush: bool = False) -> None:
        self.index = index
        self.partitioning = index.partitioning
        self.graph = index.partitioning.graph
        self.auto_flush = auto_flush
        self._dirty: Set[int] = set()
        self._update_listeners: List[Callable[[UpdateResult], None]] = []
        self._flush_listeners: List[Callable[[FlushResult], None]] = []
        #: Serialises graph/partitioning mutations against the flush's
        #: snapshot phase (re-entrant: flush's snapshot runs under it too).
        self._mutation_lock = threading.RLock()
        #: Serialises whole flushes (one epoch build at a time).
        self._flush_lock = threading.Lock()
        # Background-flush machinery (coalescing worker thread).
        self._bg_lock = threading.Lock()
        self._bg_thread: Optional[threading.Thread] = None
        self._bg_requested = False
        self._bg_idle = threading.Event()
        self._bg_idle.set()
        self.background_flush_error: Optional[BaseException] = None
        #: Test seam: called with the built (unpublished) EpochState right
        #: before the atomic swap — lets races around the swap be staged.
        self._before_publish: Optional[Callable[[EpochState], None]] = None
        # Maintenance counters (mirrored into the metrics registry; kept as
        # plain attributes too so `maintenance_stats()` reads them without
        # going through the registry's label plumbing).
        self._flush_count = 0
        self._noop_flush_count = 0
        self._bg_request_count = 0
        self._bg_coalesced_count = 0
        #: The most recent non-trivial flush (None until one happens).
        self.last_flush: Optional[FlushResult] = None

    # ------------------------------------------------------------------ #
    # observers
    # ------------------------------------------------------------------ #
    def add_update_listener(self, listener: Callable[[UpdateResult], None]) -> None:
        """Call ``listener(update_result)`` after every applied update.

        The listener runs *before* the batched flush, i.e. at the moment the
        index first diverges from its last consistent state — the right point
        for an eagerly invalidating result cache (an epoch-invalidating cache
        subscribes to the flush stream instead and keeps serving the
        still-published epoch).
        """
        self._update_listeners.append(listener)

    def add_flush_listener(self, listener: Callable[[FlushResult], None]) -> None:
        """Call ``listener(flush_result)`` after every maintenance flush."""
        self._flush_listeners.append(listener)

    def remove_listener(self, listener: Callable) -> None:
        """Detach a previously registered update or flush listener."""
        if listener in self._update_listeners:
            self._update_listeners.remove(listener)
        if listener in self._flush_listeners:
            self._flush_listeners.remove(listener)

    def _notify(self, result: UpdateResult) -> UpdateResult:
        for listener in self._update_listeners:
            listener(result)
        return result

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def has_pending_changes(self) -> bool:
        return bool(self._dirty)

    @property
    def epoch(self) -> int:
        """The index's currently published epoch."""
        return self.index.epoch

    def flush(self) -> FlushResult:
        """Build the next epoch from the dirty partitions and swap it in.

        The heavy recomputation (summaries, compound graphs, condensations)
        runs without holding the mutation lock; queries keep reading the
        current epoch throughout and flip to the new one at the atomic
        publish.  Safe to call from any thread; concurrent flushes serialise.
        """
        start = time.perf_counter()
        with self._flush_lock:
            with self._mutation_lock:
                dirty = set(self._dirty)
                self._dirty.clear()
            registry = global_registry()
            if not dirty:
                self._noop_flush_count += 1
                if registry.enabled:
                    registry.inc("dsr_flushes_total", outcome="noop")
                return FlushResult(
                    refreshed_partitions=set(),
                    seconds=time.perf_counter() - start,
                    epoch=self.index.epoch,
                )
            try:
                state = self.index.build_epoch_state(
                    dirty, mutation_lock=self._mutation_lock
                )
                if self._before_publish is not None:
                    self._before_publish(state)
                self.index.publish(state)
            except BaseException:
                # The batch was not applied: put the dirt back so the next
                # flush retries it rather than silently dropping maintenance.
                with self._mutation_lock:
                    self._dirty.update(dirty)
                if registry.enabled:
                    registry.inc("dsr_flushes_total", outcome="error")
                raise
            result = FlushResult(
                refreshed_partitions=dirty,
                seconds=time.perf_counter() - start,
                epoch=state.epoch,
                snapshot_seconds=state.build_snapshot_seconds,
                heavy_seconds=state.build_heavy_seconds,
            )
            self._flush_count += 1
            self.last_flush = result
            if registry.enabled:
                registry.inc("dsr_flushes_total", outcome="published")
                registry.observe("dsr_flush_seconds", result.seconds)
        for listener in self._flush_listeners:
            listener(result)
        return result

    def rebuild_index(
        self,
        local_strategy: Optional[str] = None,
        strategy_kwargs: Optional[Dict[str, Any]] = None,
    ) -> FlushResult:
        """Republish the index as a new epoch, optionally swapping strategy.

        The fleet tuner's rebuild path: unlike :meth:`flush`, this *always*
        builds and publishes a full next epoch — an empty dirty set still
        reassembles every compound graph, which is exactly what re-reading
        ``index.local_strategy`` needs to take effect everywhere.  Pending
        dirty partitions are folded into the same epoch, so no maintenance is
        lost or double-applied.  Queries keep reading the current epoch for
        the whole heavy rebuild and flip at the atomic publish; the strategy
        attributes are only mutated under the mutation lock while no other
        epoch build can be in flight (the flush lock is held), so no epoch
        ever mixes planning state mid-build.  Answers are strategy-invariant
        by construction, which is why in-flight queries need no coordination
        beyond the usual epoch swap.
        """
        start = time.perf_counter()
        with self._flush_lock:
            with self._mutation_lock:
                dirty = set(self._dirty)
                self._dirty.clear()
                if local_strategy is not None:
                    self.index.local_strategy = local_strategy
                    self.index.strategy_kwargs = dict(strategy_kwargs or {})
            registry = global_registry()
            try:
                state = self.index.build_epoch_state(
                    dirty, mutation_lock=self._mutation_lock
                )
                if self._before_publish is not None:
                    self._before_publish(state)
                self.index.publish(state)
            except BaseException:
                with self._mutation_lock:
                    self._dirty.update(dirty)
                if registry.enabled:
                    registry.inc("dsr_flushes_total", outcome="error")
                raise
            result = FlushResult(
                refreshed_partitions=dirty,
                seconds=time.perf_counter() - start,
                epoch=state.epoch,
                snapshot_seconds=state.build_snapshot_seconds,
                heavy_seconds=state.build_heavy_seconds,
            )
            self._flush_count += 1
            self.last_flush = result
            if registry.enabled:
                registry.inc("dsr_flushes_total", outcome="rebuild")
                registry.observe("dsr_flush_seconds", result.seconds)
        for listener in self._flush_listeners:
            listener(result)
        return result

    # ------------------------------------------------------------------ #
    # background (off-hot-path) flushing
    # ------------------------------------------------------------------ #
    def request_background_flush(self) -> None:
        """Schedule a flush on the coalescing background worker.

        Multiple requests while a flush is running fold into one follow-up
        flush; the worker exits when no request is pending.  Errors are kept
        in :attr:`background_flush_error` — surfaced through
        ``DSRService.stats()`` — and the dirty set is restored by
        :meth:`flush`, so the next request (cleared below) retries the whole
        batch.
        """
        with self._bg_lock:
            self.background_flush_error = None
            self._bg_request_count += 1
            if self._bg_requested:
                # A request while one is already pending folds into the same
                # upcoming flush — the coalescing the counter makes visible.
                self._bg_coalesced_count += 1
                registry = global_registry()
                if registry.enabled:
                    registry.inc("dsr_flush_requests_coalesced_total")
            self._bg_requested = True
            registry = global_registry()
            if registry.enabled:
                registry.inc("dsr_flush_requests_total")
            if self._bg_thread is None or not self._bg_thread.is_alive():
                self._bg_idle.clear()
                self._bg_thread = threading.Thread(
                    target=self._background_loop, name="dsr-epoch-flush", daemon=True
                )
                self._bg_thread.start()

    def _background_loop(self) -> None:
        while True:
            with self._bg_lock:
                if not self._bg_requested:
                    self._bg_thread = None
                    self._bg_idle.set()
                    return
                self._bg_requested = False
            try:
                self.flush()
            except BaseException as exc:  # pragma: no cover - defensive
                self.background_flush_error = exc

    def wait_for_flushes(self, timeout: Optional[float] = None) -> bool:
        """Block until no background flush is pending (False on timeout)."""
        return self._bg_idle.wait(timeout)

    def maintenance_stats(self) -> Dict[str, Any]:
        """Epoch/flush instrumentation snapshot for the exposition surface.

        Includes the snapshot-vs-heavy phase split of the last published
        flush, the publish timestamp, the serving epoch's age (epoch lag) and
        the background-flush coalescing counters.
        """
        last = self.last_flush
        return {
            "epoch": self.index.epoch,
            "epoch_age_seconds": self.index.epoch_age_seconds(),
            "epoch_published_at": self.index.published_at_unix,
            "flushes": self._flush_count,
            "noop_flushes": self._noop_flush_count,
            "background_requests": self._bg_request_count,
            "coalesced_requests": self._bg_coalesced_count,
            "last_flush_seconds": last.seconds if last else None,
            "last_flush_snapshot_seconds": last.snapshot_seconds if last else None,
            "last_flush_heavy_seconds": last.heavy_seconds if last else None,
            "last_flush_epoch": last.epoch if last else None,
        }

    def _mark_dirty(self, partition_ids) -> None:
        self._dirty.update(partition_ids)

    def _after_update(self, marked: bool) -> None:
        """Run the auto-flush *outside* the mutation lock (deadlock-free)."""
        if marked and self.auto_flush:
            self.flush()

    # ------------------------------------------------------------------ #
    # edge updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: int, v: int) -> UpdateResult:
        """Insert edge ``(u, v)``; endpoints must already exist."""
        start = time.perf_counter()
        marked = False
        with self._mutation_lock:
            for vertex in (u, v):
                if not self.graph.has_vertex(vertex):
                    raise ValueError(f"vertex {vertex} does not exist; add it first")
            pid_u = self.partitioning.partition_of(u)
            pid_v = self.partitioning.partition_of(v)

            if not self.graph.add_edge(u, v):
                result = UpdateResult(
                    "insert-edge", set(), False, time.perf_counter() - start
                )
            elif pid_u == pid_v:
                # Keep the per-partition graphs in sync immediately (cheap).
                self.index.local_graphs[pid_u].add_edge(u, v)
                compound = self.index.compound_graphs.get(pid_u)
                if compound is not None:
                    compound.graph.add_edge(u, v)
                same_scc = False
                if (
                    pid_u not in self._dirty
                    and compound is not None
                    and compound.reachability is not None
                ):
                    components = compound.reachability.vertex_to_component
                    same_scc = (
                        components.get(u) is not None
                        and components.get(u) == components.get(v)
                    )
                if same_scc:
                    # Both endpoints are already mutually reachable: no summary
                    # or condensation change is possible (Section 3.3.3).
                    result = UpdateResult(
                        "insert-edge", {pid_u}, False, time.perf_counter() - start
                    )
                else:
                    self._mark_dirty({pid_u})
                    marked = True
                    result = UpdateResult(
                        "insert-edge",
                        {pid_u},
                        True,
                        time.perf_counter() - start,
                        flushed=self.auto_flush,
                    )
            else:
                # Cut edge: boundary sets of both incident partitions change.
                self._mark_dirty({pid_u, pid_v})
                marked = True
                result = UpdateResult(
                    "insert-edge",
                    {pid_u, pid_v},
                    True,
                    time.perf_counter() - start,
                    flushed=self.auto_flush,
                )
        self._after_update(marked)
        return self._notify(result)

    def delete_edge(self, u: int, v: int) -> UpdateResult:
        """Delete edge ``(u, v)`` if present."""
        start = time.perf_counter()
        marked = False
        with self._mutation_lock:
            if not self.graph.has_edge(u, v):
                result = UpdateResult(
                    "delete-edge", set(), False, time.perf_counter() - start
                )
            else:
                pid_u = self.partitioning.partition_of(u)
                pid_v = self.partitioning.partition_of(v)
                self.graph.remove_edge(u, v)
                if pid_u == pid_v:
                    self.index.local_graphs[pid_u].remove_edge(u, v)
                    compound = self.index.compound_graphs.get(pid_u)
                    if compound is not None:
                        compound.graph.remove_edge(u, v)
                    affected = {pid_u}
                else:
                    affected = {pid_u, pid_v}
                self._mark_dirty(affected)
                marked = True
                result = UpdateResult(
                    "delete-edge",
                    affected,
                    True,
                    time.perf_counter() - start,
                    flushed=self.auto_flush,
                )
        self._after_update(marked)
        return self._notify(result)

    # ------------------------------------------------------------------ #
    # vertex updates
    # ------------------------------------------------------------------ #
    def insert_vertex(
        self, vertex: Optional[int] = None, partition_id: Optional[int] = None
    ) -> int:
        """Insert an isolated vertex and assign it to a partition."""
        with self._mutation_lock:
            if vertex is not None and self.graph.has_vertex(vertex):
                # Re-inserting must not silently reassign the vertex's
                # partition: the old partition would keep its edges while the
                # new one claims the vertex, corrupting every later
                # dirty-marking decision.
                raise ValueError(f"vertex {vertex} already exists")
            new_vertex = self.graph.add_vertex(vertex)
            if partition_id is None:
                sizes = [
                    (len(self.partitioning.vertices_of(pid)), pid)
                    for pid in range(self.partitioning.num_partitions)
                ]
                partition_id = min(sizes)[1]
            self.partitioning.assignment[new_vertex] = partition_id
            self.partitioning.vertices_of(partition_id).add(new_vertex)
            if self.index.is_built:
                state = self.index.current_state()
                state.local_graphs[partition_id].add_vertex(new_vertex)
                # Queries split against the epoch's assignment snapshot, so
                # the new vertex must register there too (isolated vertex:
                # provably answer-preserving, the one sanctioned in-place
                # edit of a published state).
                state.assignment[new_vertex] = partition_id
                compound = state.compound_graphs[partition_id]
                compound.graph.add_vertex(new_vertex)
                compound.local_vertices.add(new_vertex)
                if compound.reachability is not None:
                    compound.reachability.rebuild()
                if self._flush_lock.locked():
                    # A flush is in flight and its snapshot may predate this
                    # insert — the epoch it publishes would then lack the
                    # vertex (the in-place edits above touched only the
                    # *current* state).  Mark the partition dirty so a
                    # follow-up flush re-derives it from the live graph.
                    # With no flush in flight this is unnecessary: the next
                    # snapshot copies the current state/live assignment,
                    # both of which now contain the vertex.
                    self._mark_dirty({partition_id})
        # Sharded workers must learn the new vertex id even though the update
        # is non-structural (no epoch flush will follow it).
        self.index.rehydrate_partition(partition_id)
        # An isolated vertex cannot change reachability between existing
        # vertices, so the update is reported as non-structural.
        self._notify(UpdateResult("insert-vertex", {partition_id}, False, 0.0))
        return new_vertex

    def delete_vertex(self, vertex: int) -> UpdateResult:
        """Delete a vertex together with all incident edges."""
        start = time.perf_counter()
        with self._mutation_lock:
            pid = self.partitioning.partition_of(vertex)
            touched = {pid}
            for neighbour in set(self.graph.successors(vertex)) | set(
                self.graph.predecessors(vertex)
            ):
                touched.add(self.partitioning.partition_of(neighbour))
            self.graph.remove_vertex(vertex)
            self.partitioning.vertices_of(pid).discard(vertex)
            del self.partitioning.assignment[vertex]
            # Removing a vertex can change the local structure of every
            # touched partition, so recompute them at flush time.
            self._mark_dirty(touched)
            result = UpdateResult(
                "delete-vertex",
                touched,
                True,
                time.perf_counter() - start,
                flushed=self.auto_flush,
            )
        self._after_update(True)
        return self._notify(result)
