"""The shared core of the bits-native query steps.

The packed pipeline runs in two places — in-process
(:class:`repro.core.query.DistributedQueryExecutor`) and inside hydrated
worker processes (:mod:`repro.core.shard_exec`) — that must answer
identically.  Everything that is a pure function of (vertex rank, reached
rows, masks) lives here, once, so the two call sites shrink to payload
plumbing and the lockstep surface cannot drift:

* :func:`build_member_masks` — per-SCC-component member masks (component
  row → member row in one OR), built at condensation rebuild / shard
  hydration;
* :func:`condensation_rows` — the complete packed ``localSetReachability``
  over a condensation: translate sources and the target mask to DAG ranks,
  harvest component rows through the strategy kernel, expand them through
  the member masks;
* :func:`local_step_groups` — the step-1 core: group sources by reached
  row, split row hits into answer product groups and per-partition packed
  handle payloads;
* :func:`remote_step_groups` — the step-3 core: OR each source's handle
  rows and regroup by row so overlapping handle answers materialise once.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.runtime import global_registry
from repro.reachability.packed import (
    VertexRank,
    iter_bits,
    pack_ranks,
    row_to_bytes,
)

#: One product-form answer group: every source reaches every target.
Group = Tuple[List[int], List[int]]


def build_member_masks(
    vertex_ids: Sequence[int],
    vertex_to_component: Mapping[int, int],
    component_rank_of: Mapping[int, int],
    num_components: int,
) -> Tuple[int, ...]:
    """``masks[c]``: the members of DAG-rank-``c``'s component as one row.

    ``vertex_ids`` is the epoch's vertex-rank id order.  Member ranks are
    collected per component first and packed with one ``int.from_bytes``
    each (see :func:`repro.reachability.packed.pack_ranks`) — O(V + bytes)
    instead of the O(V·width/64) growing-bigint OR loop.
    """
    members_of: List[List[int]] = [[] for _ in range(num_components)]
    for r, vertex in enumerate(vertex_ids):
        members_of[component_rank_of[vertex_to_component[vertex]]].append(r)
    return tuple(pack_ranks(ranks) for ranks in members_of)


def condensation_rows(
    sources: Iterable[int],
    vertex_to_component: Mapping[int, int],
    comp_rows_for: Callable[[Iterable[int], Optional[int]], Dict[int, int]],
    member_masks: Sequence[int],
    vertex_ids: Sequence[int],
    component_rank_of: Mapping[int, int],
    target_mask: Optional[int],
) -> Dict[int, int]:
    """Packed ``{source: row}`` over a condensation's member vertex ranks.

    Sources unknown to the condensation get a zero row;
    ``comp_rows_for(comps, dag_mask)`` returns packed component rows over
    the DAG ranks (the strategy kernel); each reached component expands to
    its members with one OR of the precomputed mask, and sources sharing a
    component row share the expansion.  ``target_mask`` restricts both the
    harvest and the expansion (``None`` keeps everything).
    """
    sources = list(sources)
    rows: Dict[int, int] = {source: 0 for source in sources}
    source_comps = {
        source: vertex_to_component[source]
        for source in sources
        if source in vertex_to_component
    }
    if not source_comps or target_mask == 0:
        return rows

    if target_mask is None:
        dag_mask: Optional[int] = None
    else:
        # The mask is small (targets + handles): derive the DAG-level mask
        # from its set bits rather than scanning every component.
        dag_mask = 0
        for r in iter_bits(target_mask):
            dag_mask |= 1 << component_rank_of[vertex_to_component[vertex_ids[r]]]

    comp_rows = comp_rows_for(set(source_comps.values()), dag_mask)
    expanded: Dict[int, int] = {}
    for source, comp in source_comps.items():
        comp_row = comp_rows.get(comp, 0)
        row = expanded.get(comp_row)
        if row is None:
            row = 0
            for comp_rank in iter_bits(comp_row):
                row |= member_masks[comp_rank]
            if target_mask is not None:
                row &= target_mask
            expanded[comp_row] = row
        rows[source] = row
    return rows


def local_step_groups(
    vrank: VertexRank,
    rows: Mapping[int, int],
    sources: Iterable[int],
    target_mask: int,
    all_handle_mask: int,
    pid_masks: Sequence[Tuple[int, int]],
    handle_positions_of: Callable[[int], Mapping[int, int]],
) -> Tuple[List[Group], Dict[int, Dict[bytes, List[int]]]]:
    """Step-1 core: reached rows → answer groups + packed handle payloads.

    Sources are grouped by their reached row (one SCC → one row), so each
    distinct row is intersected with the target mask and decoded exactly
    once; the handles bound for partition ``pid`` are re-packed into
    ``pid``'s canonical handle positions and keyed by their byte form, with
    all sources sharing the row appended to one payload entry.
    """
    groups: List[Group] = []
    outgoing: Dict[int, Dict[bytes, List[int]]] = {}
    ids = vrank.ids

    num_sources = 0
    by_row: Dict[int, List[int]] = {}
    for source in sources:
        num_sources += 1
        row = rows.get(source, 0)
        if row:
            by_row.setdefault(row, []).append(source)

    for row, row_sources in by_row.items():
        hits = row & target_mask
        if hits:
            groups.append((row_sources, vrank.unpack(hits)))
        if not all_handle_mask or not row & all_handle_mask:
            continue
        for pid, pid_mask in pid_masks:
            hit = row & pid_mask
            if not hit:
                continue
            positions = handle_positions_of(pid)
            handle_row = 0
            for r in iter_bits(hit):
                handle_row |= 1 << positions[ids[r]]
            outgoing.setdefault(pid, {}).setdefault(
                row_to_bytes(handle_row), []
            ).extend(row_sources)
    # These totals are a pure function of the inputs, so a serial run and a
    # sharded process run (whose workers ship deltas back) count identically
    # — the invariant the delta-shipping exactness tests pin down.
    registry = global_registry()
    if registry.enabled:
        registry.inc("dsr_step_sources_total", num_sources, step="local")
        registry.inc("dsr_step_groups_total", len(groups), step="local")
        registry.inc(
            "dsr_step_handle_bytes_total",
            sum(len(row_bytes) for per_pid in outgoing.values() for row_bytes in per_pid),
            step="local",
        )
    return groups, outgoing


def remote_step_groups(
    vrank: VertexRank,
    rows: Mapping[int, int],
    sources_by_handle: Mapping[int, Iterable[int]],
    members_by_handle: Mapping[int, Tuple[int, ...]],
) -> List[Group]:
    """Step-3 core: per-handle member rows → per-source groups.

    Each source's rows (across all handles it reached) are ORed into one
    row, then sources are regrouped by that row — overlapping handle
    answers materialise once, and each distinct row decodes once.
    """
    num_pairs = 0
    row_by_source: Dict[int, int] = {}
    for handle, handle_sources in sources_by_handle.items():
        reached_row = 0
        for member in members_by_handle[handle]:
            reached_row |= rows.get(member, 0)
        if not reached_row:
            continue
        for source in handle_sources:
            num_pairs += 1
            prev = row_by_source.get(source)
            row_by_source[source] = (
                reached_row if prev is None else prev | reached_row
            )
    by_row: Dict[int, List[int]] = {}
    for source, row in row_by_source.items():
        by_row.setdefault(row, []).append(source)
    registry = global_registry()
    if registry.enabled:
        registry.inc("dsr_step_sources_total", num_pairs, step="remote")
        registry.inc("dsr_step_groups_total", len(by_row), step="remote")
    return [(row_sources, vrank.unpack(row)) for row, row_sources in by_row.items()]


__all__ = [
    "Group",
    "build_member_masks",
    "condensation_rows",
    "local_step_groups",
    "remote_step_groups",
]
