"""Compound graphs ``G^C_i`` (Definition 6) and their query-time runtime.

The compound graph of partition ``G_i`` is the union of the local subgraph
with the boundary graph ``G^B_i``.  Theorem 1 of the paper shows that any
reachability question between two vertices of ``V_i`` can be answered on
``G^C_i`` alone; Theorem 2 shows that a cross-partition question needs only
one message from the source's slave to the target's slave.

Soundness / completeness of the label-free compression used here
-----------------------------------------------------------------

Every edge inserted into a compound graph corresponds to true reachability in
the global data graph (local edges and cut edges trivially; class-level edges
because all members of a forward class have identical local reachability over
``V_j \\ I_j`` plus the overlap, and all members of a backward class are
reached by identical vertex sets; member-level edges by construction), hence
any path found in ``G^C_i`` implies global reachability (**soundness**).

Conversely, take any global path and cut it into maximal segments that lie
inside a single partition.  Segments inside ``G_i`` are present verbatim;
segments inside a remote partition ``G_j`` lead from an in-boundary ``x`` to
an out-boundary ``y`` (or end at a boundary vertex) and are represented either
by the class-level path ``x → υ(x) → ν(y) → y`` (both endpoints outside the
overlap), by a member-level edge (any endpoint in the overlap, or an
in-boundary → in-boundary hop), and consecutive segments are joined by the cut
edges, which are present verbatim (**completeness**).

At query time local set-reachability is evaluated over the *SCC-condensed*
compound graph (as the paper does for all three local strategies), wrapped so
that callers keep using original vertex ids.  Both the condensation and the
traversal-based strategies run over CSR snapshots (:mod:`repro.graph.csr`):
:meth:`CondensedReachability.rebuild` condenses via the compound graph's
snapshot and pre-warms the condensation DAG's own snapshot, so the first
query after a build or maintenance flush pays no lazy CSR construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import weakref

from repro.core.boundary_graph import add_summary_to_graph
from repro.core.packed_steps import build_member_masks, condensation_rows
from repro.core.summary import PartitionSummary
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.reachability.base import ReachabilityIndex
from repro.reachability.factory import make_reachability_index
from repro.reachability.packed import VertexRank, handle_positions


@dataclass(frozen=True)
class _CondensedView:
    """One immutable condensation view (graph ranks, DAG, masks, strategy).

    :class:`CondensedReachability` publishes a complete view through a single
    attribute assignment so a :meth:`CondensedReachability.rebuild` racing a
    concurrent reader can never expose a new DAG with an old component map —
    readers grab the view once and work against that consistent tuple.

    ``vertex_rank`` is the stable per-epoch numbering of the underlying
    (compound) graph's vertices and ``dag_rank`` the numbering of the
    condensation's components; ``member_masks[c]`` packs the members of the
    component at DAG rank ``c`` as one row over ``vertex_rank``, so
    expanding a reached component to its member vertices is a single OR.
    """

    dag: DiGraph
    vertex_to_component: Dict[int, int]
    index: ReachabilityIndex
    vertex_rank: VertexRank
    dag_rank: VertexRank
    member_masks: Tuple[int, ...]


class CondensedReachability:
    """Set-reachability over the SCC-condensed view of a graph.

    Wraps any centralized strategy built over the condensation and translates
    between original vertex ids and component ids.
    """

    def __init__(self, graph: DiGraph, strategy: str = "dfs", **kwargs) -> None:
        self.graph = graph
        self.strategy = strategy
        self._kwargs = kwargs
        self.rebuild()

    def rebuild(self) -> None:
        dag, vertex_to_component = condense(self.graph)
        # Pre-warm the DAG's CSR snapshot: the traversal strategies would
        # otherwise build it lazily on the first query, charging one-off
        # construction cost to query latency instead of build time.  (The
        # label/closure indexes reach it anyway through their own internal
        # condensation, so this is never wasted work.)
        dag_csr = dag.csr()
        index = make_reachability_index(self.strategy, dag, **self._kwargs)
        # Packed-pipeline structures, frozen with the view: the stable
        # vertex/component rank numberings and the per-component member
        # masks used to expand component rows to member rows in one OR.
        vertex_rank = VertexRank.from_csr(self.graph.csr())
        dag_rank = VertexRank.from_csr(dag_csr)
        masks = build_member_masks(
            vertex_rank.ids, vertex_to_component, dag_rank.rank_of, len(dag_rank)
        )
        # Single atomic publication of the complete rebuilt view.
        self._view = _CondensedView(
            dag, vertex_to_component, index, vertex_rank, dag_rank, masks
        )

    # Legacy attribute access (read-only snapshots of the current view).
    @property
    def dag(self) -> DiGraph:
        return self._view.dag

    @property
    def vertex_to_component(self) -> Dict[int, int]:
        return self._view.vertex_to_component

    @property
    def vertex_rank(self) -> VertexRank:
        """The stable per-epoch rank numbering of the graph's vertices."""
        return self._view.vertex_rank

    def current_view(self) -> _CondensedView:
        """Capture the published condensation view (one consistent tuple).

        Packed query steps capture the view **once** and derive every rank,
        mask and row from it: the sanctioned in-place rebuild (an
        isolated-vertex insert) swaps in a view with a *shifted* rank
        numbering, and mixing pre-/post-swap reads within one step would
        AND masks against rows of a different numbering.
        """
        return self._view

    # -- queries -------------------------------------------------------- #
    def reachable(self, source: int, target: int) -> bool:
        view = self._view
        if source not in view.vertex_to_component or target not in view.vertex_to_component:
            return False
        return view.index.reachable(
            view.vertex_to_component[source], view.vertex_to_component[target]
        )

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        view = self._view
        vertex_to_component = view.vertex_to_component
        sources = list(sources)
        targets = list(targets)
        known_sources = [s for s in sources if s in vertex_to_component]
        known_targets = [t for t in targets if t in vertex_to_component]
        source_comps = {s: vertex_to_component[s] for s in known_sources}
        target_comps: Dict[int, List[int]] = {}
        for target in known_targets:
            target_comps.setdefault(vertex_to_component[target], []).append(target)

        comp_result = view.index.set_reachability(
            set(source_comps.values()), set(target_comps)
        )
        result: Dict[int, Set[int]] = {source: set() for source in sources}
        for source in known_sources:
            reached_comps = comp_result.get(source_comps[source], set())
            reached: Set[int] = set()
            for comp in reached_comps:
                reached.update(target_comps[comp])
            result[source] = reached
        return result

    def set_reachability_rows(
        self,
        sources: Iterable[int],
        target_mask: Optional[int] = None,
        view: Optional[_CondensedView] = None,
    ) -> Dict[int, int]:
        """Packed ``{source: row}`` over the graph's :attr:`vertex_rank`.

        The bits-native sibling of :meth:`set_reachability`: sources are
        translated to DAG components, the strategy returns packed component
        rows (natively for the bitset MS-BFS / CSR DFS, via the set↔bits
        bridge otherwise), and every reached component expands to its member
        vertices with one OR of the precomputed member mask — no per-vertex
        loops anywhere.  ``target_mask`` (a row over :attr:`vertex_rank`)
        restricts both the harvest and the expansion; ``None`` returns the
        full reachable rows.  Sources unknown to the graph get a zero row.
        ``view`` pins the evaluation to a previously captured
        :meth:`current_view` so callers that built their masks from it can
        never race an in-place rebuild.
        """
        if view is None:
            view = self._view
        return condensation_rows(
            sources,
            view.vertex_to_component,
            lambda comps, dag_mask: view.index.set_reachability_bits(
                comps, view.dag_rank, dag_mask
            ),
            view.member_masks,
            view.vertex_rank.ids,
            view.dag_rank.rank_of,
            target_mask,
        )

    # -- stats ---------------------------------------------------------- #
    @property
    def dag_num_edges(self) -> int:
        return self._view.dag.num_edges

    @property
    def dag_num_vertices(self) -> int:
        return self._view.dag.num_vertices


@dataclass
class CompoundGraph:
    """The compound graph of one partition plus its query-time helpers."""

    partition_id: int
    graph: DiGraph
    local_vertices: Set[int]
    # Entry handles of every *remote* partition, keyed by partition id.
    remote_forward_handles: Dict[int, Set[int]] = field(default_factory=dict)
    remote_backward_handles: Dict[int, Set[int]] = field(default_factory=dict)
    # Remote boundary vertices (real ids) present in this compound graph.
    remote_boundary_vertices: Set[int] = field(default_factory=set)
    # Local strategy evaluated over the condensed compound graph.
    reachability: Optional[CondensedReachability] = None
    # Packed handle masks, cached per VertexRank *object*: every rebuild —
    # including the sanctioned *in-place* one after an isolated-vertex
    # insert, which calls ``reachability.rebuild()`` without going through
    # this class — installs a fresh rank, so entries keyed by a retired
    # rank are unreachable (and garbage-collected with it) rather than
    # cleared-and-restamped, which a racing reader could re-poison.  Handle
    # *positions* are rank-independent (sorted handle ids) and never stale.
    _handle_masks: "weakref.WeakKeyDictionary" = field(
        default_factory=weakref.WeakKeyDictionary, init=False, repr=False
    )
    _handle_positions: Dict[int, Dict[int, int]] = field(
        default_factory=dict, init=False, repr=False
    )

    # ------------------------------------------------------------------ #
    def build_reachability(self, strategy: str = "dfs", **kwargs) -> None:
        """(Re)build the condensed local reachability strategy."""
        self.reachability = CondensedReachability(self.graph, strategy=strategy, **kwargs)

    def local_set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        """``localSetReachability(.)`` of Algorithms 1 and 2."""
        if self.reachability is None:
            self.build_reachability()
        return self.reachability.set_reachability(sources, targets)

    # -- packed-row pipeline -------------------------------------------- #
    @property
    def vertex_rank(self) -> VertexRank:
        """This compound graph's stable per-epoch vertex-rank numbering."""
        if self.reachability is None:
            self.build_reachability()
        return self.reachability.vertex_rank

    def local_set_reachability_rows(
        self,
        sources: Iterable[int],
        target_mask: Optional[int] = None,
        view: Optional[_CondensedView] = None,
    ) -> Dict[int, int]:
        """Packed-row ``localSetReachability(.)`` over :attr:`vertex_rank`.

        Pass a captured ``view`` (see
        :meth:`CondensedReachability.current_view`) when the target mask
        was packed from it, so the rows share its numbering.
        """
        if self.reachability is None:
            self.build_reachability()
        return self.reachability.set_reachability_rows(sources, target_mask, view)

    def condensation_view(self) -> "_CondensedView":
        """Capture the condensed view (building the reachability if needed)."""
        if self.reachability is None:
            self.build_reachability()
        return self.reachability.current_view()

    def pack_vertices(self, vertices: Iterable[int]) -> int:
        """Pack original vertex ids into a row over :attr:`vertex_rank`."""
        return self.vertex_rank.pack(vertices)

    def handle_mask_of(self, partition_id: int, rank: Optional[VertexRank] = None) -> int:
        """Partition ``partition_id``'s forward handles as one packed row.

        ``rank`` pins the mask to a captured view's numbering (defaults to
        the currently published one).  A concurrent in-place rebuild cannot
        poison the cache: entries are keyed by the rank object itself, and
        a redundant racing store writes the identical value.
        """
        if rank is None:
            rank = self.vertex_rank
        per_rank = self._handle_masks.get(rank)
        if per_rank is None:
            per_rank = {}
            self._handle_masks[rank] = per_rank
        mask = per_rank.get(partition_id)
        if mask is None:
            mask = rank.pack(self.forward_handles_of(partition_id))
            per_rank[partition_id] = mask
        return mask

    def handle_positions_of(self, partition_id: int) -> Dict[int, int]:
        """Map a remote partition's handle ids to canonical wire positions.

        Positions index the partition's sorted handle order (see
        :meth:`repro.core.summary.PartitionSummary.forward_handle_order`),
        which every slave derives identically from the broadcast summary —
        this is the numbering packed handle messages are addressed in.
        """
        positions = self._handle_positions.get(partition_id)
        if positions is None:
            positions = handle_positions(self.forward_handles_of(partition_id))
            self._handle_positions[partition_id] = positions
        return positions

    # -- size statistics (Table 2) --------------------------------------- #
    def original_num_edges(self) -> int:
        return self.graph.num_edges

    def dag_num_edges(self) -> int:
        if self.reachability is None:
            self.build_reachability()
        return self.reachability.dag_num_edges

    def estimated_bytes(self) -> int:
        """Rough storage footprint: 8 bytes per edge + 4 per vertex."""
        return 8 * self.graph.num_edges + 4 * self.graph.num_vertices

    def forward_handles_of(self, partition_id: int) -> Set[int]:
        return self.remote_forward_handles.get(partition_id, set())

    def all_forward_handles(self) -> Dict[int, Set[int]]:
        return self.remote_forward_handles


def build_compound_graph(
    partition_id: int,
    local_graph: DiGraph,
    summaries: Mapping[int, PartitionSummary],
    cut_edges: Iterable[Tuple[int, int]],
    local_strategy: str = "dfs",
    strategy_kwargs: Optional[dict] = None,
) -> CompoundGraph:
    """Assemble ``G^C_i`` from the local subgraph, remote summaries and cut."""
    graph = local_graph.copy()
    remote_forward: Dict[int, Set[int]] = {}
    remote_backward: Dict[int, Set[int]] = {}
    remote_boundary: Set[int] = set()

    for other_id, summary in summaries.items():
        if other_id == partition_id:
            continue
        add_summary_to_graph(graph, summary)
        remote_forward[other_id] = summary.forward_handles()
        remote_backward[other_id] = summary.backward_handles()
        remote_boundary |= summary.boundary_vertices

    for u, v in cut_edges:
        graph.add_edge(u, v)

    compound = CompoundGraph(
        partition_id=partition_id,
        graph=graph,
        local_vertices=set(local_graph.vertices()),
        remote_forward_handles=remote_forward,
        remote_backward_handles=remote_backward,
        remote_boundary_vertices=remote_boundary,
    )
    compound.build_reachability(local_strategy, **(strategy_kwargs or {}))
    return compound
