"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single currency of the observability layer
(:mod:`repro.obs`): every instrumented component — the query pipeline, the
incremental maintainer, the shard workers, the serving layer — records into a
:class:`MetricsRegistry`, and every exposition surface (``DSRService.stats()``,
the ``metrics`` admin request, ``repro-dsr stats``) reads one.

Three metric kinds, all label-aware:

* **counters** — monotonically increasing floats (``inc``);
* **gauges** — last-write-wins floats (``set_gauge``);
* **histograms** — fixed-bucket latency/size distributions (``observe``)
  with percentile *estimation* (linear interpolation inside the bucket the
  rank falls into).  Fixed buckets are what makes worker-side histograms
  mergeable: two histograms over the same edges merge by adding bucket
  counts, exactly like counters.

Process-awareness
-----------------
A registry is process-local.  Worker processes (``executor="processes"``)
record into their own registry and periodically ship a :class:`MetricsDelta`
— a picklable snapshot-and-reset of everything recorded since the last ship —
piggybacked on shard-task replies; the master merges deltas with
:meth:`MetricsRegistry.absorb`, the same fold-into-cumulative-totals pattern
as :meth:`repro.cluster.network.Network.absorb`.  Counters and histogram
buckets add; gauges are last-write-wins.

Cost
----
Recording is a dict update under one lock.  Hot paths guard every call with
the registry's :attr:`~MetricsRegistry.enabled` flag (one attribute read), so
a disabled registry costs a single branch per call site.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper edges (seconds): tuned for query/flush
#: latencies from sub-millisecond cache hits to multi-second maintenance.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A metric's identity: its name plus its sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render_key(key: MetricKey) -> str:
    """``name{label="value",...}`` — the Prometheus series notation."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{label}="{value}"' for label, value in labels)
    return f"{name}{{{inner}}}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(round(value, 9))


@dataclass
class _Histogram:
    """Bucket counts + sum for one histogram series (not thread-safe itself)."""

    buckets: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)  # len(buckets) + 1 (+Inf)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def merge(self, buckets: Sequence[float], counts: Sequence[int], total: float) -> None:
        if tuple(buckets) != self.buckets:
            # Mismatched edges cannot be merged bucket-wise; fold the other
            # side's mass into the overflow so counts/sums stay exact even if
            # the shape degrades (never silently drop observations).
            self.counts[-1] += sum(counts)
        else:
            for i, c in enumerate(counts):
                self.counts[i] += c
        self.total += total
        self.count += sum(counts)

    def percentile(self, percent: float) -> float:
        """Estimated percentile: linear interpolation inside the rank's bucket."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(percent / 100.0 * self.count))
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.buckets[-1] if self.buckets else 0.0


@dataclass
class MetricsDelta:
    """Picklable snapshot of one registry's state since the last collect.

    Shipped from worker processes to the master piggybacked on shard-task
    replies and folded in with :meth:`MetricsRegistry.absorb`.
    """

    counters: Dict[MetricKey, float] = field(default_factory=dict)
    gauges: Dict[MetricKey, float] = field(default_factory=dict)
    #: ``key -> (bucket_edges, bucket_counts, sum)``
    histograms: Dict[MetricKey, Tuple[Tuple[float, ...], Tuple[int, ...], float]] = field(
        default_factory=dict
    )

    @property
    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """Thread-safe, label-aware metric store with delta shipping."""

    def __init__(self, enabled: bool = True) -> None:
        #: One cheap flag guards every hot-path call site; flipping it off
        #: reduces instrumentation to a single branch per recording point.
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, _Histogram] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment a counter (creating the series at 0 if new)."""
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to ``value`` (last write wins, also across absorbs)."""
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> None:
        """Record one histogram observation."""
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = _Histogram(
                    buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
                )
                self._histograms[key] = histogram
            histogram.observe(value)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label combinations."""
        with self._lock:
            return sum(
                value for (series, _), value in (
                    ((k[0], k[1]), v) for k, v in self._counters.items()
                ) if series == name
            )

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_count(self, name: str, **labels: Any) -> int:
        with self._lock:
            histogram = self._histograms.get(_key(name, labels))
            return histogram.count if histogram is not None else 0

    def histogram_sum(self, name: str, **labels: Any) -> float:
        with self._lock:
            histogram = self._histograms.get(_key(name, labels))
            return histogram.total if histogram is not None else 0.0

    def percentile(self, name: str, percent: float, **labels: Any) -> float:
        """Estimated percentile of one histogram series (0.0 if unseen)."""
        with self._lock:
            histogram = self._histograms.get(_key(name, labels))
            return histogram.percentile(percent) if histogram is not None else 0.0

    # ------------------------------------------------------------------ #
    # delta shipping (worker → master)
    # ------------------------------------------------------------------ #
    def collect_delta(self) -> Optional[MetricsDelta]:
        """Snapshot-and-reset everything recorded since the last collect.

        Returns ``None`` when nothing was recorded, so callers piggybacking
        deltas on replies can skip the payload entirely.
        """
        with self._lock:
            if not (self._counters or self._gauges or self._histograms):
                return None
            delta = MetricsDelta(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: (h.buckets, tuple(h.counts), h.total)
                    for key, h in self._histograms.items()
                },
            )
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return delta

    def absorb(self, delta: MetricsDelta) -> None:
        """Fold a shipped delta into this registry (counters/buckets add)."""
        if delta is None or delta.is_empty:
            return
        with self._lock:
            for key, value in delta.counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            self._gauges.update(delta.gauges)
            for key, (buckets, counts, total) in delta.histograms.items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = _Histogram(buckets=tuple(buckets))
                    self._histograms[key] = histogram
                histogram.merge(buckets, counts, total)

    def reset(self) -> None:
        """Drop every recorded series (worker processes call this at start)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary: counters/gauges verbatim, histograms digested."""
        with self._lock:
            counters = {_render_key(k): v for k, v in sorted(self._counters.items())}
            gauges = {_render_key(k): v for k, v in sorted(self._gauges.items())}
            histograms = {
                _render_key(k): {
                    "count": h.count,
                    "sum": round(h.total, 9),
                    "p50": round(h.percentile(50), 9),
                    "p95": round(h.percentile(95), 9),
                    "p99": round(h.percentile(99), 9),
                }
                for k, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_prometheus(self) -> str:
        """Render every series in the Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            counter_names = sorted({k[0] for k in self._counters})
            for name in counter_names:
                lines.append(f"# TYPE {name} counter")
                for key in sorted(k for k in self._counters if k[0] == name):
                    lines.append(
                        f"{_render_key(key)} {_format_value(self._counters[key])}"
                    )
            gauge_names = sorted({k[0] for k in self._gauges})
            for name in gauge_names:
                lines.append(f"# TYPE {name} gauge")
                for key in sorted(k for k in self._gauges if k[0] == name):
                    lines.append(
                        f"{_render_key(key)} {_format_value(self._gauges[key])}"
                    )
            histogram_names = sorted({k[0] for k in self._histograms})
            for name in histogram_names:
                lines.append(f"# TYPE {name} histogram")
                for key in sorted(k for k in self._histograms if k[0] == name):
                    histogram = self._histograms[key]
                    _, labels = key
                    cumulative = 0
                    for i, edge in enumerate(histogram.buckets):
                        cumulative += histogram.counts[i]
                        bucket_key = (f"{name}_bucket", labels + (("le", repr(edge)),))
                        lines.append(f"{_render_key(bucket_key)} {cumulative}")
                    bucket_key = (f"{name}_bucket", labels + (("le", "+Inf"),))
                    lines.append(f"{_render_key(bucket_key)} {histogram.count}")
                    sum_key = (f"{name}_sum", labels)
                    count_key = (f"{name}_count", labels)
                    lines.append(f"{_render_key(sum_key)} {_format_value(histogram.total)}")
                    lines.append(f"{_render_key(count_key)} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricKey",
    "MetricsDelta",
    "MetricsRegistry",
]
