"""Process-global metrics registry and worker-side delta plumbing.

Every process — the master and each long-lived shard worker — owns exactly
one :class:`~repro.obs.registry.MetricsRegistry`, reached through
:func:`global_registry`.  Instrumented call sites all over the codebase
(``core.packed_steps``, ``core.shard_exec``, ``core.query``,
``core.updates``...) record into whatever registry is current, which gives
the process topology for free:

* in-process executors (serial / threads) record straight into the master's
  registry;
* forked shard workers call :func:`reset_for_worker` on startup (dropping
  the fork-inherited copy of the parent's state) and then record locally;
  after each task the worker ships
  :meth:`~repro.obs.registry.MetricsRegistry.collect_delta` piggybacked on
  its reply, and the parent folds it in with :func:`absorb_delta` — the
  same merge-at-master pattern as ``Network.absorb()``.

Tests swap in a private registry with :func:`use_registry` so totals are
isolated per test.  Note the swap is master-side only: already-running
worker processes keep shipping into whichever registry is current at the
moment their reply is absorbed, which is exactly what the exactness tests
want.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import MetricsDelta, MetricsRegistry

_global_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The current process-wide registry (hot path: one call + attr reads)."""
    return _global_registry


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope a (fresh by default) registry as the process-global one."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_global_registry(registry)
    try:
        yield registry
    finally:
        set_global_registry(previous)


# ---------------------------------------------------------------------- #
# worker-process plumbing
# ---------------------------------------------------------------------- #
def reset_for_worker() -> None:
    """Drop fork-inherited metric state (worker main calls this once).

    Without the reset a forked worker would ship the parent's pre-fork
    totals back as its own delta and every metric would double-count.
    """
    _global_registry.reset()


def collect_worker_delta() -> Optional[MetricsDelta]:
    """Snapshot-and-reset this worker's registry for piggybacked shipping."""
    return _global_registry.collect_delta()


def absorb_delta(delta: Optional[MetricsDelta]) -> None:
    """Master side: fold a worker's shipped delta into the current registry."""
    if delta is not None:
        _global_registry.absorb(delta)


__all__ = [
    "absorb_delta",
    "collect_worker_delta",
    "global_registry",
    "reset_for_worker",
    "set_global_registry",
    "use_registry",
]
