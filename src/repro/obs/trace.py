"""Structured per-query tracing: a flat list of timed spans.

A :class:`QueryTrace` is created when a query carries
``ReachQuery(trace=True)`` and travels with the query through the service
and engine layers, collecting :class:`Span` records for every stage the
paper's cost model distinguishes: cache lookup, planning + representation
choice, the three DSR steps (step 1 local evaluation, the single bridge
exchange, step 3 remote resolution), per-partition shard-task wall-clock,
payload bytes, and ``StaleEpochError`` retries.

The model is deliberately flat — spans carry a name, a duration, an offset
from the trace origin, and free-form attributes — because the DSR pipeline
is a short fixed-shape DAG, not an arbitrary call tree.  Nesting is encoded
with dotted names (``batch0.step1.shard``), which keeps the wire format a
plain list of dicts that any protocol version can carry opaquely.

Traces serialise with :meth:`QueryTrace.to_dict` / :meth:`from_dict` so
they round-trip through the JSON wire protocol on
``QueryResponse.trace``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed (or instant) stage of a traced query."""

    name: str
    #: Wall-clock duration; 0.0 for instant events.
    seconds: float = 0.0
    #: Start offset relative to the trace origin.
    offset_seconds: float = 0.0
    #: Free-form JSON-safe details (partition ids, byte counts, epochs...).
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 9),
            "offset_seconds": round(self.offset_seconds, 9),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=str(payload.get("name", "")),
            seconds=float(payload.get("seconds", 0.0)),
            offset_seconds=float(payload.get("offset_seconds", 0.0)),
            attrs=dict(payload.get("attrs", {}) or {}),
        )


class QueryTrace:
    """Ordered collection of spans for one query execution.

    Not thread-safe: a trace belongs to exactly one query, and the service
    executes a query's batches sequentially on one worker thread.
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self.spans: List[Span] = []
        #: Trace-level attributes (chosen representation, direction, epoch...).
        self.attrs: Dict[str, Any] = {}

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Time a block; the span is appended when the block exits."""
        start = time.perf_counter()
        span = Span(name=name, offset_seconds=start - self._origin, attrs=dict(attrs))
        try:
            yield span
        finally:
            span.seconds = time.perf_counter() - start
            self.spans.append(span)

    def add(self, name: str, seconds: float = 0.0, **attrs: Any) -> Span:
        """Append a pre-measured span (e.g. a worker's self-reported time)."""
        span = Span(
            name=name,
            seconds=seconds,
            offset_seconds=time.perf_counter() - self._origin,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def event(self, name: str, **attrs: Any) -> Span:
        """Append an instant (zero-duration) marker, e.g. a stale-epoch retry."""
        return self.add(name, 0.0, **attrs)

    def merge_child(self, child: "QueryTrace", prefix: str = "", **attrs: Any) -> None:
        """Fold a child trace's spans in, optionally renamed/annotated.

        The service uses this to splice each batch's engine-level trace into
        the request-level trace (``prefix="batch0."`` etc.).
        """
        for span in child.spans:
            merged = Span(
                name=prefix + span.name,
                seconds=span.seconds,
                offset_seconds=span.offset_seconds,
                attrs={**span.attrs, **attrs},
            )
            self.spans.append(merged)
        for key, value in child.attrs.items():
            self.attrs.setdefault(key, value)

    # ------------------------------------------------------------------ #
    # lookup helpers (used heavily by tests)
    # ------------------------------------------------------------------ #
    def find(self, name: str) -> Optional[Span]:
        """First span with exactly this name, or ``None``."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List[Span]:
        """Every span whose name equals ``name`` or starts with ``name.``."""
        return [
            span
            for span in self.spans
            if span.name == name or span.name.startswith(name + ".")
        ]

    def total_seconds(self) -> float:
        return time.perf_counter() - self._origin

    # ------------------------------------------------------------------ #
    # wire form
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "attrs": dict(self.attrs),
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryTrace":
        trace = cls()
        trace.attrs = dict(payload.get("attrs", {}) or {})
        trace.spans = [Span.from_dict(item) for item in payload.get("spans", []) or []]
        return trace

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTrace(spans={[s.name for s in self.spans]!r})"


__all__ = ["QueryTrace", "Span"]
