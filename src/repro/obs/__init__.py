"""Cross-layer observability: metrics registry, query tracing, exposition.

See ``docs/OBSERVABILITY.md`` for the metric catalog, the trace span
glossary and the exposition format.
"""

from repro.obs.registry import DEFAULT_BUCKETS, MetricsDelta, MetricsRegistry
from repro.obs.runtime import (
    absorb_delta,
    collect_worker_delta,
    global_registry,
    reset_for_worker,
    set_global_registry,
    use_registry,
)
from repro.obs.trace import QueryTrace, Span

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsDelta",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "absorb_delta",
    "collect_worker_delta",
    "global_registry",
    "reset_for_worker",
    "set_global_registry",
    "use_registry",
]
