"""Property-path query processing backed by DSR (Section 4.5-A).

The evaluation strategy mirrors how the paper augments its distributed RDF
store: the non-path triple patterns of a query are evaluated with ordinary
index-nested-loop joins over the triple store, which yields candidate bindings
for the variables at both ends of every property path; each path pattern then
becomes a *set-reachability* query — the candidate subjects as ``S``, the
candidate objects as ``T`` — answered by a :class:`~repro.core.engine.DSREngine`
built once over the predicate's subgraph and reused across queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.api import Backend, DSRConfig, ReachQuery, open_engine
from repro.sparql.parser import ParsedQuery, TriplePattern, is_variable, parse_query
from repro.sparql.rdf import TripleStore

Binding = Dict[str, int]
PathResolver = Callable[[str, Set[int], Set[int]], Set[Tuple[int, int]]]


@dataclass
class SparqlResult:
    """Query answer: variable bindings plus timing information."""

    variables: Tuple[str, ...]
    bindings: List[Binding]
    seconds: float
    path_pairs_checked: int = 0

    @property
    def num_results(self) -> int:
        return len(self.bindings)

    def decoded(self, store: TripleStore) -> List[Dict[str, str]]:
        """Return the bindings with term ids decoded back to strings."""
        return [
            {variable: store.decode(value) for variable, value in binding.items()}
            for binding in self.bindings
        ]


class BasicGraphPatternEvaluator:
    """Index-nested-loop evaluation of the non-path patterns of a query."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    # ------------------------------------------------------------------ #
    def evaluate(self, query: ParsedQuery, path_resolver: PathResolver) -> Tuple[List[Binding], int]:
        """Evaluate ``query``; path patterns are delegated to ``path_resolver``.

        Returns ``(bindings, pairs_checked)`` where ``pairs_checked`` counts the
        candidate (source, target) combinations handed to the path resolver —
        a rough measure of the reachability work a non-indexed engine would do.
        """
        bindings: List[Binding] = [{}]
        ordered = self._order_patterns(query)
        pairs_checked = 0
        for pattern in ordered:
            if not bindings:
                break
            if pattern.transitive:
                bindings, checked = self._apply_path_pattern(pattern, bindings, path_resolver)
                pairs_checked += checked
            else:
                bindings = self._apply_flat_pattern(pattern, bindings)
        return bindings, pairs_checked

    # ------------------------------------------------------------------ #
    def _order_patterns(self, query: ParsedQuery) -> List[TriplePattern]:
        """Flat patterns first (most selective first), then path patterns."""

        def selectivity(pattern: TriplePattern) -> int:
            constants = sum(
                0 if is_variable(term) else 1 for term in (pattern.subject, pattern.obj)
            )
            return -constants

        flat = sorted(query.flat_patterns, key=selectivity)
        return flat + list(query.path_patterns)

    def _term_candidates(self, term: str, binding: Binding) -> Optional[int]:
        """Resolve a term under a binding: id, or None when still unbound."""
        if is_variable(term):
            return binding.get(term)
        return self.store.lookup(term)

    def _apply_flat_pattern(
        self, pattern: TriplePattern, bindings: List[Binding]
    ) -> List[Binding]:
        predicate_id = self.store.lookup(pattern.predicate)
        if predicate_id is None:
            return []
        result: List[Binding] = []
        for binding in bindings:
            subject_value = self._term_candidates(pattern.subject, binding)
            object_value = self._term_candidates(pattern.obj, binding)
            if not is_variable(pattern.subject) and subject_value is None:
                continue
            if not is_variable(pattern.obj) and object_value is None:
                continue

            if subject_value is not None and object_value is not None:
                if object_value in self.store.objects(subject_value, predicate_id):
                    result.append(binding)
            elif subject_value is not None:
                for candidate in self.store.objects(subject_value, predicate_id):
                    extended = dict(binding)
                    extended[pattern.obj] = candidate
                    result.append(extended)
            elif object_value is not None:
                for candidate in self.store.subjects(predicate_id, object_value):
                    extended = dict(binding)
                    extended[pattern.subject] = candidate
                    result.append(extended)
            else:
                for subject_id, object_id in self.store.subject_object_pairs(predicate_id):
                    extended = dict(binding)
                    extended[pattern.subject] = subject_id
                    extended[pattern.obj] = object_id
                    result.append(extended)
        return result

    def _apply_path_pattern(
        self,
        pattern: TriplePattern,
        bindings: List[Binding],
        path_resolver: PathResolver,
    ) -> Tuple[List[Binding], int]:
        """Filter/extend bindings through a ``predicate*`` reachability join."""
        graph = self.store.predicate_graph(pattern.predicate)
        graph_vertices = set(graph.vertices())

        sources: Set[int] = set()
        targets: Set[int] = set()
        unbound_object = False
        for binding in bindings:
            subject_value = self._term_candidates(pattern.subject, binding)
            object_value = self._term_candidates(pattern.obj, binding)
            if subject_value is not None:
                sources.add(subject_value)
            if object_value is not None:
                targets.add(object_value)
            elif is_variable(pattern.obj):
                unbound_object = True
        if unbound_object:
            # The object variable is unconstrained elsewhere: every vertex of
            # the predicate graph (plus the sources, for zero-length paths) is
            # a candidate target.
            targets |= graph_vertices | sources

        restricted_sources = sources & graph_vertices
        restricted_targets = targets & graph_vertices
        reachable = path_resolver(pattern.predicate, restricted_sources, restricted_targets)
        pairs_checked = len(restricted_sources) * len(restricted_targets)

        def holds(source: int, target: int) -> bool:
            if source == target:
                return True  # zero-or-more path: zero steps
            return (source, target) in reachable

        result: List[Binding] = []
        for binding in bindings:
            subject_value = self._term_candidates(pattern.subject, binding)
            object_value = self._term_candidates(pattern.obj, binding)
            if subject_value is None:
                # Unbound path subjects do not occur in the benchmark queries;
                # fall back to checking every graph vertex as a source.
                subject_candidates = sorted(graph_vertices)
            else:
                subject_candidates = [subject_value]
            for source in subject_candidates:
                if object_value is not None:
                    if holds(source, object_value):
                        extended = dict(binding)
                        if is_variable(pattern.subject):
                            extended[pattern.subject] = source
                        result.append(extended)
                else:
                    candidate_targets = {t for s, t in reachable if s == source}
                    candidate_targets.add(source)
                    for target in sorted(candidate_targets):
                        extended = dict(binding)
                        if is_variable(pattern.subject):
                            extended[pattern.subject] = source
                        extended[pattern.obj] = target
                        result.append(extended)
        return result, pairs_checked


class PropertyPathEngine:
    """SPARQL property paths evaluated through a set-reachability backend.

    Each predicate's subgraph gets its own engine, opened through the
    :mod:`repro.api` backend registry from one shared
    :class:`~repro.api.config.DSRConfig` — so property paths can run over the
    distributed DSR index (the default) or any other registered backend.
    """

    def __init__(
        self,
        store: TripleStore,
        num_slaves: int = 4,
        partitioner: str = "metis",
        local_index: str = "msbfs",
        use_equivalence: bool = True,
        backend: str = "dsr",
    ) -> None:
        self.store = store
        self.config = DSRConfig(
            backend=backend,
            num_partitions=num_slaves,
            partitioner=partitioner,
            local_index=local_index,
            use_equivalence=use_equivalence,
        )
        self._evaluator = BasicGraphPatternEvaluator(store)
        self._engines: Dict[str, Optional[Backend]] = {}

    @property
    def num_slaves(self) -> int:
        return self.config.num_partitions

    # ------------------------------------------------------------------ #
    def _engine_for(self, predicate: str) -> Optional[Backend]:
        """Open (once) and cache the backend of one predicate graph."""
        if predicate in self._engines:
            return self._engines[predicate]
        graph = self.store.predicate_graph(predicate)
        if graph.num_vertices == 0:
            self._engines[predicate] = None
            return None
        partitions = max(1, min(self.config.num_partitions, graph.num_vertices))
        engine = open_engine(graph, self.config.replace(num_partitions=partitions))
        self._engines[predicate] = engine
        return engine

    def _resolve_path(
        self, predicate: str, sources: Set[int], targets: Set[int]
    ) -> Set[Tuple[int, int]]:
        if not sources or not targets:
            return set()
        engine = self._engine_for(predicate)
        if engine is None:
            return set()
        return engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs

    # ------------------------------------------------------------------ #
    def execute(self, query_text: str) -> SparqlResult:
        """Parse and evaluate one query."""
        query = parse_query(query_text)
        start = time.perf_counter()
        bindings, pairs_checked = self._evaluator.evaluate(query, self._resolve_path)
        elapsed = time.perf_counter() - start
        return SparqlResult(
            variables=query.variables,
            bindings=bindings,
            seconds=elapsed,
            path_pairs_checked=pairs_checked,
        )

    def warm_up(self, query_text: str) -> None:
        """Pre-build the DSR indexes used by ``query_text`` (not timed)."""
        query = parse_query(query_text)
        for pattern in query.path_patterns:
            self._engine_for(pattern.predicate)
