"""LUBM-like RDF data generator.

The Lehigh University Benchmark (UBA generator) produces universities composed
of departments, which contain research groups; professors head departments and
work for them, students are members of departments.  The paper's L1–L3 queries
only exercise the organisational hierarchy (``ub:subOrganizationOf*``), the
``ub:headOf`` relation and ``rdf:type`` constraints, so the generator below
produces exactly that shape — sparse, almost acyclic, with long containment
chains — at a configurable scale.
"""

from __future__ import annotations

import random
from typing import List, Tuple

Triple = Tuple[str, str, str]

RDF_TYPE = "rdf:type"
SUB_ORGANIZATION_OF = "ub:subOrganizationOf"
HEAD_OF = "ub:headOf"
WORKS_FOR = "ub:worksFor"
MEMBER_OF = "ub:memberOf"
UNIVERSITY = "ub:University"
DEPARTMENT = "ub:Department"
RESEARCH_GROUP = "ub:ResearchGroup"
FULL_PROFESSOR = "ub:FullProfessor"
GRADUATE_STUDENT = "ub:GraduateStudent"


def generate_lubm_triples(
    num_universities: int = 5,
    departments_per_university: int = 6,
    groups_per_department: int = 4,
    students_per_department: int = 8,
    seed: int = 0,
) -> List[Triple]:
    """Generate a deterministic LUBM-like triple list."""
    rng = random.Random(seed)
    triples: List[Triple] = []

    for u in range(num_universities):
        university = f"univ{u}"
        triples.append((university, RDF_TYPE, UNIVERSITY))
        for d in range(departments_per_university):
            department = f"univ{u}.dept{d}"
            triples.append((department, RDF_TYPE, DEPARTMENT))
            triples.append((department, SUB_ORGANIZATION_OF, university))

            professor = f"univ{u}.dept{d}.prof0"
            triples.append((professor, RDF_TYPE, FULL_PROFESSOR))
            triples.append((professor, HEAD_OF, department))
            triples.append((professor, WORKS_FOR, department))

            for g in range(groups_per_department):
                group = f"univ{u}.dept{d}.group{g}"
                triples.append((group, RDF_TYPE, RESEARCH_GROUP))
                triples.append((group, SUB_ORGANIZATION_OF, department))
                # A fraction of research groups are nested one level deeper,
                # giving the hierarchy chains of length three and more.
                if g > 0 and rng.random() < 0.3:
                    parent_group = f"univ{u}.dept{d}.group{g - 1}"
                    triples.append((group, SUB_ORGANIZATION_OF, parent_group))

            for s in range(students_per_department):
                student = f"univ{u}.dept{d}.student{s}"
                triples.append((student, RDF_TYPE, GRADUATE_STUDENT))
                triples.append((student, MEMBER_OF, department))
    return triples


def lubm_queries() -> dict:
    """The paper's L1–L3 property-path queries (Appendix 8.3.A)."""
    return {
        "L1": (
            "SELECT * WHERE { "
            "?x rdf:type ub:ResearchGroup . "
            "?x ub:subOrganizationOf* ?y . "
            "?y rdf:type ub:University . }"
        ),
        "L2": (
            "SELECT * WHERE { "
            "?x rdf:type ub:FullProfessor . "
            "?x ub:headOf ?d . "
            "?d ub:subOrganizationOf* ?y . "
            "?y rdf:type ub:University . }"
        ),
        "L3": (
            "SELECT * WHERE { "
            "?r1 rdf:type ub:ResearchGroup . "
            "?r1 ub:subOrganizationOf* ?y . "
            "?y rdf:type ub:University . "
            "?r2 rdf:type ub:ResearchGroup . "
            "?r2 ub:subOrganizationOf* ?y . }"
        ),
    }
