"""SPARQL 1.1 property paths over DSR (Section 4.5-A).

The paper augments a distributed RDF store with the DSR index so that property
paths (``ub:subOrganizationOf*`` and friends) are answered as set-reachability
queries over the predicate's subgraph.  This package provides the complete
substrate in miniature:

* :mod:`repro.sparql.rdf` — an in-memory triple store with dictionary encoding
  and SPO/POS/OSP indexes.
* :mod:`repro.sparql.lubm` / :mod:`repro.sparql.freebase_like` — deterministic
  generators for LUBM-like and Freebase-like RDF data.
* :mod:`repro.sparql.parser` — a small parser for the SPARQL subset used by the
  paper's queries (basic graph patterns plus ``predicate*`` paths).
* :mod:`repro.sparql.engine` — the query processor that evaluates property
  paths through a :class:`~repro.core.engine.DSREngine`.
* :mod:`repro.sparql.baseline` — a Virtuoso-like baseline that evaluates paths
  with per-binding transitive traversals (cold) or memoised traversals (warm).
"""

from repro.sparql.baseline import VirtuosoLikeEngine
from repro.sparql.engine import PropertyPathEngine
from repro.sparql.parser import ParsedQuery, TriplePattern, parse_query
from repro.sparql.rdf import TripleStore

__all__ = [
    "TripleStore",
    "TriplePattern",
    "ParsedQuery",
    "parse_query",
    "PropertyPathEngine",
    "VirtuosoLikeEngine",
]
