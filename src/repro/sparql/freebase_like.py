"""Freebase-like RDF data generator.

The paper's F1–F3 queries touch the Freebase location-containment hierarchy
(``fb:location.location.containedby*``), birth places of people, awards and
sibling relations.  This generator produces a miniature entity graph with the
same shape: countries containing states containing cities, people born in
cities, a subset of award winners, presidents and sibling chains.
"""

from __future__ import annotations

import random
from typing import List, Tuple

Triple = Tuple[str, str, str]

RDF_TYPE = "rdf:type"
PLACE_OF_BIRTH = "fb:people.person.place_of_birth"
CONTAINED_BY = "fb:location.location.containedby"
CONTAINS = "fb:location.location.contains"
AWARDS_WON = "fb:award.award_winner.awards_won"
AWARD_CEREMONY = "fb:award.award_honor.ceremony"
SIBLING = "fb:people.person.sibling_s"
US_PRESIDENT = "fb:government.us_president"
PERSON = "fb:people.person"
CITY = "fb:location.citytown"
STATE = "fb:location.administrative_division"
COUNTRY = "fb:location.country"
AWARD = "fb:award.award"


def generate_freebase_triples(
    num_countries: int = 3,
    states_per_country: int = 5,
    cities_per_state: int = 6,
    people_per_city: int = 4,
    num_awards: int = 10,
    seed: int = 0,
) -> List[Triple]:
    """Generate a deterministic Freebase-like triple list."""
    rng = random.Random(seed)
    triples: List[Triple] = []
    awards = [f"award{a}" for a in range(num_awards)]
    ceremonies = [f"ceremony{a}" for a in range(num_awards)]
    for award, ceremony in zip(awards, ceremonies):
        triples.append((award, RDF_TYPE, AWARD))
        triples.append((award, AWARD_CEREMONY, ceremony))

    people: List[str] = []
    for c in range(num_countries):
        country = f"country{c}"
        triples.append((country, RDF_TYPE, COUNTRY))
        for s in range(states_per_country):
            state = f"country{c}.state{s}"
            triples.append((state, RDF_TYPE, STATE))
            triples.append((state, CONTAINED_BY, country))
            triples.append((country, CONTAINS, state))
            for t in range(cities_per_state):
                city = f"country{c}.state{s}.city{t}"
                triples.append((city, RDF_TYPE, CITY))
                triples.append((city, CONTAINED_BY, state))
                triples.append((state, CONTAINS, city))
                # Some cities contain districts, extending the chain.
                if rng.random() < 0.3:
                    district = f"{city}.district"
                    triples.append((district, RDF_TYPE, CITY))
                    triples.append((district, CONTAINED_BY, city))
                    triples.append((city, CONTAINS, district))
                for p in range(people_per_city):
                    person = f"country{c}.state{s}.city{t}.person{p}"
                    people.append(person)
                    triples.append((person, RDF_TYPE, PERSON))
                    triples.append((person, PLACE_OF_BIRTH, city))
                    if rng.random() < 0.4:
                        triples.append((person, AWARDS_WON, rng.choice(awards)))
                    if rng.random() < 0.05:
                        triples.append((person, RDF_TYPE, US_PRESIDENT))

    # Sibling chains among randomly chosen people.
    for _ in range(max(1, len(people) // 5)):
        left = rng.choice(people)
        right = rng.choice(people)
        if left != right:
            triples.append((left, SIBLING, right))
            triples.append((right, SIBLING, left))
    return triples


def freebase_queries() -> dict:
    """The paper's F1–F3 property-path queries (Appendix 8.3.B)."""
    return {
        "F1": (
            "SELECT * WHERE { "
            "?p fb:people.person.place_of_birth ?city . "
            "?city fb:location.location.containedby* ?state . "
            "?country fb:location.location.contains ?state . }"
        ),
        "F2": (
            "SELECT * WHERE { "
            "?p fb:people.person.place_of_birth ?city . "
            "?city fb:location.location.containedby* ?state . "
            "?country fb:location.location.contains ?state . "
            "?p fb:award.award_winner.awards_won ?prize . "
            "?p rdf:type fb:government.us_president . }"
        ),
        "F3": (
            "SELECT * WHERE { "
            "?p fb:award.award_winner.awards_won ?prize . "
            "?prize rdf:type* ?z . "
            "?z fb:award.award_honor.ceremony ?c . "
            "?p fb:people.person.sibling_s* ?p1 . "
            "?p1 fb:award.award_winner.awards_won ?prize . }"
        ),
    }
