"""A Virtuoso-like baseline for property-path evaluation (Table 6).

Virtuoso evaluates transitive property paths with per-binding transitive
traversals of the underlying relation rather than a precomputed reachability
index.  The baseline below reproduces that behaviour on our triple store:

* **cold** mode re-runs a BFS from every candidate source each time a path
  pattern is evaluated;
* **warm** mode memoises the reachable set per (predicate, source) across
  queries, imitating Virtuoso's warmed caches in the paper's "warm" runs.

The surrounding basic-graph-pattern machinery is shared with the DSR-backed
engine so the two differ only in how reachability is resolved.
"""

from __future__ import annotations

import time
from typing import Dict, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_reachable_set
from repro.sparql.engine import BasicGraphPatternEvaluator, SparqlResult
from repro.sparql.parser import parse_query
from repro.sparql.rdf import TripleStore


class VirtuosoLikeEngine:
    """Property paths via online transitive traversal (no DSR index)."""

    def __init__(self, store: TripleStore, warm: bool = False) -> None:
        self.store = store
        self.warm = warm
        self._evaluator = BasicGraphPatternEvaluator(store)
        self._graphs: Dict[str, DiGraph] = {}
        self._memo: Dict[Tuple[str, int], Set[int]] = {}

    # ------------------------------------------------------------------ #
    def _graph_for(self, predicate: str) -> DiGraph:
        if predicate not in self._graphs:
            self._graphs[predicate] = self.store.predicate_graph(predicate)
        return self._graphs[predicate]

    def _reachable_from(self, predicate: str, source: int) -> Set[int]:
        key = (predicate, source)
        if self.warm and key in self._memo:
            return self._memo[key]
        graph = self._graph_for(predicate)
        if not graph.has_vertex(source):
            reached: Set[int] = {source}
        else:
            reached = bfs_reachable_set(graph, source)
        if self.warm:
            self._memo[key] = reached
        return reached

    def _resolve_path(
        self, predicate: str, sources: Set[int], targets: Set[int]
    ) -> Set[Tuple[int, int]]:
        pairs: Set[Tuple[int, int]] = set()
        for source in sources:
            reached = self._reachable_from(predicate, source)
            for target in targets & reached:
                pairs.add((source, target))
        return pairs

    # ------------------------------------------------------------------ #
    def execute(self, query_text: str) -> SparqlResult:
        query = parse_query(query_text)
        start = time.perf_counter()
        bindings, pairs_checked = self._evaluator.evaluate(query, self._resolve_path)
        elapsed = time.perf_counter() - start
        return SparqlResult(
            variables=query.variables,
            bindings=bindings,
            seconds=elapsed,
            path_pairs_checked=pairs_checked,
        )

    def clear_caches(self) -> None:
        """Drop memoised reachability (turns a warm engine cold again)."""
        self._memo.clear()
