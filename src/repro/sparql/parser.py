"""Parser for the SPARQL subset used by the paper's benchmark queries.

Supported grammar (whitespace-insensitive)::

    [@prefix declarations are ignored]
    SELECT * WHERE { pattern . pattern . ... }
    pattern := term term term
    term    := ?variable | prefixed-name-or-IRI

A predicate ending in ``*`` denotes a SPARQL 1.1 property path with the
zero-or-more modifier — exactly the construct the paper maps onto DSR queries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple


class SparqlSyntaxError(Exception):
    """Raised when a query does not conform to the supported subset."""


@dataclass(frozen=True)
class TriplePattern:
    """One triple pattern; ``transitive`` marks a ``predicate*`` path."""

    subject: str
    predicate: str
    obj: str
    transitive: bool = False

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(
            term for term in (self.subject, self.predicate, self.obj) if is_variable(term)
        )


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed ``SELECT * WHERE {...}`` query."""

    patterns: Tuple[TriplePattern, ...]

    @property
    def variables(self) -> Tuple[str, ...]:
        seen = []
        for pattern in self.patterns:
            for variable in pattern.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def path_patterns(self) -> Tuple[TriplePattern, ...]:
        return tuple(p for p in self.patterns if p.transitive)

    @property
    def flat_patterns(self) -> Tuple[TriplePattern, ...]:
        return tuple(p for p in self.patterns if not p.transitive)


def is_variable(term: str) -> bool:
    return term.startswith("?")


_WHERE_RE = re.compile(r"select\s+\*\s+where\s*\{(.*)\}\s*$", re.IGNORECASE | re.DOTALL)


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string into a :class:`ParsedQuery`."""
    # Strip @prefix declarations (they are informational in our term model).
    lines = [
        line
        for line in text.strip().splitlines()
        if not line.strip().lower().startswith("@prefix")
    ]
    body = " ".join(lines)
    match = _WHERE_RE.search(body)
    if not match:
        raise SparqlSyntaxError("expected 'SELECT * WHERE { ... }'")
    inner = match.group(1).strip()
    if not inner:
        raise SparqlSyntaxError("empty graph pattern")

    # Patterns are separated by stand-alone "." tokens.  IRIs such as
    # ``fb:location.location.containedby`` contain dots themselves, so the
    # separator must be a whitespace-delimited dot, never a substring split.
    groups: List[List[str]] = [[]]
    for token in inner.split():
        if token == ".":
            if groups[-1]:
                groups.append([])
            continue
        groups[-1].append(token)
    if groups and not groups[-1]:
        groups.pop()

    patterns: List[TriplePattern] = []
    for tokens in groups:
        if len(tokens) != 3:
            raise SparqlSyntaxError(f"malformed triple pattern: {' '.join(tokens)!r}")
        subject, predicate, obj = tokens
        transitive = predicate.endswith("*")
        if transitive:
            predicate = predicate[:-1]
        if not predicate:
            raise SparqlSyntaxError(f"empty predicate in pattern: {raw!r}")
        if is_variable(predicate):
            raise SparqlSyntaxError("variable predicates are not supported")
        patterns.append(TriplePattern(subject, predicate, obj, transitive))
    if not patterns:
        raise SparqlSyntaxError("no triple patterns found")
    return ParsedQuery(patterns=tuple(patterns))
