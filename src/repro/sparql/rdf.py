"""A small in-memory RDF triple store.

Terms (IRIs / literals, represented as plain strings) are dictionary-encoded
to dense integer ids; triples are kept in three hash indexes (SPO, POS, OSP)
so that every triple-pattern access path used by the query engine is a direct
lookup.  The store can project any predicate into a directed graph over the
encoded entity ids, which is what the DSR-backed property-path evaluation
operates on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.digraph import DiGraph

Triple = Tuple[str, str, str]


class TripleStore:
    """Dictionary-encoded triple store with SPO/POS/OSP indexes."""

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        # spo[s][p] = set of o;  pos[p][o] = set of s;  osp[o][s] = set of p
        self._spo: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
        self._num_triples = 0

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def encode(self, term: str) -> int:
        """Return (allocating if needed) the integer id of ``term``."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        return term_id

    def lookup(self, term: str) -> Optional[int]:
        """Return the id of ``term`` or ``None`` if it has never been seen."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> str:
        return self._id_to_term[term_id]

    @property
    def num_terms(self) -> int:
        return len(self._id_to_term)

    @property
    def num_triples(self) -> int:
        return self._num_triples

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Add one triple; returns ``True`` if it was new."""
        s = self.encode(subject)
        p = self.encode(predicate)
        o = self.encode(obj)
        if o in self._spo[s][p]:
            return False
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._num_triples += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        added = 0
        for subject, predicate, obj in triples:
            if self.add(subject, predicate, obj):
                added += 1
        return added

    # ------------------------------------------------------------------ #
    # access paths (ids)
    # ------------------------------------------------------------------ #
    def objects(self, subject_id: int, predicate_id: int) -> Set[int]:
        return self._spo.get(subject_id, {}).get(predicate_id, set())

    def subjects(self, predicate_id: int, object_id: int) -> Set[int]:
        return self._pos.get(predicate_id, {}).get(object_id, set())

    def subject_object_pairs(self, predicate_id: int) -> Iterator[Tuple[int, int]]:
        """All ``(s, o)`` pairs of one predicate."""
        for object_id, subject_ids in self._pos.get(predicate_id, {}).items():
            for subject_id in subject_ids:
                yield subject_id, object_id

    def subjects_of_predicate(self, predicate_id: int) -> Set[int]:
        return {s for s, _ in self.subject_object_pairs(predicate_id)}

    def objects_of_predicate(self, predicate_id: int) -> Set[int]:
        return set(self._pos.get(predicate_id, {}).keys())

    def triples(self) -> Iterator[Triple]:
        """Iterate over all triples as term strings."""
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield (self.decode(s), self.decode(p), self.decode(o))

    # ------------------------------------------------------------------ #
    # entities by type (the ``rdf:type`` shortcut used by every benchmark query)
    # ------------------------------------------------------------------ #
    def entities_of_type(self, type_term: str, type_predicate: str = "rdf:type") -> Set[int]:
        predicate_id = self.lookup(type_predicate)
        type_id = self.lookup(type_term)
        if predicate_id is None or type_id is None:
            return set()
        return set(self._pos.get(predicate_id, {}).get(type_id, set()))

    # ------------------------------------------------------------------ #
    # graph projection
    # ------------------------------------------------------------------ #
    def predicate_graph(self, predicate: str) -> DiGraph:
        """Project one predicate into a directed graph over entity ids.

        Every entity that appears as subject or object of the predicate
        becomes a vertex; an edge ``s → o`` is added for every triple
        ``(s, predicate, o)``.
        """
        graph = DiGraph()
        predicate_id = self.lookup(predicate)
        if predicate_id is None:
            return graph
        for subject_id, object_id in self.subject_object_pairs(predicate_id):
            graph.add_edge(subject_id, object_id)
        return graph

    def entity_graph(self, predicates: Optional[Iterable[str]] = None) -> DiGraph:
        """Project several predicates (default: all) into one directed graph."""
        graph = DiGraph()
        if predicates is None:
            predicate_ids = list(self._pos.keys())
        else:
            predicate_ids = [
                self.lookup(predicate)
                for predicate in predicates
                if self.lookup(predicate) is not None
            ]
        for predicate_id in predicate_ids:
            for subject_id, object_id in self.subject_object_pairs(predicate_id):
                graph.add_edge(subject_id, object_id)
        return graph
