"""Random hash partitioning ("random sharding" in Table 5).

Every vertex is assigned to a partition by hashing its id.  This is the
cheapest possible partitioner and the baseline the paper contrasts with METIS:
it produces a drastically larger cut and therefore larger boundary graphs and
slower DSR queries.
"""

from __future__ import annotations

import hashlib

from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


def _stable_hash(value: int, seed: int) -> int:
    """Deterministic hash independent of PYTHONHASHSEED."""
    data = f"{seed}:{value}".encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def hash_partition(
    graph: DiGraph,
    num_partitions: int,
    seed: int = 0,
) -> GraphPartitioning:
    """Assign each vertex to ``hash(v) mod k``."""
    assignment = {
        vertex: _stable_hash(vertex, seed) % num_partitions
        for vertex in graph.vertices()
    }
    return GraphPartitioning(graph, assignment, num_partitions=num_partitions)
