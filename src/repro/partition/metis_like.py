"""A METIS-like balanced min-cut partitioner.

The paper uses METIS [17] to minimise the number of cut edges while keeping
partitions balanced, because the DSR index size and query cost are driven by
the boundary sets implied by the cut.  METIS itself is not available offline,
so this module implements the same *role* with a classical two-phase heuristic:

1. **Region growing** — seed each partition with a high-degree vertex and grow
   partitions by repeatedly absorbing the frontier vertex with the highest
   connectivity to the partition (breaking ties towards balance).  This yields
   locality-preserving partitions similar to METIS' coarsening phase.
2. **Boundary refinement** — a Kernighan–Lin/Fiduccia–Mattheyses-style pass
   that moves boundary vertices between partitions whenever the move reduces
   the number of cut edges without violating the balance constraint.

The partitioner is deterministic for a fixed ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning


def _undirected_neighbors(graph: DiGraph, vertex: int) -> Set[int]:
    return set(graph.successors(vertex)) | set(graph.predecessors(vertex))


def _region_growing(
    graph: DiGraph, num_partitions: int, rng: random.Random
) -> Dict[int, int]:
    """Grow ``num_partitions`` regions from high-degree seeds."""
    vertices = list(graph.vertices())
    if not vertices:
        return {}
    capacity = len(vertices) / num_partitions

    by_degree = sorted(
        vertices,
        key=lambda v: graph.out_degree(v) + graph.in_degree(v),
        reverse=True,
    )
    assignment: Dict[int, int] = {}
    sizes = [0] * num_partitions
    frontiers: List[Set[int]] = [set() for _ in range(num_partitions)]

    seeds: List[int] = []
    for vertex in by_degree:
        if len(seeds) >= num_partitions:
            break
        # Avoid seeding two partitions right next to each other when possible.
        if any(vertex in _undirected_neighbors(graph, seed) for seed in seeds):
            continue
        seeds.append(vertex)
    index = 0
    while len(seeds) < num_partitions and index < len(by_degree):
        if by_degree[index] not in seeds:
            seeds.append(by_degree[index])
        index += 1

    for pid, seed_vertex in enumerate(seeds):
        assignment[seed_vertex] = pid
        sizes[pid] += 1
        frontiers[pid].update(
            n for n in _undirected_neighbors(graph, seed_vertex) if n not in assignment
        )

    unassigned = set(vertices) - set(assignment)
    while unassigned:
        # Pick the smallest partition that still has capacity and a frontier.
        order = sorted(range(num_partitions), key=lambda p: sizes[p])
        grown = False
        for pid in order:
            frontier = frontiers[pid] & unassigned
            if not frontier:
                continue
            # Absorb the frontier vertex with the most neighbours already in pid.
            best_vertex = None
            best_gain = -1
            for vertex in frontier:
                gain = sum(
                    1
                    for n in _undirected_neighbors(graph, vertex)
                    if assignment.get(n) == pid
                )
                if gain > best_gain:
                    best_gain = gain
                    best_vertex = vertex
            assignment[best_vertex] = pid
            sizes[pid] += 1
            unassigned.discard(best_vertex)
            frontiers[pid].update(
                n
                for n in _undirected_neighbors(graph, best_vertex)
                if n not in assignment
            )
            grown = True
            break
        if not grown:
            # Disconnected remainder: hand the next vertex to the smallest
            # partition to preserve balance.
            vertex = unassigned.pop()
            pid = min(range(num_partitions), key=lambda p: sizes[p])
            assignment[vertex] = pid
            sizes[pid] += 1
            frontiers[pid].update(
                n for n in _undirected_neighbors(graph, vertex) if n not in assignment
            )
    return assignment


def _refine(
    graph: DiGraph,
    assignment: Dict[int, int],
    num_partitions: int,
    max_passes: int,
    imbalance: float,
) -> Dict[int, int]:
    """Greedy KL/FM-style boundary refinement."""
    sizes = [0] * num_partitions
    for pid in assignment.values():
        sizes[pid] += 1
    max_size = int(imbalance * (len(assignment) / num_partitions)) + 1

    for _ in range(max_passes):
        moved = 0
        for vertex in list(graph.vertices()):
            current = assignment[vertex]
            # Count directed edges crossing per candidate partition.
            neighbour_counts: Dict[int, int] = {}
            for neighbour in graph.successors(vertex):
                pid = assignment[neighbour]
                neighbour_counts[pid] = neighbour_counts.get(pid, 0) + 1
            for neighbour in graph.predecessors(vertex):
                pid = assignment[neighbour]
                neighbour_counts[pid] = neighbour_counts.get(pid, 0) + 1
            if not neighbour_counts:
                continue
            current_internal = neighbour_counts.get(current, 0)
            best_pid, best_internal = current, current_internal
            for pid, count in neighbour_counts.items():
                if pid == current:
                    continue
                if count > best_internal and sizes[pid] + 1 <= max_size:
                    best_pid, best_internal = pid, count
            if best_pid != current and sizes[current] > 1:
                assignment[vertex] = best_pid
                sizes[current] -= 1
                sizes[best_pid] += 1
                moved += 1
        if moved == 0:
            break
    return assignment


def metis_like_partition(
    graph: DiGraph,
    num_partitions: int,
    seed: int = 0,
    refinement_passes: int = 4,
    imbalance: float = 1.2,
) -> GraphPartitioning:
    """Balanced min-cut partitioning (region growing + KL refinement)."""
    rng = random.Random(seed)
    if num_partitions <= 1 or graph.num_vertices <= num_partitions:
        assignment = {}
        for index, vertex in enumerate(sorted(graph.vertices())):
            assignment[vertex] = index % max(1, num_partitions)
        return GraphPartitioning(graph, assignment, num_partitions=num_partitions)

    assignment = _region_growing(graph, num_partitions, rng)
    assignment = _refine(graph, assignment, num_partitions, refinement_passes, imbalance)
    return GraphPartitioning(graph, assignment, num_partitions=num_partitions)
