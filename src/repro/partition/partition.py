"""The :class:`GraphPartitioning` abstraction.

A ``GraphPartitioning`` fixes the partitioning function ``rho: V -> {0..k-1}``
and exposes everything Section 2 of the paper derives from it: the local
subgraphs ``G_i``, the cut ``C``, and the in-/out-boundary sets ``I_i`` and
``O_i``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.graph.digraph import DiGraph


class PartitioningError(Exception):
    """Raised when an assignment is inconsistent with the graph."""


class GraphPartitioning:
    """A ``k``-way vertex partitioning of a directed data graph."""

    def __init__(
        self,
        graph: DiGraph,
        assignment: Mapping[int, int],
        num_partitions: int = None,
    ) -> None:
        self.graph = graph
        self.assignment: Dict[int, int] = dict(assignment)
        missing = [v for v in graph.vertices() if v not in self.assignment]
        if missing:
            raise PartitioningError(
                f"{len(missing)} vertices have no partition assignment "
                f"(e.g. {missing[:5]})"
            )
        observed = max(self.assignment.values(), default=-1) + 1
        self.num_partitions = num_partitions if num_partitions is not None else observed
        if observed > self.num_partitions:
            raise PartitioningError(
                f"assignment uses partition id {observed - 1} but only "
                f"{self.num_partitions} partitions were declared"
            )
        for vertex, pid in self.assignment.items():
            if pid < 0:
                raise PartitioningError(f"negative partition id for vertex {vertex}")
        self._partition_vertices: List[Set[int]] = [
            set() for _ in range(self.num_partitions)
        ]
        for vertex, pid in self.assignment.items():
            self._partition_vertices[pid].add(vertex)
        self._cut_edges: List[Tuple[int, int]] = [
            (u, v) for u, v in graph.edges() if self.assignment[u] != self.assignment[v]
        ]

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def partition_of(self, vertex: int) -> int:
        """Return the partition id of ``vertex`` (the function ``rho``)."""
        try:
            return self.assignment[vertex]
        except KeyError:
            raise PartitioningError(f"vertex {vertex} is not assigned") from None

    def vertices_of(self, partition_id: int) -> Set[int]:
        """Return the vertex set ``V_i`` of partition ``partition_id``."""
        self._check_partition(partition_id)
        return self._partition_vertices[partition_id]

    def local_subgraph(self, partition_id: int) -> DiGraph:
        """Return the vertex-induced local subgraph ``G_i``."""
        return self.graph.induced_subgraph(self.vertices_of(partition_id))

    # ------------------------------------------------------------------ #
    # cut and boundaries (Definition 3)
    # ------------------------------------------------------------------ #
    def cut_edges(self) -> List[Tuple[int, int]]:
        """Return all edges of the cut ``C`` (endpoints in distinct partitions)."""
        return list(self._cut_edges)

    def cut_graph(self) -> DiGraph:
        """Return the cut ``C`` as its own graph (boundary vertices + cut edges)."""
        cut = DiGraph()
        for u, v in self._cut_edges:
            cut.add_vertex(u, label=self.graph.label_of(u))
            cut.add_vertex(v, label=self.graph.label_of(v))
            cut.add_edge(u, v)
        return cut

    def in_boundaries(self, partition_id: int) -> Set[int]:
        """Vertices of ``G_i`` with an incoming cut edge (``I_i``)."""
        self._check_partition(partition_id)
        return {
            v
            for u, v in self._cut_edges
            if self.assignment[v] == partition_id
        }

    def out_boundaries(self, partition_id: int) -> Set[int]:
        """Vertices of ``G_i`` with an outgoing cut edge (``O_i``)."""
        self._check_partition(partition_id)
        return {
            u
            for u, v in self._cut_edges
            if self.assignment[u] == partition_id
        }

    def boundary_vertices(self) -> Set[int]:
        """All boundary vertices across all partitions (vertices of ``C``)."""
        vertices: Set[int] = set()
        for u, v in self._cut_edges:
            vertices.add(u)
            vertices.add(v)
        return vertices

    # ------------------------------------------------------------------ #
    # query partitioning and statistics
    # ------------------------------------------------------------------ #
    def split_query(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Tuple[Set[int], Set[int]]]:
        """Split a DSR query ``S ⇝ T`` into per-partition subqueries.

        Returns ``{partition_id: (S_i, T_i)}`` for every partition with at
        least one local source or target (Algorithm 2, line 2).
        """
        per_partition: Dict[int, Tuple[Set[int], Set[int]]] = {}
        for source in sources:
            pid = self.partition_of(source)
            per_partition.setdefault(pid, (set(), set()))[0].add(source)
        for target in targets:
            pid = self.partition_of(target)
            per_partition.setdefault(pid, (set(), set()))[1].add(target)
        return per_partition

    def partition_sizes(self) -> List[Tuple[int, int]]:
        """Return ``[(|V_i|, |E_i|)]`` for every partition."""
        sizes = []
        for pid in range(self.num_partitions):
            local = self.local_subgraph(pid)
            sizes.append((local.num_vertices, local.num_edges))
        return sizes

    def cut_size(self) -> int:
        """Number of edges in the cut ``C``."""
        return len(self._cut_edges)

    def edge_balance(self) -> float:
        """Max-over-average edge imbalance across partitions (1.0 = perfect)."""
        sizes = [edges for _, edges in self.partition_sizes()]
        if not sizes or sum(sizes) == 0:
            return 1.0
        average = sum(sizes) / len(sizes)
        if average == 0:
            return 1.0
        return max(sizes) / average

    def summary(self) -> Dict[str, object]:
        """Human-readable summary statistics (used by benches and examples)."""
        return {
            "num_partitions": self.num_partitions,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "cut_edges": self.cut_size(),
            "cut_fraction": (
                self.cut_size() / self.graph.num_edges if self.graph.num_edges else 0.0
            ),
            "partition_sizes": self.partition_sizes(),
            "edge_balance": round(self.edge_balance(), 3),
        }

    def _check_partition(self, partition_id: int) -> None:
        if not 0 <= partition_id < self.num_partitions:
            raise PartitioningError(
                f"partition id {partition_id} out of range [0, {self.num_partitions})"
            )


def make_partitioning(
    graph: DiGraph,
    num_partitions: int,
    strategy: str = "metis",
    seed: int = 0,
) -> GraphPartitioning:
    """Partition ``graph`` with the named strategy (``"hash"`` or ``"metis"``)."""
    # Imported lazily to avoid an import cycle with the partitioner modules.
    from repro.partition.hash_partitioner import hash_partition
    from repro.partition.metis_like import metis_like_partition

    if num_partitions < 1:
        raise PartitioningError("num_partitions must be >= 1")
    if strategy == "hash":
        return hash_partition(graph, num_partitions, seed=seed)
    if strategy in ("metis", "min-cut", "mincut"):
        return metis_like_partition(graph, num_partitions, seed=seed)
    raise ValueError(f"unknown partitioning strategy: {strategy!r}")
