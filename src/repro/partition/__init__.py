"""Graph partitioning: partition abstraction, hash and min-cut partitioners.

A partitioning splits the data graph into ``k`` vertex-disjoint, vertex-induced
subgraphs (Section 2 of the paper).  The cut ``C`` collects every edge whose
endpoints live in different partitions; in- and out-boundaries are the
vertices touching the cut (Definition 3).
"""

from repro.partition.hash_partitioner import hash_partition
from repro.partition.metis_like import metis_like_partition
from repro.partition.partition import GraphPartitioning, make_partitioning

__all__ = [
    "GraphPartitioning",
    "hash_partition",
    "metis_like_partition",
    "make_partitioning",
]
