"""One specialised engine replica inside a :class:`~repro.fleet.ReplicaFleet`.

A replica is a full :class:`~repro.core.engine.DSREngine` over (a copy of)
the served graph, distinguished from its siblings only by the local
reachability strategy its compound graphs run — the knob the fleet tuner
turns.  Each replica carries its own :class:`~repro.service.planner.QueryPlanner`
so the router can ask "what would *this* replica charge for that query?"
without touching any other replica's state.

Strategy swaps happen through :meth:`FleetReplica.rebuild_to`, which drives
:meth:`DSREngine.rebuild_local_strategy` — the epoch-swap rebuild — either
synchronously or on a daemon thread.  While a background rebuild runs the
replica keeps serving its current epoch, so routing never blocks on a swap.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.core.engine import DSREngine
from repro.obs.runtime import global_registry
from repro.resilience.failpoints import failpoint
from repro.service.planner import QueryPlanner


class FleetReplica:
    """A fleet member: one engine, one planner, one current strategy."""

    def __init__(
        self,
        replica_id: int,
        engine: DSREngine,
        max_batch_pairs: int = 4096,
    ) -> None:
        self.replica_id = replica_id
        self.engine = engine
        self.planner = QueryPlanner(engine, max_batch_pairs=max_batch_pairs)
        self.rebuild_count = 0
        self.rebuild_error: Optional[BaseException] = None
        self._rebuild_lock = threading.Lock()
        self._rebuild_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def strategy(self) -> str:
        """Registry name of the local strategy this replica currently serves."""
        return self.engine.local_index

    @property
    def rebuilding(self) -> bool:
        """True while a background strategy rebuild is in flight."""
        thread = self._rebuild_thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------ #
    # strategy lifecycle
    # ------------------------------------------------------------------ #
    def rebuild_to(self, strategy: str, background: bool = False) -> bool:
        """Re-specialise this replica to ``strategy`` via an epoch swap.

        Returns ``True`` when a rebuild was started (or completed, in the
        synchronous case).  A no-op when the replica already runs the
        strategy or another rebuild is still in flight — the tuner simply
        retries on its next round, which keeps the loop non-blocking.
        """
        with self._rebuild_lock:
            if strategy == self.strategy:
                return False
            if self._rebuild_thread is not None and self._rebuild_thread.is_alive():
                return False
            if not background:
                self._do_rebuild(strategy)
                return True
            thread = threading.Thread(
                target=self._do_rebuild,
                args=(strategy,),
                name=f"fleet-rebuild-{self.replica_id}",
                daemon=True,
            )
            self._rebuild_thread = thread
            thread.start()
            return True

    def _do_rebuild(self, strategy: str) -> None:
        registry = global_registry()
        try:
            failpoint("fleet.rebuild", replica=self.replica_id, strategy=strategy)
            self.engine.rebuild_local_strategy(strategy)
        except BaseException as exc:
            self.rebuild_error = exc
            if registry.enabled:
                registry.inc(
                    "dsr_fleet_rebuilds_total",
                    replica=str(self.replica_id),
                    outcome="error",
                )
            return
        self.rebuild_count += 1
        self.rebuild_error = None
        if registry.enabled:
            registry.inc(
                "dsr_fleet_rebuilds_total",
                replica=str(self.replica_id),
                outcome="published",
            )

    def wait_for_rebuild(self, timeout: Optional[float] = None) -> bool:
        """Block until no background rebuild is in flight (False on timeout)."""
        thread = self._rebuild_thread
        if thread is None or not thread.is_alive():
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #
    def probe(self) -> bool:
        """Health-probe predicate: built index and no failed rebuild.

        The :class:`~repro.resilience.HealthSupervisor` calls this per
        round; a replica whose last strategy rebuild blew up stays
        unhealthy (and ejected from routing) until a later rebuild clears
        ``rebuild_error``.
        """
        return self.rebuild_error is None and self.engine.is_built

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        return {
            "replica": self.replica_id,
            "strategy": self.strategy,
            "epoch": self.engine.epoch,
            "rebuilding": self.rebuilding,
            "rebuilds": self.rebuild_count,
            "rebuild_error": (
                str(self.rebuild_error) if self.rebuild_error is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FleetReplica id={self.replica_id} strategy={self.strategy!r} "
            f"epoch={self.engine.epoch}>"
        )


__all__ = ["FleetReplica"]
