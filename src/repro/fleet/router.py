"""Cost-routed query dispatch over heterogeneous replicas.

The router answers one question per incoming query: *which replica is
cheapest for this query class?*  It fingerprints the query (tenant label,
direction, representation and the log2 buckets of ``|S|`` and ``|T|``), asks
every replica's planner for its modeled cost through the stable
:meth:`~repro.service.planner.QueryPlanner.estimate_query_cost` contract, and
picks the argmin — deterministically, with ties broken by the lowest replica
id, so a seeded workload always produces the same routing.

Two observers ride along on every decision:

* a :class:`WorkloadHistogram` — the decayed query-class histogram the fleet
  tuner clusters (no scipy: plain exponentially decayed weights per
  fingerprint, swept periodically);
* the obs registry — ``dsr_fleet_route_total{replica=…}`` counters and the
  ``dsr_fleet_route_cost_gap`` histogram of how far the *chosen* replica's
  cost sits above the instantaneous best (non-zero only when a tuner-pinned
  routing-table entry overrides the argmin).

The tuner installs a fingerprint → replica table
(:meth:`QueryRouter.install_table`); table entries take precedence over the
per-query argmin so routing stays stable between re-tunes even while a
replica's index strategy is being rebuilt underneath it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.query import ReachQuery
from repro.obs.runtime import global_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.replica import FleetReplica

#: ``(tenant, direction, representation, |S| bucket, |T| bucket)``.
QueryFingerprint = Tuple[str, str, str, int, int]


def size_bucket(count: int) -> int:
    """Log2 bucket of a cardinality (0 → 0, 1 → 1, 2 → 2, 3-4 → 3, ...)."""
    return int(count).bit_length()


def fingerprint_query(query: ReachQuery) -> QueryFingerprint:
    """The query-class fingerprint the router and tuner share.

    Only shape enters the fingerprint — never concrete vertex ids — so
    queries that cost the same cluster together.
    """
    return (
        query.tenant or "",
        query.direction,
        query.representation,
        size_bucket(len(query.sources)),
        size_bucket(len(query.targets)),
    )


@dataclass(frozen=True)
class QueryClass:
    """One clustered workload class: a fingerprint plus decayed statistics."""

    fingerprint: QueryFingerprint
    weight: float
    num_sources: int
    num_targets: int

    def as_query(self) -> ReachQuery:
        """A representative query for costing (ids are placeholders)."""
        return ReachQuery(
            sources=tuple(range(self.num_sources)),
            targets=tuple(range(self.num_sources, self.num_sources + self.num_targets)),
            direction=self.fingerprint[1],
            representation=self.fingerprint[2],
            tenant=self.fingerprint[0] or None,
        )


class WorkloadHistogram:
    """Decayed query-class histogram of the recent routed workload.

    Every routed query adds weight 1.0 to its fingerprint's bin and folds its
    cardinalities into the bin's running means (exponential moving average).
    Every ``decay_every`` records all weights are multiplied by ``decay`` and
    bins below a drop threshold are evicted, so classes the workload stopped
    issuing fade out instead of pinning replicas forever.  Deterministic for
    a given record sequence — the property the routing-determinism tests pin.
    """

    def __init__(
        self,
        decay: float = 0.9,
        decay_every: int = 256,
        max_classes: int = 512,
        mean_alpha: float = 0.25,
    ) -> None:
        if not (0.0 < decay <= 1.0):
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.decay_every = max(1, decay_every)
        self.max_classes = max(1, max_classes)
        self.mean_alpha = mean_alpha
        self._weights: Dict[QueryFingerprint, float] = {}
        self._mean_sources: Dict[QueryFingerprint, float] = {}
        self._mean_targets: Dict[QueryFingerprint, float] = {}
        self._records = 0
        self._lock = threading.Lock()

    def record(
        self, fingerprint: QueryFingerprint, num_sources: int, num_targets: int
    ) -> None:
        with self._lock:
            self._records += 1
            if fingerprint in self._weights:
                self._weights[fingerprint] += 1.0
                alpha = self.mean_alpha
                self._mean_sources[fingerprint] += alpha * (
                    num_sources - self._mean_sources[fingerprint]
                )
                self._mean_targets[fingerprint] += alpha * (
                    num_targets - self._mean_targets[fingerprint]
                )
            else:
                self._weights[fingerprint] = 1.0
                self._mean_sources[fingerprint] = float(num_sources)
                self._mean_targets[fingerprint] = float(num_targets)
            if self._records % self.decay_every == 0:
                self._decay_locked()

    def _decay_locked(self) -> None:
        for fingerprint in list(self._weights):
            self._weights[fingerprint] *= self.decay
            if self._weights[fingerprint] < 0.05:
                del self._weights[fingerprint]
                del self._mean_sources[fingerprint]
                del self._mean_targets[fingerprint]
        if len(self._weights) > self.max_classes:
            # Keep the heaviest classes; break weight ties by fingerprint so
            # the eviction order is deterministic.
            ranked = sorted(
                self._weights, key=lambda fp: (-self._weights[fp], fp)
            )
            for fingerprint in ranked[self.max_classes :]:
                del self._weights[fingerprint]
                del self._mean_sources[fingerprint]
                del self._mean_targets[fingerprint]

    @property
    def num_records(self) -> int:
        return self._records

    @property
    def num_classes(self) -> int:
        with self._lock:
            return len(self._weights)

    def snapshot(self) -> List[QueryClass]:
        """The current classes, sorted by fingerprint (deterministic order)."""
        with self._lock:
            return [
                QueryClass(
                    fingerprint=fingerprint,
                    weight=self._weights[fingerprint],
                    num_sources=max(1, round(self._mean_sources[fingerprint])),
                    num_targets=max(1, round(self._mean_targets[fingerprint])),
                )
                for fingerprint in sorted(self._weights)
            ]


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of routing one query."""

    replica: "FleetReplica"
    fingerprint: QueryFingerprint
    #: Modeled cost per replica, in replica-id order.
    costs: Tuple[float, ...]
    #: Cost of the replica actually chosen.
    routed_cost: float
    #: The instantaneous argmin cost (equals ``routed_cost`` unless a pinned
    #: routing-table entry overrode the argmin).
    best_cost: float
    #: True when a tuner-installed table entry decided the route.
    table_hit: bool = False

    @property
    def cost_gap(self) -> float:
        """Relative routed-vs-best cost gap (0.0 when routed == best)."""
        if self.best_cost <= 0.0:
            return 0.0
        return max(0.0, (self.routed_cost - self.best_cost) / self.best_cost)


class QueryRouter:
    """Fingerprints queries and routes each to the argmin-cost replica."""

    def __init__(
        self,
        replicas: Sequence["FleetReplica"],
        histogram: Optional[WorkloadHistogram] = None,
    ) -> None:
        if not replicas:
            raise ValueError("a router needs at least one replica")
        self.replicas = list(replicas)
        self.histogram = histogram if histogram is not None else WorkloadHistogram()
        self._table: Dict[QueryFingerprint, int] = {}
        self._table_lock = threading.Lock()
        self._route_counts: Dict[int, int] = {
            replica.replica_id: 0 for replica in self.replicas
        }
        #: Replica ids the health supervisor has ejected from routing.
        self._ejected: set = set()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, query: ReachQuery, record: bool = True) -> RouteDecision:
        """Pick the serving replica for ``query``.

        A tuner-pinned routing-table entry wins when present; otherwise the
        argmin of every replica's
        :meth:`~repro.service.planner.QueryPlanner.estimate_query_cost`, ties
        broken by lowest replica id.  ``record=False`` skips the workload
        histogram (used for what-if probes that must not perturb tuning).
        """
        fingerprint = fingerprint_query(query)
        if record:
            self.histogram.record(
                fingerprint, len(query.sources), len(query.targets)
            )
        costs = tuple(
            replica.planner.estimate_query_cost(query) for replica in self.replicas
        )
        with self._table_lock:
            pinned = self._table.get(fingerprint)
            ejected = set(self._ejected)
        # Health filter: an ejected replica receives zero routed queries.
        # If *everything* is ejected, fall back to the full set — answering
        # on a suspect replica beats answering nothing (availability over
        # purity; the breaker keeps probing and re-admits on recovery).
        healthy = [
            i for i, replica in enumerate(self.replicas)
            if replica.replica_id not in ejected
        ]
        if not healthy:
            healthy = list(range(len(self.replicas)))
        best_index = min(healthy, key=lambda i: (costs[i], i))
        if pinned is not None and pinned in healthy:
            chosen_index, table_hit = pinned, True
        else:
            # A pinned entry pointing at an ejected replica is bypassed:
            # failover to the cheapest healthy replica instead.
            chosen_index, table_hit = best_index, False
        replica = self.replicas[chosen_index]
        decision = RouteDecision(
            replica=replica,
            fingerprint=fingerprint,
            costs=costs,
            routed_cost=costs[chosen_index],
            best_cost=costs[best_index],
            table_hit=table_hit,
        )
        if record:
            with self._table_lock:
                self._route_counts[replica.replica_id] += 1
            registry = global_registry()
            if registry.enabled:
                registry.inc(
                    "dsr_fleet_route_total",
                    replica=str(replica.replica_id),
                    strategy=replica.strategy,
                )
                registry.observe("dsr_fleet_route_cost_gap", decision.cost_gap)
        return decision

    # ------------------------------------------------------------------ #
    # health interface
    # ------------------------------------------------------------------ #
    def eject(self, replica_id: int) -> None:
        """Remove a replica from routing (supervisor: breaker opened)."""
        with self._table_lock:
            if replica_id in self._ejected:
                return
            self._ejected.add(replica_id)
        registry = global_registry()
        if registry.enabled:
            registry.inc(
                "dsr_replica_ejections_total", replica=str(replica_id)
            )

    def readmit(self, replica_id: int) -> None:
        """Return an ejected replica to routing (breaker closed again)."""
        with self._table_lock:
            self._ejected.discard(replica_id)

    def ejected_ids(self) -> Tuple[int, ...]:
        with self._table_lock:
            return tuple(sorted(self._ejected))

    # ------------------------------------------------------------------ #
    # tuner interface
    # ------------------------------------------------------------------ #
    def install_table(self, table: Mapping[QueryFingerprint, int]) -> None:
        """Atomically replace the pinned fingerprint → replica-index table."""
        cleaned = {
            fingerprint: index
            for fingerprint, index in table.items()
            if 0 <= index < len(self.replicas)
        }
        with self._table_lock:
            self._table = cleaned

    def routing_table(self) -> Dict[QueryFingerprint, int]:
        with self._table_lock:
            return dict(self._table)

    def route_counts(self) -> Dict[int, int]:
        """Routed-query counts per replica id."""
        with self._table_lock:
            return dict(self._route_counts)


__all__ = [
    "QueryClass",
    "QueryFingerprint",
    "QueryRouter",
    "RouteDecision",
    "WorkloadHistogram",
    "fingerprint_query",
    "size_bucket",
]
