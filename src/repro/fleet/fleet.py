"""The replica fleet: N specialised engines behind one engine-shaped facade.

:class:`ReplicaFleet` owns a set of :class:`~repro.fleet.replica.FleetReplica`
engines over the *same logical graph* — each replica holds its own physical
copy plus an identical partition assignment, so every replica answers every
query identically and only the speed differs with its local index strategy.
On top sit the two adaptive pieces:

* a :class:`~repro.fleet.router.QueryRouter` that sends each read to the
  argmin-cost replica (reads route);
* a :class:`~repro.fleet.tuner.FleetTuner` that periodically re-clusters the
  routed workload and re-specialises replicas in the background (the online
  re-tuning loop).

Updates **fan out**: every insert/delete is applied to every replica through
its own :class:`~repro.core.updates.IncrementalMaintainer`, so the replicas'
graphs never diverge.  Vertex inserts resolve the id and partition on the
primary first and replay them verbatim on the others, keeping the partition
assignments aligned — the invariant behind exact answer parity.

The fleet deliberately quacks like a :class:`~repro.core.engine.DSREngine`
(``run`` / ``reachable`` / update methods / ``epoch`` / ``maintainer`` /
``close``), so :class:`~repro.service.server.DSRService` and
:func:`repro.api.open_engine` can serve a fleet wherever a single engine was
expected.  Its ``epoch`` is a *fleet version*: a counter bumped on every
replica's epoch publish (update flushes and strategy rebuilds alike), which
is what the service's epoch-tagged result cache keys on — any replica moving
invalidates conservatively, never incorrectly.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.config import DSRConfig
from repro.api.query import ReachQuery
from repro.core.engine import DSREngine
from repro.core.query import QueryResult
from repro.fleet.replica import FleetReplica
from repro.fleet.router import QueryRouter, RouteDecision
from repro.fleet.tuner import FleetTuner
from repro.graph.digraph import DiGraph
from repro.obs.runtime import global_registry
from repro.partition.partition import GraphPartitioning, make_partitioning
from repro.resilience.supervisor import HealthSupervisor

#: Default heterogeneous composition: a shared-frontier sweep engine for the
#: large-root-set end, interval pruning for the middle, and a materialised
#: closure for small repeated lookups.  Integer ``replicas=N`` configs draw
#: from this trio round-robin.
DEFAULT_FLEET_STRATEGIES = ("msbfs", "ferrari", "closure")


def resolve_replica_strategies(replicas: Any) -> Tuple[str, ...]:
    """Expand a ``DSRConfig.replicas`` value into per-replica strategy names."""
    if replicas is None:
        return DEFAULT_FLEET_STRATEGIES
    if isinstance(replicas, int) and not isinstance(replicas, bool):
        cycle = itertools.cycle(DEFAULT_FLEET_STRATEGIES)
        return tuple(next(cycle) for _ in range(replicas))
    return tuple(replicas)


class ReplicaFleet:
    """A workload-adaptive set of heterogeneous DSR engine replicas."""

    #: Registry name under which the fleet satisfies the Backend protocol.
    name = "dsr-fleet"

    def __init__(
        self,
        replicas: Sequence[FleetReplica],
        config: Optional[DSRConfig] = None,
        retune_interval: int = 512,
    ) -> None:
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        self.replicas = list(replicas)
        self.config = config
        #: Re-cluster the workload every this many routed queries (0 = only
        #: on explicit :meth:`retune` calls).
        self.retune_interval = retune_interval
        self.router = QueryRouter(self.replicas)
        self.tuner = FleetTuner(self)
        self.epoch_flush = getattr(self.replicas[0].engine, "epoch_flush", "inline")
        self._version = 0
        self._version_lock = threading.Lock()
        self._update_lock = threading.RLock()
        self._routes = 0
        self._routes_lock = threading.Lock()
        self._retune_thread: Optional[threading.Thread] = None
        self._retune_spawn_lock = threading.Lock()
        self._listeners_attached = False
        #: Health supervisor ejecting unhealthy replicas from routing
        #: (``None`` until :meth:`enable_health`).
        self.health: Optional[HealthSupervisor] = None
        self._owns_health = False
        if self.is_built:
            self._attach_version_listeners()
        registry = global_registry()
        if registry.enabled:
            registry.set_gauge("dsr_fleet_replicas", len(self.replicas))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls,
        graph: DiGraph,
        config: Optional[DSRConfig] = None,
        *,
        partitioning: Optional[GraphPartitioning] = None,
        retune_interval: int = 512,
    ) -> "ReplicaFleet":
        """Open a ready-to-query fleet over ``graph``.

        The partitioning is computed once and shared *by value*: the primary
        replica runs on the caller's graph, every other replica on its own
        :meth:`~repro.graph.digraph.DiGraph.copy` with an identical partition
        assignment — same answers, independent index state.  Each replica's
        engine is opened from the same config with only ``local_index``
        swapped to its strategy, then built eagerly.
        """
        config = config if config is not None else DSRConfig(fleet=True)
        if not config.fleet:
            config = config.replace(fleet=True)
        strategies = resolve_replica_strategies(config.replicas)
        if partitioning is None:
            partitioning = make_partitioning(
                graph,
                config.num_partitions,
                strategy=config.partitioner,
                seed=config.seed,
            )
        replicas = []
        for replica_id, strategy in enumerate(strategies):
            replica_config = config.replace(
                fleet=False,
                replicas=None,
                local_index=strategy,
                local_index_options=None,
            )
            if replica_id == 0:
                replica_graph, replica_partitioning = graph, partitioning
            else:
                replica_graph = graph.copy()
                replica_partitioning = GraphPartitioning(
                    replica_graph,
                    dict(partitioning.assignment),
                    partitioning.num_partitions,
                )
            engine = DSREngine.from_config(
                replica_graph, replica_config, partitioning=replica_partitioning
            )
            engine.build_index()
            replicas.append(FleetReplica(replica_id, engine))
        return cls(replicas, config=config, retune_interval=retune_interval)

    def _attach_version_listeners(self) -> None:
        """Bump the fleet version on every replica's epoch publish."""
        if self._listeners_attached:
            return
        for replica in self.replicas:
            maintainer = replica.engine.maintainer
            if maintainer is not None:
                maintainer.add_flush_listener(self._bump_version)
        self._listeners_attached = True

    def _bump_version(self, _flush_result=None) -> None:
        with self._version_lock:
            self._version += 1

    # ------------------------------------------------------------------ #
    # engine facade: lifecycle & identity
    # ------------------------------------------------------------------ #
    @property
    def primary(self) -> FleetReplica:
        return self.replicas[0]

    @property
    def graph(self) -> DiGraph:
        return self.primary.engine.graph

    @property
    def cluster(self):
        return self.primary.engine.cluster

    @property
    def index(self):
        return self.primary.engine.index

    @property
    def partitioning(self) -> GraphPartitioning:
        return self.primary.engine.partitioning

    @property
    def maintainer(self):
        """The primary replica's maintainer (cache/observer attachment point).

        Updates fan out to every replica, so the primary's update/flush
        stream sees every mutation — sufficient for an invalidating cache.
        """
        return self.primary.engine.maintainer

    @property
    def enable_backward(self) -> bool:
        return self.primary.engine.enable_backward

    @property
    def is_built(self) -> bool:
        return all(replica.engine.is_built for replica in self.replicas)

    def build_index(self):
        """Build any unbuilt replica indexes; returns the primary's report."""
        report = None
        for replica in self.replicas:
            if not replica.engine.is_built:
                built = replica.engine.build_index()
                if replica is self.primary:
                    report = built
        self._attach_version_listeners()
        if report is None:
            report = self.primary.engine.last_build_report
        return report

    @property
    def last_build_report(self):
        return self.primary.engine.last_build_report

    @property
    def epoch(self) -> int:
        """The fleet version: bumped whenever *any* replica publishes.

        This is what epoch-tagged caches key on — coarser than any single
        replica's epoch, so an entry can only ever be invalidated too eagerly,
        never served stale.
        """
        return self._version

    def close(self) -> None:
        if self.health is not None and self._owns_health:
            self.health.stop()
        for replica in self.replicas:
            replica.wait_for_rebuild(timeout=5.0)
            replica.engine.close()

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # reads: route, then run on the routed replica
    # ------------------------------------------------------------------ #
    def route(self, query: ReachQuery, record: bool = True) -> RouteDecision:
        """Route one query; periodically kicks the background re-tuner."""
        decision = self.router.route(query, record=record)
        if record:
            with self._routes_lock:
                self._routes += 1
                routes = self._routes
            if self.retune_interval and routes % self.retune_interval == 0:
                self.request_retune()
        return decision

    def run(self, query: ReachQuery) -> QueryResult:
        """Answer one query on the argmin-cost replica (Backend protocol)."""
        decision = self.route(query)
        return decision.replica.engine.run(query)

    def reachable(self, source: int, target: int) -> bool:
        return (source, target) in self.run(ReachQuery.single(source, target)).pairs

    # ------------------------------------------------------------------ #
    # writes: fan out to every replica
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: int, v: int):
        with self._update_lock:
            result = self.primary.engine.insert_edge(u, v)
            for replica in self.replicas[1:]:
                replica.engine.insert_edge(u, v)
        return result

    def delete_edge(self, u: int, v: int):
        with self._update_lock:
            result = self.primary.engine.delete_edge(u, v)
            for replica in self.replicas[1:]:
                replica.engine.delete_edge(u, v)
        return result

    def insert_vertex(
        self, vertex: Optional[int] = None, partition_id: Optional[int] = None
    ) -> int:
        """Insert a vertex on every replica, keeping assignments aligned.

        The primary resolves the auto-picked id and partition; the other
        replicas replay the insert with both pinned, so
        ``partition_of(vertex)`` agrees fleet-wide afterwards.
        """
        with self._update_lock:
            new_vertex = self.primary.engine.insert_vertex(vertex, partition_id)
            resolved_partition = self.primary.engine.partitioning.partition_of(
                new_vertex
            )
            for replica in self.replicas[1:]:
                replica.engine.insert_vertex(new_vertex, resolved_partition)
        return new_vertex

    def delete_vertex(self, vertex: int):
        with self._update_lock:
            result = self.primary.engine.delete_vertex(vertex)
            for replica in self.replicas[1:]:
                replica.engine.delete_vertex(vertex)
        return result

    def flush_updates(self):
        """Flush every replica synchronously; returns the primary's result."""
        with self._update_lock:
            results = [replica.engine.flush_updates() for replica in self.replicas]
        return results[0]

    @property
    def has_pending_updates(self) -> bool:
        return any(replica.engine.has_pending_updates for replica in self.replicas)

    def wait_for_maintenance(self, timeout: Optional[float] = None) -> bool:
        """Wait out background flushes, rebuilds and any in-flight retune."""
        done = True
        for replica in self.replicas:
            done = replica.engine.wait_for_maintenance(timeout) and done
            done = replica.wait_for_rebuild(timeout) and done
        thread = self._retune_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            done = done and not thread.is_alive()
        return done

    # ------------------------------------------------------------------ #
    # tuning
    # ------------------------------------------------------------------ #
    def retune(self):
        """Run one synchronous clustering-and-tuning round."""
        return self.tuner.retune()

    def request_retune(self) -> bool:
        """Kick a background retune; no-op while one is already in flight."""
        with self._retune_spawn_lock:
            if self._retune_thread is not None and self._retune_thread.is_alive():
                return False
            thread = threading.Thread(
                target=self._retune_guarded, name="fleet-retune", daemon=True
            )
            self._retune_thread = thread
            thread.start()
            return True

    def _retune_guarded(self) -> None:
        try:
            self.tuner.retune()
        except BaseException:  # pragma: no cover - captured in tuner.last_error
            pass

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #
    def enable_health(
        self,
        supervisor: Optional[HealthSupervisor] = None,
        probe_interval_seconds: float = 1.0,
        failure_threshold: int = 3,
        start: bool = True,
    ) -> HealthSupervisor:
        """Register every replica with a health supervisor.

        Each replica becomes a ``replica:{id}`` target probed via
        :meth:`FleetReplica.probe`; when its breaker opens, the replica is
        ejected from the router (zero routed queries until recovery), and a
        later successful probe re-admits it automatically.

        Pass an existing ``supervisor`` to share one probe loop (the
        service does this to co-supervise worker hosts); the fleet then
        does *not* own its lifecycle.  Otherwise a new supervisor is
        created (and started when ``start``), stopped again by
        :meth:`close`.
        """
        if self.health is not None:
            return self.health
        owned = supervisor is None
        if supervisor is None:
            supervisor = HealthSupervisor(
                probe_interval_seconds=probe_interval_seconds,
                failure_threshold=failure_threshold,
            )
        for replica in self.replicas:
            supervisor.add_target(
                f"replica:{replica.replica_id}",
                probe=replica.probe,
                on_eject=lambda rid=replica.replica_id: self.router.eject(rid),
                on_admit=lambda rid=replica.replica_id: self.router.readmit(rid),
            )
        self.health = supervisor
        self._owns_health = owned
        if owned and start:
            supervisor.start()
        return supervisor

    # ------------------------------------------------------------------ #
    # service integration & introspection
    # ------------------------------------------------------------------ #
    def configure_planners(self, max_batch_pairs: int) -> None:
        """Align every replica planner's batching budget with the service's."""
        for replica in self.replicas:
            replica.planner.max_batch_pairs = max_batch_pairs

    def stats(self) -> Dict[str, Any]:
        """The ``fleet`` section of ``DSRService.stats()``."""
        route_counts = self.router.route_counts()
        replicas: List[Dict[str, Any]] = []
        for replica in self.replicas:
            entry = replica.stats()
            entry["routes"] = route_counts.get(replica.replica_id, 0)
            replicas.append(entry)
        last = self.tuner.last_result
        return {
            "replicas": replicas,
            "ejected": list(self.router.ejected_ids()),
            "version": self._version,
            "routes": self._routes,
            "routing_table_size": len(self.router.routing_table()),
            "workload_classes": self.router.histogram.num_classes,
            "retunes": self.tuner.retune_count,
            "retune_interval": self.retune_interval,
            "last_retune": (
                {
                    "applied": last.applied,
                    "modeled_cost": last.modeled_cost,
                    "iterations": max(0, len(last.cost_trajectory) - 1),
                    "strategies": list(last.strategies),
                    "rebuilds": list(last.rebuilds),
                    "reason": last.reason,
                }
                if last is not None
                else None
            ),
            "tuner_error": (
                str(self.tuner.last_error)
                if self.tuner.last_error is not None
                else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        strategies = ", ".join(replica.strategy for replica in self.replicas)
        return f"<ReplicaFleet replicas=[{strategies}] version={self._version}>"


__all__ = [
    "DEFAULT_FLEET_STRATEGIES",
    "ReplicaFleet",
    "resolve_replica_strategies",
]
