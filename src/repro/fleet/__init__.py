"""Workload-adaptive replica fleet with cost-routed queries.

Contract: the serving-tier replication layer — N heterogeneous
:class:`~repro.core.engine.DSREngine` replicas over the same logical graph,
an argmin-cost :class:`QueryRouter` fed by the stable
:meth:`~repro.service.planner.QueryPlanner.estimate_query_cost` contract, and
an online :class:`FleetTuner` that re-clusters the decayed workload histogram
and re-specialises replicas through background epoch-swap rebuilds.  Reads
route to one replica; writes fan out to all; answers are replica-invariant.
Sits beside :mod:`repro.service` above :mod:`repro.core` (see
``docs/FLEET.md``).

>>> from repro.api import DSRConfig, ReachQuery, open_engine
>>> from repro.graph import generators
>>> graph = generators.social_graph(300, avg_degree=5, seed=1)
>>> fleet = open_engine(graph, DSRConfig(num_partitions=3, replicas=3))
>>> result = fleet.run(ReachQuery((0, 1), (100, 200), tenant="analytics"))
>>> fleet.close()
"""

from repro.fleet.fleet import (
    DEFAULT_FLEET_STRATEGIES,
    ReplicaFleet,
    resolve_replica_strategies,
)
from repro.fleet.replica import FleetReplica
from repro.fleet.router import (
    QueryClass,
    QueryFingerprint,
    QueryRouter,
    RouteDecision,
    WorkloadHistogram,
    fingerprint_query,
    size_bucket,
)
from repro.fleet.tuner import DEFAULT_TUNER_CANDIDATES, FleetTuner, RetuneResult

__all__ = [
    "DEFAULT_FLEET_STRATEGIES",
    "DEFAULT_TUNER_CANDIDATES",
    "FleetReplica",
    "FleetTuner",
    "QueryClass",
    "QueryFingerprint",
    "QueryRouter",
    "ReplicaFleet",
    "RetuneResult",
    "RouteDecision",
    "WorkloadHistogram",
    "fingerprint_query",
    "resolve_replica_strategies",
    "size_bucket",
]
