"""Online workload clustering and replica re-specialisation.

The tuner closes the fleet's adaptation loop: it reads the router's decayed
query-class histogram, and alternates two argmin steps until the modeled
total cost stops improving —

1. **route**: assign every query class to the replica whose (candidate)
   strategy prices it cheapest;
2. **recommend**: for every replica, pick the strategy that prices its
   assigned class share cheapest.

This mirrors the ``best_cost`` / ``next_cost`` stopping rule of the index
utilisation-based clustering-and-tuning loop (Hang 2024, see SNIPPETS.md):
an iteration is only accepted while ``next_cost < best_cost``, so the cost
trajectory is strictly decreasing and — costs being drawn from the finite
(class × strategy) table — the loop always terminates.  Both properties are
pinned by tests.

Applying a result never blocks routing: the winning assignment is installed
as the router's pinned table (an atomic dict swap) and any replica whose
recommended strategy differs from its current one is rebuilt *in the
background* through the epoch-swap machinery
(:meth:`~repro.fleet.replica.FleetReplica.rebuild_to`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.fleet.router import QueryClass, QueryFingerprint
from repro.obs.runtime import global_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import ReplicaFleet

#: Strategy candidates a tuner considers for rebuilds, cheapest-spectrum to
#: baseline.  All answer identically; only the modeled (and real) cost
#: differs.  ``bitset`` is omitted as an alias of ``msbfs``.
DEFAULT_TUNER_CANDIDATES = ("closure", "dfs", "ferrari", "grail", "msbfs")


@dataclass
class RetuneResult:
    """Outcome of one :meth:`FleetTuner.retune` round."""

    applied: bool
    #: Modeled total workload cost after each accepted iteration (the first
    #: entry is the pre-tuning cost under the current strategies).  Strictly
    #: decreasing past the first entry.
    cost_trajectory: List[float] = field(default_factory=list)
    #: Winning fingerprint → replica-index assignment.
    assignment: Dict[QueryFingerprint, int] = field(default_factory=dict)
    #: Recommended strategy per replica, in replica order.
    strategies: Tuple[str, ...] = ()
    #: Replica ids whose rebuild was kicked off by this round.
    rebuilds: Tuple[int, ...] = ()
    reason: str = ""

    @property
    def modeled_cost(self) -> Optional[float]:
        return self.cost_trajectory[-1] if self.cost_trajectory else None


class FleetTuner:
    """Re-clusters the recent workload and re-specialises replicas."""

    def __init__(
        self,
        fleet: "ReplicaFleet",
        candidates: Sequence[str] = DEFAULT_TUNER_CANDIDATES,
    ) -> None:
        if not candidates:
            raise ValueError("the tuner needs at least one candidate strategy")
        self.fleet = fleet
        self.candidates = tuple(candidates)
        self.retune_count = 0
        self.last_result: Optional[RetuneResult] = None
        self.last_error: Optional[BaseException] = None
        #: One retune at a time; concurrent requests coalesce into a no-op.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def class_cost(self, query_class: QueryClass, strategy: str) -> float:
        """Weighted modeled cost of one class under a hypothetical strategy.

        Costed on the primary replica's planner: every replica shares the
        same graph statistics, so the price depends only on the strategy —
        which is what makes the (class × strategy) cost table finite and the
        loop below terminating.
        """
        query = query_class.as_query()
        planner = self.fleet.replicas[0].planner
        return query_class.weight * planner.estimate_query_cost(
            query, local_index=strategy
        )

    # ------------------------------------------------------------------ #
    # the clustering-and-tuning loop
    # ------------------------------------------------------------------ #
    def cluster_and_tune(
        self, classes: Sequence[QueryClass]
    ) -> Tuple[Tuple[str, ...], Dict[QueryFingerprint, int], List[float]]:
        """Alternate route/recommend argmin steps until cost stops falling.

        Returns ``(strategies, assignment, cost_trajectory)``.  The
        trajectory starts at the modeled cost under the replicas' *current*
        strategies and appends one entry per accepted iteration; acceptance
        requires a strict decrease (``next_cost < best_cost``), so it is
        strictly decreasing and finite.
        """
        replicas = self.fleet.replicas
        cost_cache: Dict[Tuple[QueryFingerprint, str], float] = {}

        def cost(query_class: QueryClass, strategy: str) -> float:
            key = (query_class.fingerprint, strategy)
            if key not in cost_cache:
                cost_cache[key] = self.class_cost(query_class, strategy)
            return cost_cache[key]

        def assign(configs: Sequence[str]) -> Dict[QueryFingerprint, int]:
            return {
                query_class.fingerprint: min(
                    range(len(configs)),
                    key=lambda i: (cost(query_class, configs[i]), i),
                )
                for query_class in classes
            }

        def recommend(
            assignment: Dict[QueryFingerprint, int], current: Sequence[str]
        ) -> List[str]:
            recommended = []
            for index, replica in enumerate(replicas):
                share = [
                    query_class
                    for query_class in classes
                    if assignment[query_class.fingerprint] == index
                ]
                if not share:
                    # An idle replica volunteers for the most-regretful
                    # class — the one paying the most over its global-best
                    # price — so the next assign step can peel it off onto
                    # this replica.  Pure coordinate descent would keep the
                    # idle strategy forever and strand the whole workload on
                    # one replica.  No positive regret → keep the strategy.
                    volunteer = current[index]
                    best_regret = 0.0
                    for query_class in classes:
                        paying = cost(
                            query_class,
                            current[assignment[query_class.fingerprint]],
                        )
                        cheapest, candidate = min(
                            (cost(query_class, name), name)
                            for name in self.candidates
                        )
                        regret = paying - cheapest
                        if regret > best_regret:
                            best_regret, volunteer = regret, candidate
                    recommended.append(volunteer)
                    continue
                recommended.append(
                    min(
                        self.candidates,
                        key=lambda s: (
                            sum(cost(query_class, s) for query_class in share),
                            s,
                        ),
                    )
                )
            return recommended

        def total(
            assignment: Dict[QueryFingerprint, int], configs: Sequence[str]
        ) -> float:
            return sum(
                cost(query_class, configs[assignment[query_class.fingerprint]])
                for query_class in classes
            )

        configs: List[str] = [replica.strategy for replica in replicas]
        assignment = assign(configs)
        best_cost = total(assignment, configs)
        trajectory = [best_cost]
        while True:
            next_configs = recommend(assignment, configs)
            next_assignment = assign(next_configs)
            next_cost = total(next_assignment, next_configs)
            if next_cost < best_cost:
                configs, assignment, best_cost = (
                    next_configs,
                    next_assignment,
                    next_cost,
                )
                trajectory.append(next_cost)
            else:
                break
        return tuple(configs), assignment, trajectory

    # ------------------------------------------------------------------ #
    # applying a round
    # ------------------------------------------------------------------ #
    def retune(self) -> RetuneResult:
        """Run one clustering-and-tuning round and apply the result.

        Installs the winning routing table atomically and schedules a
        *background* rebuild for every replica whose recommended strategy
        changed — in-flight queries keep reading each replica's current
        epoch throughout.  Serialised: a round that arrives while another is
        running returns a coalesced no-op.
        """
        if not self._lock.acquire(blocking=False):
            return RetuneResult(applied=False, reason="retune already running")
        registry = global_registry()
        try:
            classes = self.fleet.router.histogram.snapshot()
            if not classes:
                result = RetuneResult(applied=False, reason="empty workload")
                if registry.enabled:
                    registry.inc("dsr_fleet_retunes_total", outcome="noop")
            else:
                strategies, assignment, trajectory = self.cluster_and_tune(classes)
                self.fleet.router.install_table(assignment)
                rebuilds = []
                for replica, strategy in zip(self.fleet.replicas, strategies):
                    if strategy != replica.strategy and replica.rebuild_to(
                        strategy, background=True
                    ):
                        rebuilds.append(replica.replica_id)
                result = RetuneResult(
                    applied=True,
                    cost_trajectory=trajectory,
                    assignment=assignment,
                    strategies=strategies,
                    rebuilds=tuple(rebuilds),
                    reason=f"clustered {len(classes)} classes",
                )
                if registry.enabled:
                    registry.inc("dsr_fleet_retunes_total", outcome="applied")
                    registry.set_gauge(
                        "dsr_fleet_modeled_cost", trajectory[-1]
                    )
            self.retune_count += 1
            self.last_result = result
            self.last_error = None
            return result
        except BaseException as exc:
            self.last_error = exc
            if registry.enabled:
                registry.inc("dsr_fleet_retunes_total", outcome="error")
            raise
        finally:
            self._lock.release()


__all__ = ["DEFAULT_TUNER_CANDIDATES", "FleetTuner", "RetuneResult"]
