"""Wire protocol of the DSR query service.

Requests and responses are plain dataclasses so they can be passed to
:meth:`~repro.service.server.DSRService.handle` in-process without any
serialisation.  For remote clients the same messages travel over a local
socket as newline-delimited JSON: :func:`encode` / :func:`decode` map a
message to/from a JSON-safe dict tagged with its ``kind`` and the protocol
``version``, and :func:`send_message` / :func:`recv_message` frame one
message per line on a file-like stream.

The query message is not a parallel definition of the query shape: since
protocol version 2, :class:`QueryRequest` *is* a
:class:`~repro.api.query.ReachQuery` (a subclass that only translates
validation failures into :class:`ProtocolError`), so the service, the engine
and the wire all share one query object.

The message set mirrors the four things a client can do with a running
engine:

* ``QueryRequest`` — a set-reachability query ``S ⇝ T`` (a serialised
  :class:`~repro.api.query.ReachQuery`);
* ``UpdateRequest`` — one incremental graph update (or an explicit flush);
* ``StatsRequest`` — the service's own serving metrics;
* ``SnapshotRequest`` — the simulated cluster's execution/communication
  counters (:meth:`SimulatedCluster.snapshot`);
* ``MetricsRequest`` — the combined metrics registries in Prometheus text
  exposition format (protocol version 3+).

Versioning
----------
Every encoded frame carries a ``version`` tag (:data:`PROTOCOL_VERSION`).
Since version 3 the protocol negotiates per-frame: :func:`decode` accepts any
version in ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` (and reports the
frame's version through :func:`wire_version` / :func:`recv_message_versioned`
so a server can answer at the client's version), while :func:`encode` takes a
target ``version`` and strips fields the older peer does not know
(:data:`_VERSION_GATED_FIELDS`).  Frames outside the supported range are
rejected with a clear :class:`ProtocolError`, so the wire format can evolve
without silent misinterpretation.  Frames without a ``version`` tag
(hand-rolled payloads, pre-versioning peers) are accepted and treated as the
current version.

Framing
-------
Two stream framings carry the same tagged dicts:

* **newline-delimited JSON** (:func:`send_message` / :func:`recv_message`) —
  one JSON object per line; every protocol version speaks it, and it stays
  the compatibility path for old peers;
* **binary length-prefixed frames** (:func:`pack_frame` /
  :func:`unpack_frame`) — ``[u32 length][u8 version][body]`` where ``length``
  covers the version byte plus the body and the body is the same JSON
  payload, optionally tagged with a connection-scoped request ``id`` so many
  requests can be in flight on one connection (multiplexing).  Binary framing
  is a *capability of protocol version 5+*
  (:data:`BINARY_FRAMING_MIN_VERSION`): the async front door
  (:mod:`repro.service.aio`) speaks it natively and auto-detects old
  newline-JSON peers from the first byte.

Both framings are bounded: oversized frames/lines raise
:class:`OversizedFrameError` (a :class:`ProtocolError`) instead of buffering
without limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

import json
import struct

from repro.api.query import ReachQuery

#: Version of the wire format emitted by :func:`encode` by default.  Bump
#: whenever the shape or meaning of a message changes.  Version 1 was the
#: unversioned pre-``repro.api`` format; version 2 serialises
#: :class:`~repro.api.query.ReachQuery` as the query message; version 3 adds
#: the optional ``trace`` fields on query messages and the ``metrics``
#: exposition request; version 4 adds the optional ``tenant`` label on query
#: messages (the fleet router's workload fingerprint); version 5 adds the
#: binary length-prefixed framing capability (with per-frame request ids)
#: spoken by the async front door; version 6 adds the optional
#: ``deadline_ms`` end-to-end budget on query messages.
PROTOCOL_VERSION = 6

#: Oldest peer version this side still understands.  Version-2 and -3 peers
#: simply never see the later additions (all of which are optional fields or
#: new message kinds).
MIN_PROTOCOL_VERSION = 2

#: First protocol version whose peers may speak the binary length-prefixed
#: framing.  Older peers keep speaking newline-delimited JSON; a version-5
#: server accepts both on the same port.
BINARY_FRAMING_MIN_VERSION = 5

#: Default cap on one binary frame (version byte + body).  Frames above the
#: cap are rejected with :class:`OversizedFrameError` before any buffering.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Default cap on one newline-JSON line.  Connections exceeding it get a
#: clean protocol error instead of growing an unbounded read buffer.
MAX_LINE_BYTES = 1024 * 1024

#: Update operations accepted by :class:`UpdateRequest`.
UPDATE_OPS = ("insert-edge", "delete-edge", "insert-vertex", "delete-vertex", "flush")


class ProtocolError(ValueError):
    """Raised when a message cannot be encoded or decoded."""


class OversizedFrameError(ProtocolError):
    """A frame (binary) or line (JSON) exceeds the configured size cap.

    Servers treat this as a fatal per-connection error: the peer gets a
    clean ``error`` response naming the cap, then the connection closes —
    the alternative is buffering attacker-controlled bytes without bound.
    """


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
class QueryRequest(ReachQuery):
    """``S ⇝ T`` set-reachability query — the wire form of ``ReachQuery``.

    Identical fields and semantics; the only difference is that malformed
    values raise :class:`ProtocolError` (as every protocol message does)
    instead of the API-level ``QueryError``.
    """

    def __post_init__(self) -> None:
        try:
            super().__post_init__()
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    @classmethod
    def from_query(cls, query: ReachQuery) -> "QueryRequest":
        """Wrap a :class:`ReachQuery` for the wire (no-op on instances)."""
        if isinstance(query, cls):
            return query
        return cls(
            sources=query.sources,
            targets=query.targets,
            direction=query.direction,
            use_cache=query.use_cache,
            max_batch_pairs=query.max_batch_pairs,
            representation=query.representation,
            trace=query.trace,
            tenant=query.tenant,
            deadline_ms=query.deadline_ms,
        )


@dataclass(frozen=True)
class UpdateRequest:
    """One incremental update against the served graph.

    ``op`` is one of :data:`UPDATE_OPS`; edge operations use ``u`` and ``v``,
    ``delete-vertex`` uses ``u``, ``insert-vertex`` optionally uses ``u`` (the
    requested vertex id) and ``partition_id``, and ``flush`` takes no
    arguments.
    """

    op: str
    u: Optional[int] = None
    v: Optional[int] = None
    partition_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in UPDATE_OPS:
            raise ProtocolError(f"unknown update op {self.op!r}")


@dataclass(frozen=True)
class StatsRequest:
    """Ask the service for its serving metrics."""


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask the service for the cluster's *cumulative* execution snapshot.

    Counters cover everything since the index build (builds, maintenance
    flushes and every query — concurrent queries fold their exact counters
    in).  For per-query communication numbers read the per-response
    ``messages_sent`` / ``bytes_sent`` fields of :class:`QueryResponse`
    instead.
    """


@dataclass(frozen=True)
class MetricsRequest:
    """Ask the service for its metrics in Prometheus text exposition format.

    Protocol version 3+.  The reply combines the service's own serving
    registry with the process-global engine registry (see
    :mod:`repro.obs`), ready to be scraped or dumped to a terminal.
    """


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryResponse:
    """Answer to a :class:`QueryRequest`."""

    pairs: Tuple[Tuple[int, int], ...]
    cached: bool = False
    direction: str = "forward"
    num_batches: int = 1
    latency_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Index epoch the answer is consistent with (-1 when unknown/legacy).
    epoch: int = -1
    #: Structured per-query trace as a JSON-safe dict
    #: (:meth:`repro.obs.trace.QueryTrace.to_dict`) when the query asked for
    #: one, else ``None``.  Protocol version 3+; stripped for older peers.
    trace: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pairs", tuple(sorted(tuple(pair) for pair in self.pairs))
        )

    @property
    def query_trace(self):
        """The trace rebuilt as a :class:`~repro.obs.trace.QueryTrace`."""
        if self.trace is None:
            return None
        from repro.obs.trace import QueryTrace

        return QueryTrace.from_dict(self.trace)

    @property
    def pair_set(self) -> set:
        return set(self.pairs)


@dataclass(frozen=True)
class UpdateResponse:
    """Answer to an :class:`UpdateRequest`."""

    op: str
    structural_change: bool = False
    affected_partitions: Tuple[int, ...] = ()
    vertex: Optional[int] = None
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "affected_partitions", tuple(sorted(self.affected_partitions))
        )


@dataclass(frozen=True)
class StatsResponse:
    """Serving metrics (latency percentiles, cache hit rate, throughput)."""

    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotResponse:
    """Cluster execution/communication counters."""

    snapshot: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsResponse:
    """Prometheus-style text exposition of the service's metrics registries."""

    text: str = ""


@dataclass(frozen=True)
class ErrorResponse:
    """Reported instead of a normal response when a request fails."""

    error: str
    message: str


_MESSAGE_TYPES = {
    "query": QueryRequest,
    "update": UpdateRequest,
    "stats": StatsRequest,
    "snapshot": SnapshotRequest,
    "metrics": MetricsRequest,
    "query-result": QueryResponse,
    "update-result": UpdateResponse,
    "stats-result": StatsResponse,
    "snapshot-result": SnapshotResponse,
    "metrics-result": MetricsResponse,
    "error": ErrorResponse,
}
_KIND_OF = {cls: kind for kind, cls in _MESSAGE_TYPES.items()}

#: Field names per message class, precomputed for :func:`encode`.  Every
#: message is a flat dataclass of JSON-safe values, so a shallow per-field
#: dict is equivalent to ``dataclasses.asdict`` minus its recursive
#: deepcopy — which dominated the serving hot path.
_FIELD_NAMES_OF = {
    cls: tuple(f.name for f in fields(cls)) for cls in _MESSAGE_TYPES.values()
}

#: First protocol version that knows each message kind.  Kinds absent here
#: exist since the first versioned protocol.
_KIND_MIN_VERSION = {
    "metrics": 3,
    "metrics-result": 3,
}

#: Per-kind fields that only exist from a given protocol version on.
#: :func:`encode` strips them when targeting an older peer; :func:`decode`
#: tolerates their absence (they are all optional with defaults).
_VERSION_GATED_FIELDS = {
    "query": {"trace": 3, "tenant": 4, "deadline_ms": 6},
    "query-result": {"trace": 3},
}

#: Message types the service accepts as requests.  ``ReachQuery`` covers both
#: the wire-form :class:`QueryRequest` and plain API queries submitted
#: in-process.
REQUEST_TYPES = (
    ReachQuery,
    UpdateRequest,
    StatsRequest,
    SnapshotRequest,
    MetricsRequest,
)


# ---------------------------------------------------------------------- #
# JSON encoding
# ---------------------------------------------------------------------- #
def _check_target_version(version: int) -> None:
    if not isinstance(version, int) or isinstance(version, bool) or not (
        MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION
    ):
        raise ProtocolError(
            f"cannot encode for protocol version {version!r}; this side "
            f"speaks versions {MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}"
        )


def encode(message: Any, version: int = PROTOCOL_VERSION) -> Dict[str, Any]:
    """Encode a protocol message into a JSON-safe tagged dict.

    ``version`` selects the wire version to emit (a server answering an
    older client passes the client's version).  Fields the target version
    does not know are stripped; message kinds it does not know raise.
    """
    _check_target_version(version)
    if type(message) is ReachQuery:
        # A plain API query is a valid query message: promote it to its wire
        # form so the kind lookup and round-tripping stay uniform.
        message = QueryRequest.from_query(message)
    kind = _KIND_OF.get(type(message))
    if kind is None:
        raise ProtocolError(f"not a protocol message: {type(message).__name__}")
    if version < _KIND_MIN_VERSION.get(kind, MIN_PROTOCOL_VERSION):
        raise ProtocolError(
            f"message kind {kind!r} requires protocol version "
            f"{_KIND_MIN_VERSION[kind]}, encoding for version {version}"
        )
    payload = {
        name: getattr(message, name) for name in _FIELD_NAMES_OF[type(message)]
    }
    for name, min_version in _VERSION_GATED_FIELDS.get(kind, {}).items():
        if version < min_version:
            payload.pop(name, None)
    payload["kind"] = kind
    payload["version"] = version
    return payload


def wire_version(payload: Dict[str, Any]) -> int:
    """The protocol version a tagged dict was encoded at.

    Frames without a ``version`` tag are treated as the current version.
    Raises :class:`ProtocolError` for versions outside the supported range.
    """
    version = payload.get("version", PROTOCOL_VERSION) if isinstance(
        payload, dict
    ) else PROTOCOL_VERSION
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or not (MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION)
    ):
        raise ProtocolError(
            f"protocol version mismatch: peer speaks version {version!r}, "
            f"this side speaks versions "
            f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}"
        )
    return version


def decode(payload: Dict[str, Any]) -> Any:
    """Decode a tagged dict (as produced by :func:`encode`) into a message.

    Frames carrying a ``version`` outside
    ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` are rejected; frames
    without one are treated as the current version.
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ProtocolError("message payload must be a dict with a 'kind' tag")
    version = wire_version(payload)
    kind = payload["kind"]
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    if version < _KIND_MIN_VERSION.get(kind, MIN_PROTOCOL_VERSION):
        raise ProtocolError(
            f"message kind {kind!r} requires protocol version "
            f"{_KIND_MIN_VERSION[kind]}, frame claims version {version}"
        )
    known = {f.name for f in fields(cls)}
    kwargs = {name: value for name, value in payload.items() if name in known}
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind!r} message: {exc}") from exc


def dumps(message: Any, version: int = PROTOCOL_VERSION) -> str:
    """Serialise one message to a single JSON line (no trailing newline)."""
    return json.dumps(encode(message, version=version), separators=(",", ":"))


def loads(line: str) -> Any:
    """Parse one JSON line back into a protocol message."""
    return loads_versioned(line)[0]


def loads_versioned(line: str) -> Tuple[Any, int]:
    """Parse one JSON line into ``(message, wire_version)``."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    message = decode(payload)
    return message, wire_version(payload)


# ---------------------------------------------------------------------- #
# stream framing (newline-delimited JSON)
# ---------------------------------------------------------------------- #
def send_message(stream, message: Any, version: int = PROTOCOL_VERSION) -> None:
    """Write one message to a text-mode file-like stream and flush."""
    stream.write(dumps(message, version=version) + "\n")
    stream.flush()


def recv_message(stream) -> Optional[Any]:
    """Read one message from a text-mode stream; ``None`` at end of stream."""
    framed = recv_message_versioned(stream)
    return None if framed is None else framed[0]


def recv_message_versioned(
    stream, max_bytes: Optional[int] = None
) -> Optional[Tuple[Any, int]]:
    """Read one message plus the wire version its frame was encoded at.

    Servers use the version to answer each client at the version it spoke
    (:func:`send_message` with ``version=...``).  ``None`` at end of stream.
    ``max_bytes`` caps the line length: a longer line raises
    :class:`OversizedFrameError` instead of buffering the rest of the frame
    (the stream is then mid-frame, so callers should close the connection).
    """
    line = stream.readline() if max_bytes is None else stream.readline(max_bytes)
    if not line:
        return None
    if max_bytes is not None and len(line) >= max_bytes and not line.endswith("\n"):
        raise OversizedFrameError(
            f"line frame exceeds the {max_bytes}-byte cap"
        )
    line = line.strip()
    if not line:
        return None
    return loads_versioned(line)


# ---------------------------------------------------------------------- #
# binary framing ([u32 length][u8 version][JSON body]) — protocol v5+
# ---------------------------------------------------------------------- #
_FRAME_HEADER = struct.Struct(">IB")


def pack_frame(
    message: Any,
    version: int = PROTOCOL_VERSION,
    request_id: Optional[int] = None,
    max_frame_bytes: Optional[int] = None,
) -> bytes:
    """Encode one message as a binary length-prefixed frame.

    ``request_id`` tags the frame with a connection-scoped id (the ``id``
    key of the body) so responses can be matched to requests out of order —
    the multiplexing contract of the async front door.  Binary framing is a
    version-5 capability; asking for an older ``version`` raises.

    ``max_frame_bytes`` mirrors the receiver-side cap of
    :func:`unpack_frame`: an encoded frame longer than the cap raises
    :class:`OversizedFrameError` *before* anything hits the wire, so a
    sender can substitute a typed error instead of shipping a frame the
    peer is guaranteed to reject (and kill the connection over).
    """
    if version < BINARY_FRAMING_MIN_VERSION:
        raise ProtocolError(
            f"binary framing requires protocol version "
            f"{BINARY_FRAMING_MIN_VERSION}+, encoding for version {version}"
        )
    payload = encode(message, version=version)
    if request_id is not None:
        payload["id"] = request_id
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if max_frame_bytes is not None and 1 + len(body) > max_frame_bytes:
        raise OversizedFrameError(
            f"encoded {type(message).__name__} frame of {1 + len(body)} bytes "
            f"exceeds the {max_frame_bytes}-byte cap"
        )
    return _FRAME_HEADER.pack(1 + len(body), version) + body


def unpack_frame(
    buffer, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[Tuple[Any, int, Optional[int], int]]:
    """Parse one binary frame off the front of ``buffer`` (bytes-like).

    Returns ``(message, wire_version, request_id, bytes_consumed)``, or
    ``None`` when the buffer does not yet hold a complete frame (read more
    and retry).  Frames longer than ``max_frame_bytes`` raise
    :class:`OversizedFrameError` *from the header alone* — the oversized
    body is never buffered.
    """
    if len(buffer) < _FRAME_HEADER.size:
        return None
    length, version_byte = _FRAME_HEADER.unpack_from(buffer, 0)
    if length < 1:
        raise ProtocolError(f"invalid binary frame length {length}")
    if length > max_frame_bytes:
        raise OversizedFrameError(
            f"binary frame of {length} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    if version_byte < BINARY_FRAMING_MIN_VERSION:
        raise ProtocolError(
            f"binary framing requires protocol version "
            f"{BINARY_FRAMING_MIN_VERSION}+, frame claims version {version_byte}"
        )
    total = _FRAME_HEADER.size - 1 + length
    if len(buffer) < total:
        return None
    body = bytes(buffer[_FRAME_HEADER.size : total])
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid binary frame body: {exc}") from exc
    request_id: Optional[int] = None
    if isinstance(payload, dict):
        payload.setdefault("version", version_byte)
        request_id = payload.pop("id", None)
    message = decode(payload)
    return message, wire_version(payload), request_id, total


__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "BINARY_FRAMING_MIN_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_LINE_BYTES",
    "UPDATE_OPS",
    "ProtocolError",
    "OversizedFrameError",
    "QueryRequest",
    "UpdateRequest",
    "StatsRequest",
    "SnapshotRequest",
    "MetricsRequest",
    "QueryResponse",
    "UpdateResponse",
    "StatsResponse",
    "SnapshotResponse",
    "MetricsResponse",
    "ErrorResponse",
    "REQUEST_TYPES",
    "encode",
    "decode",
    "wire_version",
    "dumps",
    "loads",
    "loads_versioned",
    "send_message",
    "recv_message",
    "recv_message_versioned",
    "pack_frame",
    "unpack_frame",
]
