"""Wire protocol of the DSR query service.

Requests and responses are plain dataclasses so they can be passed to
:meth:`~repro.service.server.DSRService.handle` in-process without any
serialisation.  For remote clients the same messages travel over a local
socket as newline-delimited JSON: :func:`encode` / :func:`decode` map a
message to/from a JSON-safe dict tagged with its ``kind`` and the protocol
``version``, and :func:`send_message` / :func:`recv_message` frame one
message per line on a file-like stream.

The query message is not a parallel definition of the query shape: since
protocol version 2, :class:`QueryRequest` *is* a
:class:`~repro.api.query.ReachQuery` (a subclass that only translates
validation failures into :class:`ProtocolError`), so the service, the engine
and the wire all share one query object.

The message set mirrors the four things a client can do with a running
engine:

* ``QueryRequest`` — a set-reachability query ``S ⇝ T`` (a serialised
  :class:`~repro.api.query.ReachQuery`);
* ``UpdateRequest`` — one incremental graph update (or an explicit flush);
* ``StatsRequest`` — the service's own serving metrics;
* ``SnapshotRequest`` — the simulated cluster's execution/communication
  counters (:meth:`SimulatedCluster.snapshot`).

Versioning
----------
Every encoded frame carries a ``version`` tag (:data:`PROTOCOL_VERSION`).
:func:`decode` rejects frames whose version differs from this peer's with a
clear :class:`ProtocolError`, so the wire format can evolve without silent
misinterpretation.  Frames without a ``version`` tag (hand-rolled payloads,
pre-versioning peers) are accepted and treated as the current version.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

import json

from repro.api.query import ReachQuery

#: Version of the wire format emitted by :func:`encode`.  Bump whenever the
#: shape or meaning of a message changes incompatibly.  Version 1 was the
#: unversioned pre-``repro.api`` format; version 2 serialises
#: :class:`~repro.api.query.ReachQuery` as the query message.
PROTOCOL_VERSION = 2

#: Update operations accepted by :class:`UpdateRequest`.
UPDATE_OPS = ("insert-edge", "delete-edge", "insert-vertex", "delete-vertex", "flush")


class ProtocolError(ValueError):
    """Raised when a message cannot be encoded or decoded."""


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
class QueryRequest(ReachQuery):
    """``S ⇝ T`` set-reachability query — the wire form of ``ReachQuery``.

    Identical fields and semantics; the only difference is that malformed
    values raise :class:`ProtocolError` (as every protocol message does)
    instead of the API-level ``QueryError``.
    """

    def __post_init__(self) -> None:
        try:
            super().__post_init__()
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    @classmethod
    def from_query(cls, query: ReachQuery) -> "QueryRequest":
        """Wrap a :class:`ReachQuery` for the wire (no-op on instances)."""
        if isinstance(query, cls):
            return query
        return cls(
            sources=query.sources,
            targets=query.targets,
            direction=query.direction,
            use_cache=query.use_cache,
            max_batch_pairs=query.max_batch_pairs,
            representation=query.representation,
        )


@dataclass(frozen=True)
class UpdateRequest:
    """One incremental update against the served graph.

    ``op`` is one of :data:`UPDATE_OPS`; edge operations use ``u`` and ``v``,
    ``delete-vertex`` uses ``u``, ``insert-vertex`` optionally uses ``u`` (the
    requested vertex id) and ``partition_id``, and ``flush`` takes no
    arguments.
    """

    op: str
    u: Optional[int] = None
    v: Optional[int] = None
    partition_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in UPDATE_OPS:
            raise ProtocolError(f"unknown update op {self.op!r}")


@dataclass(frozen=True)
class StatsRequest:
    """Ask the service for its serving metrics."""


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask the service for the cluster's *cumulative* execution snapshot.

    Counters cover everything since the index build (builds, maintenance
    flushes and every query — concurrent queries fold their exact counters
    in).  For per-query communication numbers read the per-response
    ``messages_sent`` / ``bytes_sent`` fields of :class:`QueryResponse`
    instead.
    """


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryResponse:
    """Answer to a :class:`QueryRequest`."""

    pairs: Tuple[Tuple[int, int], ...]
    cached: bool = False
    direction: str = "forward"
    num_batches: int = 1
    latency_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Index epoch the answer is consistent with (-1 when unknown/legacy).
    epoch: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pairs", tuple(sorted(tuple(pair) for pair in self.pairs))
        )

    @property
    def pair_set(self) -> set:
        return set(self.pairs)


@dataclass(frozen=True)
class UpdateResponse:
    """Answer to an :class:`UpdateRequest`."""

    op: str
    structural_change: bool = False
    affected_partitions: Tuple[int, ...] = ()
    vertex: Optional[int] = None
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "affected_partitions", tuple(sorted(self.affected_partitions))
        )


@dataclass(frozen=True)
class StatsResponse:
    """Serving metrics (latency percentiles, cache hit rate, throughput)."""

    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotResponse:
    """Cluster execution/communication counters."""

    snapshot: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorResponse:
    """Reported instead of a normal response when a request fails."""

    error: str
    message: str


_MESSAGE_TYPES = {
    "query": QueryRequest,
    "update": UpdateRequest,
    "stats": StatsRequest,
    "snapshot": SnapshotRequest,
    "query-result": QueryResponse,
    "update-result": UpdateResponse,
    "stats-result": StatsResponse,
    "snapshot-result": SnapshotResponse,
    "error": ErrorResponse,
}
_KIND_OF = {cls: kind for kind, cls in _MESSAGE_TYPES.items()}

#: Message types the service accepts as requests.  ``ReachQuery`` covers both
#: the wire-form :class:`QueryRequest` and plain API queries submitted
#: in-process.
REQUEST_TYPES = (ReachQuery, UpdateRequest, StatsRequest, SnapshotRequest)


# ---------------------------------------------------------------------- #
# JSON encoding
# ---------------------------------------------------------------------- #
def encode(message: Any) -> Dict[str, Any]:
    """Encode a protocol message into a JSON-safe tagged dict."""
    if type(message) is ReachQuery:
        # A plain API query is a valid query message: promote it to its wire
        # form so the kind lookup and round-tripping stay uniform.
        message = QueryRequest.from_query(message)
    kind = _KIND_OF.get(type(message))
    if kind is None:
        raise ProtocolError(f"not a protocol message: {type(message).__name__}")
    payload = asdict(message)
    payload["kind"] = kind
    payload["version"] = PROTOCOL_VERSION
    return payload


def decode(payload: Dict[str, Any]) -> Any:
    """Decode a tagged dict (as produced by :func:`encode`) into a message.

    Frames carrying a ``version`` different from :data:`PROTOCOL_VERSION`
    are rejected; frames without one are treated as the current version.
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ProtocolError("message payload must be a dict with a 'kind' tag")
    version = payload.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks version {version!r}, "
            f"this side speaks version {PROTOCOL_VERSION}"
        )
    kind = payload["kind"]
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    known = {f.name for f in fields(cls)}
    kwargs = {name: value for name, value in payload.items() if name in known}
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind!r} message: {exc}") from exc


def dumps(message: Any) -> str:
    """Serialise one message to a single JSON line (no trailing newline)."""
    return json.dumps(encode(message), separators=(",", ":"))


def loads(line: str) -> Any:
    """Parse one JSON line back into a protocol message."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    return decode(payload)


# ---------------------------------------------------------------------- #
# stream framing (newline-delimited JSON)
# ---------------------------------------------------------------------- #
def send_message(stream, message: Any) -> None:
    """Write one message to a text-mode file-like stream and flush."""
    stream.write(dumps(message) + "\n")
    stream.flush()


def recv_message(stream) -> Optional[Any]:
    """Read one message from a text-mode stream; ``None`` at end of stream."""
    line = stream.readline()
    if not line:
        return None
    line = line.strip()
    if not line:
        return None
    return loads(line)


__all__ = [
    "PROTOCOL_VERSION",
    "UPDATE_OPS",
    "ProtocolError",
    "QueryRequest",
    "UpdateRequest",
    "StatsRequest",
    "SnapshotRequest",
    "QueryResponse",
    "UpdateResponse",
    "StatsResponse",
    "SnapshotResponse",
    "ErrorResponse",
    "REQUEST_TYPES",
    "encode",
    "decode",
    "dumps",
    "loads",
    "send_message",
    "recv_message",
]
