"""Wire protocol of the DSR query service.

Requests and responses are plain dataclasses so they can be passed to
:meth:`~repro.service.server.DSRService.handle` in-process without any
serialisation.  For remote clients the same messages travel over a local
socket as newline-delimited JSON: :func:`encode` / :func:`decode` map a
message to/from a JSON-safe dict tagged with its ``kind``, and
:func:`send_message` / :func:`recv_message` frame one message per line on a
file-like stream.

The message set mirrors the four things a client can do with a running
:class:`~repro.core.engine.DSREngine`:

* ``QueryRequest`` — a set-reachability query ``S ⇝ T``;
* ``UpdateRequest`` — one incremental graph update (or an explicit flush);
* ``StatsRequest`` — the service's own serving metrics;
* ``SnapshotRequest`` — the simulated cluster's execution/communication
  counters (:meth:`SimulatedCluster.snapshot`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

import json

#: Update operations accepted by :class:`UpdateRequest`.
UPDATE_OPS = ("insert-edge", "delete-edge", "insert-vertex", "delete-vertex", "flush")


class ProtocolError(ValueError):
    """Raised when a message cannot be encoded or decoded."""


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryRequest:
    """``S ⇝ T`` set-reachability query."""

    sources: Tuple[int, ...]
    targets: Tuple[int, ...]
    direction: str = "auto"
    use_cache: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        object.__setattr__(self, "targets", tuple(self.targets))
        if self.direction not in ("auto", "forward", "backward"):
            raise ProtocolError(f"unknown query direction {self.direction!r}")


@dataclass(frozen=True)
class UpdateRequest:
    """One incremental update against the served graph.

    ``op`` is one of :data:`UPDATE_OPS`; edge operations use ``u`` and ``v``,
    ``delete-vertex`` uses ``u``, ``insert-vertex`` optionally uses ``u`` (the
    requested vertex id) and ``partition_id``, and ``flush`` takes no
    arguments.
    """

    op: str
    u: Optional[int] = None
    v: Optional[int] = None
    partition_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in UPDATE_OPS:
            raise ProtocolError(f"unknown update op {self.op!r}")


@dataclass(frozen=True)
class StatsRequest:
    """Ask the service for its serving metrics."""


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask the service for the cluster's last execution snapshot."""


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryResponse:
    """Answer to a :class:`QueryRequest`."""

    pairs: Tuple[Tuple[int, int], ...]
    cached: bool = False
    direction: str = "forward"
    num_batches: int = 1
    latency_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pairs", tuple(sorted(tuple(pair) for pair in self.pairs))
        )

    @property
    def pair_set(self) -> set:
        return set(self.pairs)


@dataclass(frozen=True)
class UpdateResponse:
    """Answer to an :class:`UpdateRequest`."""

    op: str
    structural_change: bool = False
    affected_partitions: Tuple[int, ...] = ()
    vertex: Optional[int] = None
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "affected_partitions", tuple(sorted(self.affected_partitions))
        )


@dataclass(frozen=True)
class StatsResponse:
    """Serving metrics (latency percentiles, cache hit rate, throughput)."""

    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotResponse:
    """Cluster execution/communication counters."""

    snapshot: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorResponse:
    """Reported instead of a normal response when a request fails."""

    error: str
    message: str


_MESSAGE_TYPES = {
    "query": QueryRequest,
    "update": UpdateRequest,
    "stats": StatsRequest,
    "snapshot": SnapshotRequest,
    "query-result": QueryResponse,
    "update-result": UpdateResponse,
    "stats-result": StatsResponse,
    "snapshot-result": SnapshotResponse,
    "error": ErrorResponse,
}
_KIND_OF = {cls: kind for kind, cls in _MESSAGE_TYPES.items()}

REQUEST_TYPES = (QueryRequest, UpdateRequest, StatsRequest, SnapshotRequest)


# ---------------------------------------------------------------------- #
# JSON encoding
# ---------------------------------------------------------------------- #
def encode(message: Any) -> Dict[str, Any]:
    """Encode a protocol message into a JSON-safe tagged dict."""
    kind = _KIND_OF.get(type(message))
    if kind is None:
        raise ProtocolError(f"not a protocol message: {type(message).__name__}")
    payload = asdict(message)
    payload["kind"] = kind
    return payload


def decode(payload: Dict[str, Any]) -> Any:
    """Decode a tagged dict (as produced by :func:`encode`) into a message."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ProtocolError("message payload must be a dict with a 'kind' tag")
    kind = payload["kind"]
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    known = {f.name for f in fields(cls)}
    kwargs = {name: value for name, value in payload.items() if name in known}
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind!r} message: {exc}") from exc


def dumps(message: Any) -> str:
    """Serialise one message to a single JSON line (no trailing newline)."""
    return json.dumps(encode(message), separators=(",", ":"))


def loads(line: str) -> Any:
    """Parse one JSON line back into a protocol message."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    return decode(payload)


# ---------------------------------------------------------------------- #
# stream framing (newline-delimited JSON)
# ---------------------------------------------------------------------- #
def send_message(stream, message: Any) -> None:
    """Write one message to a text-mode file-like stream and flush."""
    stream.write(dumps(message) + "\n")
    stream.flush()


def recv_message(stream) -> Optional[Any]:
    """Read one message from a text-mode stream; ``None`` at end of stream."""
    line = stream.readline()
    if not line:
        return None
    line = line.strip()
    if not line:
        return None
    return loads(line)


__all__ = [
    "UPDATE_OPS",
    "ProtocolError",
    "QueryRequest",
    "UpdateRequest",
    "StatsRequest",
    "SnapshotRequest",
    "QueryResponse",
    "UpdateResponse",
    "StatsResponse",
    "SnapshotResponse",
    "ErrorResponse",
    "REQUEST_TYPES",
    "encode",
    "decode",
    "dumps",
    "loads",
    "send_message",
    "recv_message",
]
