"""Async binary front door for the DSR query service.

:class:`DSRAsyncServer` serves an existing :class:`~repro.service.server.DSRService`
on an :mod:`asyncio` event loop.  One acceptor loop and zero threads per
connection replace the thread-per-connection :class:`DSRSocketServer`, which
is what lets the front door hold tens of thousands of idle connections: a
parked connection costs a transport object, not a stack.

Framing
-------
Connections speak the protocol-v5 **binary length-prefixed framing**
(:func:`repro.service.protocol.pack_frame` / :func:`unpack_frame`):
``[u32 length][u8 version][JSON body]``, with a connection-scoped request
``id`` in the body so many requests can be in flight per connection and
responses may return out of order (**multiplexing**).  The first byte of a
connection picks its framing: ``{`` (0x7b) means a legacy newline-JSON peer
(every v2..v4 client, including :class:`~repro.service.server.DSRClient`)
and the connection is served line-framed, one request at a time, replies
encoded at the peer's wire version; any frame under the size cap starts
with 0x00, so the detection is unambiguous.  Both framings share the
per-frame version negotiation of :mod:`repro.service.protocol`.

Backpressure
------------
The server never buffers unboundedly ahead of the service:

* when the service's admission queue reaches the **high watermark**, every
  connection's transport is paused (``transport.pause_reading``) — bytes
  stay in the kernel socket buffers and TCP pushes back on the peers;
  reading resumes when in-flight work drains below the **low watermark**;
* requests the service sheds (:class:`ServiceOverloadedError`) come back as
  a typed ``error`` response, so an overloaded server degrades by rejecting
  crisply instead of collapsing;
* per-connection frame reassembly is capped (:data:`MAX_FRAME_BYTES` /
  :data:`MAX_LINE_BYTES`) — an oversized frame gets a clean error and the
  connection closed.

Tenancy
-------
Query messages may carry a ``tenant`` label (protocol v4+).  The front door
gives each tenant a **token bucket** (``rate_limit_qps`` sustained,
``rate_limit_burst`` burst); a tenant over budget receives a typed
``RateLimitedError`` response without the request ever touching the
admission queue.  Per-tenant request latency is recorded into the service's
:class:`~repro.obs.registry.MetricsRegistry` as the
``dsr_tenant_request_seconds`` histogram (label ``tenant``), so per-tenant
SLO percentiles (p50/p95/p99) ride the existing ``stats()``/Prometheus
exposition.

Execution
---------
Requests are executed by the service's existing worker thread pool:
:meth:`DSRService.submit` returns a ``concurrent.futures.Future`` that the
event loop awaits via :func:`asyncio.wrap_future` — the engine's lock-free
epoch-read semantics are untouched, and the event loop never blocks on a
query.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import socket
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from repro.api.query import ReachQuery
from repro.service.protocol import (
    ErrorResponse,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    OversizedFrameError,
    PROTOCOL_VERSION,
    ProtocolError,
    QueryRequest,
    REQUEST_TYPES,
    StatsRequest,
    UpdateRequest,
    dumps,
    loads_versioned,
    pack_frame,
    unpack_frame,
)
from repro.service.server import DSRService, ServiceOverloadedError


class RateLimitedError(RuntimeError):
    """A tenant exceeded its token-bucket budget; the request was not run."""


# ---------------------------------------------------------------------- #
# token bucket
# ---------------------------------------------------------------------- #
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Single-threaded by design — it lives on the event loop, so no lock.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()

    def try_acquire(self, amount: float = 1.0) -> bool:
        now = time.monotonic()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


# ---------------------------------------------------------------------- #
# per-connection protocol
# ---------------------------------------------------------------------- #
class _Connection(asyncio.Protocol):
    """One client connection: framing autodetect, multiplexing, flow control."""

    def __init__(self, server: "DSRAsyncServer") -> None:
        self.server = server
        self.transport: Optional[asyncio.Transport] = None
        self._buffer = bytearray()
        #: None until the first byte decides: True = binary frames,
        #: False = newline-JSON compat.
        self._binary: Optional[bool] = None
        self._paused = False
        self._closing = False
        self._tasks: Set[asyncio.Task] = set()
        #: Compat mode answers strictly in order (old clients expect it):
        #: requests chain on this future instead of running concurrently.
        #: The slot is reserved synchronously in _dispatch, so a later
        #: request in the same read batch can never overtake an earlier one.
        self._compat_tail: Optional[asyncio.Future] = None
        #: Replies produced synchronously while draining one read batch are
        #: coalesced here and written with a single transport.write — one
        #: send syscall for a whole pipelined burst instead of one each.
        self._out: list = []

    # -- transport lifecycle ------------------------------------------- #
    def connection_made(self, transport) -> None:
        self.transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - best effort
                pass
        self.server._register(self)

    def connection_lost(self, exc) -> None:
        self._closing = True
        for task in self._tasks:
            task.cancel()
        self.server._unregister(self)

    # -- flow control --------------------------------------------------- #
    def maybe_pause(self) -> None:
        if not self._paused and self.transport is not None and not self._closing:
            self._paused = True
            try:
                self.transport.pause_reading()
            except RuntimeError:  # pragma: no cover - already closing
                return
            self.server.metrics.inc("dsr_conn_paused_total")

    def maybe_resume(self) -> None:
        if self._paused and self.transport is not None and not self._closing:
            self._paused = False
            try:
                self.transport.resume_reading()
            except RuntimeError:  # pragma: no cover - already closing
                pass

    # -- inbound bytes --------------------------------------------------- #
    def data_received(self, data: bytes) -> None:
        self._buffer.extend(data)
        if self._binary is None and self._buffer:
            # First byte decides the framing for the whole connection:
            # JSON lines start with '{'; binary frames under the cap with 0x00.
            self._binary = self._buffer[0] != 0x7B
        try:
            if self._binary:
                self._drain_binary()
            else:
                self._drain_lines()
        except OversizedFrameError as exc:
            self._fail("OversizedFrameError", str(exc))
        except ProtocolError as exc:
            self._fail("ProtocolError", str(exc))
        finally:
            self._flush_out()

    def _flush_out(self) -> None:
        if not self._out:
            return
        payload = b"".join(self._out)
        self._out.clear()
        if self.transport is None or self._closing:
            return
        try:
            self.transport.write(payload)
        except (OSError, RuntimeError):  # pragma: no cover - peer went away
            self._closing = True

    def _drain_binary(self) -> None:
        while not self._closing:
            framed = unpack_frame(self._buffer, self.server.max_frame_bytes)
            if framed is None:
                if len(self._buffer) > self.server.max_frame_bytes + 8:
                    raise OversizedFrameError(
                        "frame reassembly buffer exceeded the "
                        f"{self.server.max_frame_bytes}-byte cap"
                    )
                return
            message, version, request_id, consumed = framed
            del self._buffer[:consumed]
            self._dispatch(message, version, request_id)

    def _drain_lines(self) -> None:
        while not self._closing:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > self.server.max_line_bytes:
                    raise OversizedFrameError(
                        f"line frame exceeds the {self.server.max_line_bytes}"
                        "-byte cap"
                    )
                return
            line = bytes(self._buffer[:newline]).strip()
            del self._buffer[: newline + 1]
            if not line:
                continue
            message, version = loads_versioned(line.decode("utf-8"))
            self._dispatch(message, version, None)

    # -- request handling ------------------------------------------------ #
    def _dispatch(self, message: Any, version: int, request_id: Optional[int]) -> None:
        if not isinstance(message, REQUEST_TYPES):
            self._send(
                ErrorResponse(
                    "ProtocolError",
                    f"{type(message).__name__} is not a request message",
                ),
                version,
                request_id,
            )
            return
        server = self.server
        # Synchronous fast path: a throttle or a cache hit is answered right
        # here — no task object, no compat future chain, no worker handoff.
        # Binary peers are multiplexed by id, so reply order never matters;
        # compat (in-order) peers may only take it when no request is
        # pending at all — neither a reserved ordering slot nor a task
        # still waiting for its first run.
        admitted = False
        if self._binary is not False or (
            not self._tasks
            and (self._compat_tail is None or self._compat_tail.done())
        ):
            started = time.perf_counter()
            tenant = getattr(message, "tenant", None)
            if not server._admit_tenant(tenant):
                self._send(
                    _throttled_response(server, tenant),
                    version,
                    request_id,
                    buffered=True,
                )
                return
            fast = server.service.handle_nowait(message)
            if fast is not None:
                self._send(fast, version, request_id, buffered=True)
                server._observe(tenant, message, time.perf_counter() - started)
                return
            admitted = True
        previous: Optional[asyncio.Future] = None
        tail: Optional[asyncio.Future] = None
        if self._binary is False:
            # Reserve the ordering slot *now*, at dispatch time — if it were
            # claimed only when the task first runs, a second pipelined
            # request in the same read batch could fast-path its reply ahead
            # of this one and a positional legacy client would mismatch.
            previous = self._compat_tail
            tail = server._loop.create_future()
            self._compat_tail = tail
        task = server._loop.create_task(
            self._run_request(
                message,
                version,
                request_id,
                admitted=admitted,
                previous=previous,
                tail=tail,
            )
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_request(
        self,
        request: Any,
        version: int,
        request_id: Optional[int],
        admitted: bool = False,
        previous: Optional[asyncio.Future] = None,
        tail: Optional[asyncio.Future] = None,
    ) -> None:
        server = self.server
        started = time.perf_counter()
        tenant = getattr(request, "tenant", None)
        if previous is not None:
            # Compat peers expect replies in request order: serialise behind
            # the previous request of this connection.
            try:
                await previous
            except asyncio.CancelledError:
                raise
        try:
            executed = False
            if not admitted and not server._admit_tenant(tenant):
                response = _throttled_response(server, tenant)
            elif isinstance(request, StatsRequest):
                # Served by the front door itself so the reply includes the
                # ``async`` section (connections, watermarks, tenant SLOs).
                response = await server._loop.run_in_executor(
                    None, lambda: _stats_response(server)
                )
            elif (fast := server.service.handle_nowait(request)) is not None:
                # Cache hits are answered directly on the event loop — no
                # worker-pool round trip (two thread handoffs) per request.
                # This is the front door's main throughput edge: only work
                # that can block is admitted to the queue.
                response = fast
                executed = True
            else:
                try:
                    future = server.service.submit(request)
                except ServiceOverloadedError as exc:
                    server.metrics.inc("dsr_requests_shed_total")
                    response = ErrorResponse("ServiceOverloadedError", str(exc))
                except RuntimeError as exc:
                    response = ErrorResponse("RuntimeError", str(exc))
                else:
                    server._inflight += 1
                    server._check_pressure()
                    try:
                        response = await asyncio.wrap_future(future)
                    finally:
                        server._inflight -= 1
                        server._check_pressure()
                    executed = True
            self._send(response, version, request_id)
            if executed:
                # Only executed requests feed the tenant SLO histogram —
                # throttles and sheds would drag percentiles toward zero.
                server._observe(tenant, request, time.perf_counter() - started)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            self._send(ErrorResponse(type(exc).__name__, str(exc)), version, request_id)
        finally:
            if tail is not None and not tail.done():
                tail.set_result(None)

    # -- outbound -------------------------------------------------------- #
    def _send(
        self,
        message: Any,
        version: int,
        request_id: Optional[int],
        buffered: bool = False,
    ) -> None:
        if self.transport is None or self._closing:
            return
        try:
            if self._binary:
                # Cap replies at the receiver-side frame limit: clients
                # enforce MAX_FRAME_BYTES in unpack_frame, so an oversized
                # reply would kill their read loop and fail every pending
                # request on the connection.  Answer with a typed error
                # (small by construction) instead.
                cap = min(self.server.max_frame_bytes, MAX_FRAME_BYTES)
                try:
                    payload = pack_frame(
                        message,
                        version=version,
                        request_id=request_id,
                        max_frame_bytes=cap,
                    )
                except OversizedFrameError as exc:
                    payload = pack_frame(
                        ErrorResponse("OversizedReplyError", str(exc)),
                        version=version,
                        request_id=request_id,
                    )
            else:
                payload = (dumps(message, version=version) + "\n").encode("utf-8")
            if buffered:
                # Caller is inside the data_received drain loop; the batch
                # flushes as one write when the loop finishes.
                self._out.append(payload)
            else:
                self.transport.write(payload)
        except (OSError, RuntimeError):  # pragma: no cover - peer went away
            self._closing = True

    def _fail(self, error: str, detail: str) -> None:
        """Protocol failure: report once at the connection's framing, close."""
        self._flush_out()  # keep replies already produced ahead of the error
        self._send(ErrorResponse(error, detail), PROTOCOL_VERSION, None)
        self._closing = True
        if self.transport is not None:
            self.transport.close()


def _throttled_response(server: "DSRAsyncServer", tenant: Optional[str]) -> ErrorResponse:
    return ErrorResponse(
        "RateLimitedError",
        f"tenant {tenant or 'default'!r} exceeded "
        f"{server.rate_limit_qps:g} requests/second",
    )


def _stats_response(server: "DSRAsyncServer"):
    from repro.service.protocol import StatsResponse

    try:
        return StatsResponse(stats=server.stats())
    except Exception as exc:  # pragma: no cover - defensive
        return ErrorResponse(type(exc).__name__, str(exc))


# ---------------------------------------------------------------------- #
# the server
# ---------------------------------------------------------------------- #
class DSRAsyncServer:
    """Asyncio front door over a :class:`DSRService` (binary v5 framing).

    Parameters
    ----------
    service:
        The service whose worker pool executes requests.
    host, port:
        Listen address (``port=0`` picks a free port; read ``address``).
    high_watermark / low_watermark:
        In-flight request counts at which *all* connections pause / resume
        reading.  Defaults derive from the service's admission queue so
        backpressure engages just before the queue sheds.
    rate_limit_qps / rate_limit_burst:
        Per-tenant token bucket (``None`` disables rate limiting).
    max_frame_bytes / max_line_bytes:
        Per-connection framing caps (oversized ⇒ typed error + close).
    """

    def __init__(
        self,
        service: DSRService,
        host: str = "127.0.0.1",
        port: int = 0,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        rate_limit_qps: Optional[float] = None,
        rate_limit_burst: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        self.service = service
        self.metrics = service.metrics.registry
        self._host = host
        self._port = port
        queue_cap = service._queue.maxsize or 64
        self.high_watermark = (
            high_watermark if high_watermark is not None else queue_cap
        )
        self.low_watermark = (
            low_watermark
            if low_watermark is not None
            else max(1, self.high_watermark // 2)
        )
        if self.low_watermark > self.high_watermark:
            raise ValueError("low_watermark must be <= high_watermark")
        self.rate_limit_qps = rate_limit_qps
        self.rate_limit_burst = (
            rate_limit_burst
            if rate_limit_burst is not None
            else (rate_limit_qps if rate_limit_qps is not None else None)
        )
        self.max_frame_bytes = max_frame_bytes
        self.max_line_bytes = max_line_bytes

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight = 0
        self._reads_paused = False
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_event: Optional[asyncio.Event] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ------------------------------------------------------- #
    async def start(self) -> "DSRAsyncServer":
        """Start serving on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await self._loop.create_server(
            lambda: _Connection(self), self._host, self._port, backlog=2048
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        return self

    async def stop(self) -> None:
        """Stop accepting, close every connection, wait for them to go."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections):
            if connection.transport is not None:
                connection.transport.close()
        # Let connection_lost callbacks run.
        await asyncio.sleep(0)
        self._stopped.set()

    def start_in_thread(self) -> "DSRAsyncServer":
        """Run the server on a dedicated event-loop thread (sync callers)."""
        if self._thread is not None:
            raise RuntimeError("server already started")

        def _run() -> None:
            asyncio.run(self._thread_main())

        self._thread = threading.Thread(target=_run, name="dsr-aio", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):  # pragma: no cover
            raise RuntimeError("async server failed to start")
        return self

    async def _thread_main(self) -> None:
        self._shutdown_event = asyncio.Event()
        await self.start()
        await self._shutdown_event.wait()
        await self.stop()

    def stop_from_thread(self, timeout: float = 10.0) -> None:
        """Counterpart of :meth:`start_in_thread` for sync callers."""
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown_event.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    def wait(self) -> None:
        """Block until the thread-mode server exits (Ctrl-C friendly)."""
        thread = self._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=0.5)

    def __enter__(self) -> "DSRAsyncServer":
        return self.start_in_thread()

    def __exit__(self, *exc_info) -> None:
        self.stop_from_thread()

    # -- connection registry -------------------------------------------- #
    def _register(self, connection: _Connection) -> None:
        self._connections.add(connection)
        self.metrics.set_gauge("dsr_conn_active", float(len(self._connections)))
        if self._reads_paused:
            connection.maybe_pause()

    def _unregister(self, connection: _Connection) -> None:
        self._connections.discard(connection)
        self.metrics.set_gauge("dsr_conn_active", float(len(self._connections)))

    # -- backpressure ---------------------------------------------------- #
    def _check_pressure(self) -> None:
        """Pause/resume every connection against the in-flight watermarks."""
        if not self._reads_paused and self._inflight >= self.high_watermark:
            self._reads_paused = True
            for connection in self._connections:
                connection.maybe_pause()
        elif self._reads_paused and self._inflight <= self.low_watermark:
            self._reads_paused = False
            for connection in self._connections:
                connection.maybe_resume()

    # -- tenancy --------------------------------------------------------- #
    def _admit_tenant(self, tenant: Optional[str]) -> bool:
        if self.rate_limit_qps is None:
            return True
        key = tenant or "default"
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = TokenBucket(
                self.rate_limit_qps, self.rate_limit_burst
            )
        if bucket.try_acquire():
            return True
        self.metrics.inc("dsr_tenant_throttled_total", tenant=key)
        return False

    def _observe(self, tenant: Optional[str], request: Any, seconds: float) -> None:
        if isinstance(request, ReachQuery):
            self.metrics.observe(
                "dsr_tenant_request_seconds", seconds, tenant=tenant or "default"
            )

    # -- introspection --------------------------------------------------- #
    def tenant_percentile(self, tenant: str, percent: float) -> float:
        """Per-tenant latency percentile (seconds) from the histogram."""
        return self.metrics.percentile(
            "dsr_tenant_request_seconds", percent, tenant=tenant
        )

    def _snapshot_loop_state(self) -> Tuple[Tuple[str, ...], int, int, bool]:
        """Consistent copy of loop-owned state (buckets, connections, ...).

        ``stats()`` runs on executor or plain sync threads while the event
        loop mutates ``_buckets`` and ``_connections``; iterating them
        off-loop can raise ``RuntimeError: dictionary changed size during
        iteration`` under load.  Hop onto the loop for the snapshot whenever
        it is running and we are not already on it.
        """

        def _grab() -> Tuple[Tuple[str, ...], int, int, bool]:
            return (
                tuple(self._buckets),
                len(self._connections),
                self._inflight,
                self._reads_paused,
            )

        loop = self._loop
        if loop is None or not loop.is_running():
            return _grab()
        try:
            if asyncio.get_running_loop() is loop:
                return _grab()
        except RuntimeError:
            pass
        snapshot: concurrent.futures.Future = concurrent.futures.Future()

        def _on_loop() -> None:
            try:
                snapshot.set_result(_grab())
            except BaseException as exc:  # pragma: no cover - defensive
                snapshot.set_exception(exc)

        try:
            loop.call_soon_threadsafe(_on_loop)
            return snapshot.result(timeout=5.0)
        except (RuntimeError, concurrent.futures.TimeoutError):
            # Loop shut down underneath us: best-effort direct read (no
            # concurrent mutator is left at that point).
            return _grab()

    def stats(self) -> Dict[str, Any]:
        """The service's stats dict plus an ``async`` front-door section."""
        stats = self.service.stats()
        bucket_keys, connections, inflight, reads_paused = (
            self._snapshot_loop_state()
        )
        tenants: Dict[str, Any] = {}
        for key in bucket_keys:
            tenants[key] = {
                "throttled": int(
                    self.metrics.counter_value(
                        "dsr_tenant_throttled_total", tenant=key
                    )
                ),
            }
        for tenant in self._tenants_seen():
            entry = tenants.setdefault(tenant, {"throttled": 0})
            entry["requests"] = self.metrics.histogram_count(
                "dsr_tenant_request_seconds", tenant=tenant
            )
            for percent in (50, 95, 99):
                entry[f"p{percent}_ms"] = round(
                    self.tenant_percentile(tenant, percent) * 1000.0, 3
                )
        stats["async"] = {
            "connections": connections,
            "inflight": inflight,
            "reads_paused": reads_paused,
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "paused_total": int(self.metrics.counter_total("dsr_conn_paused_total")),
            "shed_total": int(self.metrics.counter_total("dsr_requests_shed_total")),
            "rate_limit_qps": self.rate_limit_qps,
            "tenants": tenants,
        }
        return stats

    def _tenants_seen(self) -> Tuple[str, ...]:
        seen = set()
        for key, _ in getattr(self.metrics, "_histograms", {}).items():
            name, labels = key
            if name == "dsr_tenant_request_seconds":
                seen.update(value for label, value in labels if label == "tenant")
        return tuple(sorted(seen))


# ---------------------------------------------------------------------- #
# async client
# ---------------------------------------------------------------------- #
class DSRAsyncClient:
    """Multiplexing asyncio client for :class:`DSRAsyncServer`.

    Any number of requests may be awaited concurrently on one connection;
    a background reader task matches responses to requests by id.
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 10.0
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None

    async def connect(self) -> "DSRAsyncClient":
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self._timeout
        )
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        buffer = bytearray()
        failure: Optional[BaseException] = None
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    framed = unpack_frame(buffer)
                    if framed is None:
                        break
                    message, _version, request_id, consumed = framed
                    del buffer[:consumed]
                    future = self._pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result(message)
        except asyncio.CancelledError:
            pass
        except (OSError, ProtocolError) as exc:
            # Keep the real reason (e.g. an OversizedFrameError) so pending
            # callers see the protocol failure, not a generic reset.
            failure = exc
        finally:
            error = failure or ConnectionResetError(
                "connection to the async server was lost"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, message: Any) -> Any:
        if self._writer is None:
            raise RuntimeError("client is not connected")
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(pack_frame(message, request_id=request_id))
        await self._writer.drain()
        if self._timeout is not None:
            return await asyncio.wait_for(future, self._timeout)
        return await future

    # Convenience wrappers ---------------------------------------------- #
    async def query(
        self,
        sources,
        targets,
        direction: str = "auto",
        use_cache: bool = True,
        tenant: Optional[str] = None,
    ) -> Any:
        return await self.request(
            QueryRequest(
                tuple(sources), tuple(targets), direction, use_cache, tenant=tenant
            )
        )

    async def update(self, op: str, u=None, v=None) -> Any:
        return await self.request(UpdateRequest(op, u, v))

    async def stats(self) -> Any:
        return await self.request(StatsRequest())

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass
            self._writer = None

    async def __aenter__(self) -> "DSRAsyncClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


__all__ = [
    "DSRAsyncClient",
    "DSRAsyncServer",
    "RateLimitedError",
    "TokenBucket",
]
