"""The concurrent DSR serving layer.

:class:`DSRService` turns a built :class:`~repro.core.engine.DSREngine` — a
batch, single-caller object — into a long-lived service:

* requests enter through a bounded **admission queue** and are executed by a
  **worker thread pool** (:meth:`DSRService.submit` returns a future;
  :meth:`DSRService.handle` is the synchronous core the workers run);
* every query goes through the :class:`~repro.service.planner.QueryPlanner`
  (direction choice + batching) and the
  :class:`~repro.service.cache.ResultCache` (exact-answer reuse with precise
  invalidation under updates);
* per-request **metrics** are recorded: latency percentiles per request kind,
  cache hit rate, and the simulated cluster's message/byte counters for the
  queries that actually hit the engine.

Locking depends on the engine's ``epoch_flush`` mode.  An **inline** engine
folds pending updates into the index on the query path, so the service
serialises engine access behind one lock (concurrency still pays off for
cache hits, protocol handling and admission control); cached answers are
stored *while the engine lock is still held*, so an interleaved update can
never re-insert a result computed against the pre-update graph.  A
**background** engine is epoch-versioned: queries capture one published
:class:`~repro.core.index.EpochState` and never flush, so the service runs
them *without* the engine lock — reads never block on maintenance or on each
other; only updates serialise.  Cache entries are then tagged with their
epoch and lookups reject entries from any other epoch, which is what makes
the lock-free path safe (a result computed just before an epoch swap can be
stored after it, but can never be *served* after it).

:class:`DSRSocketServer` exposes the same service over a local TCP socket
speaking the newline-delimited JSON framing of
:mod:`repro.service.protocol`; :class:`DSRClient` is the matching client.
"""

from __future__ import annotations

import logging
import math
import queue
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Tuple

from repro.api.query import ReachQuery
from repro.core.engine import DSREngine
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import global_registry
from repro.obs.trace import QueryTrace
from repro.service.cache import ResultCache
from repro.service.planner import QueryPlanner
from repro.service.protocol import (
    ErrorResponse,
    MAX_LINE_BYTES,
    MetricsRequest,
    MetricsResponse,
    OversizedFrameError,
    PROTOCOL_VERSION,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    REQUEST_TYPES,
    SnapshotRequest,
    SnapshotResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    recv_message,
    recv_message_versioned,
    send_message,
)
from repro.resilience.deadline import Deadline, check_deadline, deadline_scope
from repro.resilience.failpoints import failpoint
from repro.resilience.supervisor import HealthSupervisor

logger = logging.getLogger(__name__)


def _count_stuck_threads(threads, where: str) -> int:
    """Warn about and count threads that survived their shutdown join."""
    stuck = [thread.name for thread in threads if thread.is_alive()]
    if stuck:
        logger.warning(
            "%s: %d thread(s) still alive after join timeout: %s",
            where, len(stuck), ", ".join(stuck),
        )
        registry = global_registry()
        if registry.enabled:
            registry.inc(
                "dsr_shutdown_stuck_threads", float(len(stuck)), where=where
            )
    return len(stuck)


class ServiceOverloadedError(RuntimeError):
    """Raised by :meth:`DSRService.submit` when the admission queue is full."""


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #
class ServiceMetrics:
    """Thread-safe per-request serving metrics.

    Latency samples are kept in a bounded sliding window per request kind
    (``max_samples``), so a long-lived server computes percentiles over
    recent traffic instead of growing without bound — :meth:`percentile`
    stays an exact order statistic over that window.

    Every recording is mirrored into a per-service
    :class:`~repro.obs.registry.MetricsRegistry` (``self.registry``) as
    ``dsr_service_*`` counters/histograms, which is what the Prometheus
    text exposition (:meth:`DSRService.metrics_text`) serves.  The registry
    is per-instance, not the process-global one, so concurrent services
    (and tests) never bleed counters into each other.
    """

    def __init__(
        self, max_samples: int = 8192, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._latencies: Dict[str, "deque"] = {}
        self._counters: Dict[str, int] = {
            "queries": 0,
            "cache_hits": 0,
            "updates": 0,
            "admin": 0,
            "errors": 0,
            "rejected": 0,
            "messages_sent": 0,
            "bytes_sent": 0,
        }
        self.registry = registry if registry is not None else MetricsRegistry()
        self._started_at = time.perf_counter()

    def record(self, kind: str, latency_seconds: float) -> None:
        with self._lock:
            self._latencies.setdefault(
                kind, deque(maxlen=self._max_samples)
            ).append(latency_seconds)
            self._counters[f"{kind}_count"] = self._counters.get(f"{kind}_count", 0) + 1
        self.registry.inc("dsr_service_requests_total", kind=kind)
        self.registry.observe("dsr_service_request_seconds", latency_seconds, kind=kind)

    def increment(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount
        self.registry.inc(f"dsr_service_{counter}_total", amount)

    def count(self, counter: str) -> int:
        with self._lock:
            return self._counters.get(counter, 0)

    @staticmethod
    def _rank(ordered: List[float], percent: float) -> float:
        rank = max(1, math.ceil(percent / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def percentile(self, kind: str, percent: float) -> float:
        """Latency percentile (seconds) for one request kind; 0.0 if unseen."""
        with self._lock:
            samples = sorted(self._latencies.get(kind, ()))
        if not samples:
            return 0.0
        return self._rank(samples, percent)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            kinds = {kind: list(values) for kind, values in self._latencies.items()}
            elapsed = time.perf_counter() - self._started_at
        summary: Dict[str, Any] = dict(counters)
        total_requests = sum(
            counters.get(f"{kind}_count", len(values)) for kind, values in kinds.items()
        )
        summary["requests"] = total_requests
        summary["uptime_seconds"] = round(elapsed, 6)
        summary["requests_per_second"] = (
            round(total_requests / elapsed, 3) if elapsed > 0 else 0.0
        )
        queries = counters.get("queries", 0)
        summary["cache_hit_rate"] = (
            round(counters.get("cache_hits", 0) / queries, 4) if queries else 0.0
        )
        for kind, values in kinds.items():
            ordered = sorted(values)
            for percent in (50, 95, 99):
                summary[f"{kind}_p{percent}_ms"] = round(
                    self._rank(ordered, percent) * 1000.0, 3
                )
        return summary


# ---------------------------------------------------------------------- #
# the service
# ---------------------------------------------------------------------- #
class DSRService:
    """Concurrent query/update service over one :class:`DSREngine`.

    The engine may also be a :class:`~repro.fleet.ReplicaFleet` — it quacks
    like an engine, so admission, metrics and updates work unchanged.  The
    service then adds the fleet's read path on top: every query is routed to
    the argmin-cost replica (whose planner also does the batching), and
    updates fan out to all replicas through the fleet's own facade methods.
    Caching becomes *per replica*: each replica owns a ResultCache of the
    configured capacity, attached to that replica's maintainer and epoch
    counter exactly like a single engine's cache.  Because routing is a pure
    function of the query fingerprint, a query class always lands on the
    same replica (cache affinity) — the fleet's aggregate cache capacity
    absorbs working sets that would thrash one engine's cache, which is
    where a fleet wins on a one-core substrate where strategies tie.
    """

    def __init__(
        self,
        engine: DSREngine,
        num_workers: int = 4,
        max_queue_depth: int = 64,
        cache_capacity: int = 1024,
        cache_ttl_seconds: Optional[float] = None,
        max_batch_pairs: int = 4096,
        enable_cache: bool = True,
        health_probe_interval_seconds: Optional[float] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("the service needs at least one worker")
        if not engine.is_built:
            engine.build_index()
        self.engine = engine
        # Imported here, not at module scope: repro.fleet imports the planner
        # from this package, so a top-level import would be circular.
        from repro.fleet.fleet import ReplicaFleet

        #: The fleet behind ``engine``, when serving one (None otherwise).
        self._fleet: Optional[ReplicaFleet] = (
            engine if isinstance(engine, ReplicaFleet) else None
        )
        #: True when the engine maintains epochs in the background: queries
        #: run lock-free against the published epoch and never flush.
        self._background_epochs = (
            getattr(engine, "epoch_flush", "inline") == "background"
        )
        self.planner = QueryPlanner(engine, max_batch_pairs=max_batch_pairs)
        if self._fleet is not None:
            # Replica planners do the actual batching for routed queries;
            # keep their budget aligned with the service's.
            self._fleet.configure_planners(max_batch_pairs)
        self.metrics = ServiceMetrics()
        self.cache: Optional[ResultCache] = None
        #: Fleet mode: one cache per replica, indexed by replica id.  Routing
        #: is deterministic per query fingerprint, so each query class keeps
        #: hitting the same replica's cache (affinity).
        self._replica_caches: Optional[List[ResultCache]] = None
        if enable_cache:
            # Staleness protection matches the maintenance mode: inline
            # engines clear the cache the moment a structural update is
            # recorded; background engines invalidate at the epoch swap (and
            # every entry is epoch-tagged, so lookups are version-checked).
            invalidate_on = "flush" if self._background_epochs else "update"
            if self._fleet is not None:
                self._replica_caches = []
                for replica in self._fleet.replicas:
                    cache = ResultCache(
                        capacity=cache_capacity, ttl_seconds=cache_ttl_seconds
                    )
                    cache.attach(
                        replica.engine.maintainer, invalidate_on=invalidate_on
                    )
                    self._replica_caches.append(cache)
            else:
                self.cache = ResultCache(
                    capacity=cache_capacity, ttl_seconds=cache_ttl_seconds
                )
                self.cache.attach(engine.maintainer, invalidate_on=invalidate_on)

        self._engine_lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue_depth)
        self._workers: List[threading.Thread] = []
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        for worker_id in range(num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"dsr-worker-{worker_id}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        #: Optional self-healing loop: heartbeat probes of fleet replicas
        #: and TCP worker hosts behind per-target circuit breakers.
        self.health: Optional[HealthSupervisor] = None
        if health_probe_interval_seconds is not None:
            self._enable_health(health_probe_interval_seconds)

    def _enable_health(self, probe_interval_seconds: float) -> None:
        supervisor = HealthSupervisor(
            probe_interval_seconds=probe_interval_seconds
        )
        if self._fleet is not None:
            # Fleet replicas: probe rebuild state, eject from / re-admit to
            # the router on breaker edges.
            self._fleet.enable_health(supervisor=supervisor, start=False)
        executor = getattr(self.engine.cluster, "executor", None)
        ping = getattr(executor, "ping", None)
        if callable(ping):
            # TCP worker hosts: a ping round-trip per rank.  ping() itself
            # reconnects/respawns a dead managed host, so a probe doubles as
            # the recovery trigger.
            for rank in range(getattr(executor, "num_workers", 0) or 0):
                supervisor.add_target(
                    f"worker:{rank}",
                    probe=lambda r=rank: ping(r),
                )
        if supervisor.target_names():
            self.health = supervisor.start()

    # ------------------------------------------------------------------ #
    # asynchronous entry point
    # ------------------------------------------------------------------ #
    def submit(self, request) -> "Future":
        """Enqueue a request; the future resolves to its response message.

        A query's ``deadline_ms`` clock starts *here*, at admission — queue
        wait counts against the budget, and a request whose budget is
        already gone when a worker dequeues it is shed without touching the
        engine.
        """
        future: Future = Future()
        deadline = (
            Deadline.from_query(request) if isinstance(request, ReachQuery) else None
        )
        # The closed check and the enqueue are one atomic step with respect
        # to close(): otherwise a request slipping in between the check and
        # the worker-shutdown sentinels would never resolve.
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            try:
                self._queue.put_nowait((request, future, deadline))
            except queue.Full:
                self.metrics.increment("rejected")
                raise ServiceOverloadedError(
                    f"admission queue full ({self._queue.maxsize} pending requests)"
                ) from None
        return future

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            request, future, deadline = item
            if not future.set_running_or_notify_cancel():
                continue
            if deadline is not None and deadline.expired:
                # Shed before execution: the budget was spent in the queue.
                self.metrics.increment("errors")
                exc = deadline.exceeded("queue")
                future.set_result(
                    ErrorResponse(error=type(exc).__name__, message=str(exc))
                )
                continue
            try:
                future.set_result(self.handle(request, deadline=deadline))
            except BaseException as exc:  # pragma: no cover - handle() catches
                future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # synchronous core
    # ------------------------------------------------------------------ #
    def handle(self, request, deadline: Optional[Deadline] = None):
        """Execute one protocol request and return its response message.

        ``deadline`` is the budget captured at admission (:meth:`submit`);
        direct synchronous callers get one started here instead.  The
        deadline is scoped to this thread for the whole execution, so the
        planner's batch loops and the executors below check it without
        threading it through every signature.
        """
        start = time.perf_counter()
        if deadline is None and isinstance(request, ReachQuery):
            deadline = Deadline.from_query(request)
        try:
            with deadline_scope(deadline):
                if deadline is not None:
                    deadline.check("admission")
                # Wire-form QueryRequests and plain API ReachQuerys are the
                # same message; in-process callers may submit either.
                if isinstance(request, ReachQuery):
                    return self._handle_query(request, start)
                if isinstance(request, UpdateRequest):
                    return self._handle_update(request, start)
                if isinstance(request, StatsRequest):
                    self.metrics.increment("admin")
                    return StatsResponse(stats=self.stats())
                if isinstance(request, MetricsRequest):
                    self.metrics.increment("admin")
                    return MetricsResponse(text=self.metrics_text())
                if isinstance(request, SnapshotRequest):
                    self.metrics.increment("admin")
                    with self._engine_lock:
                        snapshot = self.engine.cluster.snapshot()
                    return SnapshotResponse(snapshot=snapshot)
                raise ProtocolError(
                    f"not a request message: {type(request).__name__}"
                )
        except Exception as exc:
            self.metrics.increment("errors")
            return ErrorResponse(error=type(exc).__name__, message=str(exc))

    def handle_nowait(self, request):
        """Answer ``request`` only if it cannot block; ``None`` otherwise.

        The fast path for front doors that must not stall their calling
        thread (the async server's event loop): a plain cached query is
        answered inline — same response shape and same metrics as
        :meth:`handle` — while anything that needs the engine, a fleet
        route or a trace returns ``None`` for the caller to
        :meth:`submit` to the worker pool instead.
        """
        if (
            not isinstance(request, ReachQuery)
            or request.trace
            or not request.use_cache
            or self._fleet is not None
            or self.cache is None
        ):
            return None
        start = time.perf_counter()
        try:
            lookup_epoch = self.engine.epoch if self._background_epochs else None
            cached = self.cache.get(
                request.sources, request.targets, epoch=lookup_epoch
            )
            if cached is None:
                return None
            # The planner only supplies the reply's direction here — a hit
            # never touches the engine (planning is pure stats arithmetic).
            plan = self.planner.plan(request)
            self.metrics.increment("queries")
            self.metrics.increment("cache_hits")
            latency = time.perf_counter() - start
            self.metrics.record("query_cached", latency)
            return QueryResponse(
                pairs=tuple(cached),
                cached=True,
                direction=plan.direction,
                num_batches=0,
                latency_seconds=latency,
                epoch=lookup_epoch if lookup_epoch is not None else -1,
            )
        except Exception as exc:
            self.metrics.increment("errors")
            return ErrorResponse(error=type(exc).__name__, message=str(exc))

    def _handle_query(self, request: ReachQuery, start: float) -> QueryResponse:
        self.metrics.increment("queries")
        # Fleet mode: pick the serving replica up front — its planner does
        # the batching and its engine runs every batch of this plan, so the
        # whole answer comes from one replica (one epoch counter to agree
        # on).  Routing is recorded even when the cache ends up answering:
        # the workload histogram should reflect demand, not cache luck.
        route = self._fleet.route(request) if self._fleet is not None else None
        planner = self.planner if route is None else route.replica.planner
        engine = self.engine if route is None else route.replica.engine
        trace = QueryTrace() if request.trace else None
        if trace is not None:
            with trace.span("plan") as plan_span:
                plan = planner.plan(request)
            plan_span.attrs.update(
                direction=plan.direction,
                representation=plan.representation,
                num_batches=plan.num_batches,
            )
            trace.attrs.setdefault("representation", plan.representation)
            if route is not None:
                trace.attrs["replica"] = route.replica.replica_id
                trace.attrs["replica_strategy"] = route.replica.strategy
        else:
            plan = planner.plan(request)
        if plan.is_empty:
            latency = time.perf_counter() - start
            # A trivially empty plan never touches the engine: account it
            # separately from full queries so latency percentiles stay honest.
            self.metrics.record("query_empty", latency)
            return QueryResponse(
                pairs=(), direction=plan.direction, num_batches=0,
                latency_seconds=latency,
                trace=trace.to_dict() if trace is not None else None,
            )

        # Fleet mode serves from the routed replica's own cache, tagged and
        # looked up with that replica's epoch counter — exactly the single
        # engine contract, replicated per replica.
        if route is None:
            cache = self.cache
        else:
            cache = (
                self._replica_caches[route.replica.replica_id]
                if self._replica_caches is not None
                else None
            )
        use_cache = cache is not None and request.use_cache
        lookup_epoch = engine.epoch if self._background_epochs else None
        if use_cache:
            if trace is not None:
                with trace.span("cache_lookup") as cache_span:
                    cached = cache.get(
                        request.sources, request.targets, epoch=lookup_epoch
                    )
                cache_span.attrs["hit"] = cached is not None
            else:
                cached = cache.get(
                    request.sources, request.targets, epoch=lookup_epoch
                )
            if cached is not None:
                latency = time.perf_counter() - start
                self.metrics.increment("cache_hits")
                # Cache hits skip the engine entirely; recording them as
                # full queries used to drag the "query" percentiles down.
                self.metrics.record("query_cached", latency)
                return QueryResponse(
                    pairs=tuple(cached),
                    cached=True,
                    direction=plan.direction,
                    num_batches=0,
                    latency_seconds=latency,
                    epoch=lookup_epoch if lookup_epoch is not None else -1,
                    trace=trace.to_dict() if trace is not None else None,
                )

        if self._background_epochs:
            pairs, epoch, messages, byte_count = self._run_batches_lock_free(
                plan, use_cache, request, trace, engine=engine, cache=cache,
                planner=planner,
            )
        else:
            with self._engine_lock:
                results, epochs, messages, byte_count = self._run_plan_batches(
                    plan, trace, engine=engine
                )
                epoch = max(epochs)
                pairs = planner.merge(results)
                if use_cache:
                    # Store under the lock: an update cannot interleave
                    # between computing the answer and caching it, so entries
                    # always reflect the current graph.
                    cache.put(request.sources, request.targets, pairs)
        self.metrics.increment("messages_sent", messages)
        self.metrics.increment("bytes_sent", byte_count)
        latency = time.perf_counter() - start
        self.metrics.record("query", latency)
        if trace is not None:
            trace.attrs["epoch"] = epoch
        return QueryResponse(
            pairs=tuple(pairs),
            cached=False,
            direction=plan.direction,
            num_batches=plan.num_batches,
            latency_seconds=latency,
            messages_sent=messages,
            bytes_sent=byte_count,
            epoch=epoch,
            trace=trace.to_dict() if trace is not None else None,
        )

    def _run_plan_batches(
        self, plan, trace: Optional[QueryTrace] = None, engine=None
    ):
        """Run every batch of a plan, accumulating the shared accounting.

        Returns ``(per_batch_pair_sets, epochs_observed, messages, bytes)``.
        When tracing, each batch's engine-level trace is spliced into
        ``trace`` (prefixed ``batchN.`` when the plan has several batches).
        ``engine`` pins all batches to one engine (the routed replica in
        fleet mode); by default the service's own engine runs them.
        """
        if engine is None:
            engine = self.engine
        results, epochs = [], set()
        messages = byte_count = 0
        multi_batch = plan.num_batches > 1
        for index, (batch_sources, batch_targets) in enumerate(plan.batches):
            # Deadline checkpoint between engine calls: a multi-batch plan
            # stops (typed error) the moment its budget runs out instead of
            # finishing batches nobody is waiting for.
            check_deadline("batch")
            result = engine.run(
                ReachQuery(
                    batch_sources,
                    batch_targets,
                    direction=plan.direction,
                    representation=plan.representation,
                    trace=trace is not None,
                )
            )
            if trace is not None and result.trace is not None:
                trace.merge_child(
                    result.trace, prefix=f"batch{index}." if multi_batch else ""
                )
            results.append(result.pairs)
            epochs.add(result.epoch)
            messages += result.messages_sent
            byte_count += result.bytes_sent
        return results, epochs, messages, byte_count

    def _run_batches_lock_free(
        self,
        plan,
        use_cache: bool,
        request: ReachQuery,
        trace: Optional[QueryTrace] = None,
        engine=None,
        cache: Optional[ResultCache] = None,
        planner=None,
    ):
        """Run a plan's batches without the engine lock (background engines).

        Every batch independently captures the published epoch, so a flush
        swapping epochs mid-plan could hand different batches different
        versions; the whole plan is retried until every batch agrees on one
        epoch (epoch swaps are rare — a retry is the exception, not the
        rule), falling back to briefly serialising against updates.  The
        merged answer is therefore always consistent with a single epoch.

        In fleet mode all batches run on the routed replica's ``engine``,
        the answer goes into that replica's own ``cache``, and the tag is
        the replica's epoch observed while running — identical semantics to
        the single-engine path, instantiated once per replica.
        """
        if cache is None:
            cache = self.cache
        if planner is None:
            planner = self.planner
        for attempt in range(3):
            if attempt:
                check_deadline("epoch_retry")
            if trace is not None and attempt:
                trace.event("plan_epoch_retry", attempt=attempt)
            results, epochs, messages, byte_count = self._run_plan_batches(
                plan, trace, engine=engine
            )
            if len(epochs) == 1:
                break
        else:
            # Keep updates out while re-running so the epoch cannot move:
            # updates take the engine lock, flush_updates() waits out any
            # in-flight forward *and* reverse flush, and with the dirty sets
            # drained a queued background flush publishes nothing new.
            if trace is not None:
                trace.event("plan_epoch_retry", attempt=3, serialized=True)
            with self._engine_lock:
                self.engine.flush_updates()
                results, epochs, messages, byte_count = self._run_plan_batches(
                    plan, trace, engine=engine
                )
        epoch = epochs.pop()
        pairs = planner.merge(results)
        if use_cache and plan.direction == "forward":
            # No lock needed: the entry is tagged with the epoch it was
            # computed at, and lookups reject entries from any other epoch —
            # a result stored after a swap can never be served after it.
            # Backward results are deliberately not cached here: their epoch
            # counter belongs to the *reverse* index, which flushes on its
            # own coalescing thread, so tagging them with it could collide
            # numerically with a different forward epoch at lookup time.
            cache.put(request.sources, request.targets, pairs, epoch=epoch)
        return pairs, epoch, messages, byte_count

    def _handle_update(self, request: UpdateRequest, start: float) -> UpdateResponse:
        self.metrics.increment("updates")
        vertex: Optional[int] = None
        structural = False
        affected: Tuple[int, ...] = ()
        with self._engine_lock:
            if request.op == "insert-edge":
                result = self.engine.insert_edge(request.u, request.v)
                structural, affected = result.structural_change, tuple(result.affected_partitions)
            elif request.op == "delete-edge":
                result = self.engine.delete_edge(request.u, request.v)
                structural, affected = result.structural_change, tuple(result.affected_partitions)
            elif request.op == "insert-vertex":
                vertex = self.engine.insert_vertex(request.u, request.partition_id)
            elif request.op == "delete-vertex":
                result = self.engine.delete_vertex(request.u)
                structural, affected = result.structural_change, tuple(result.affected_partitions)
            else:  # "flush"
                failpoint("service.flush")
                flushed = self.engine.flush_updates()
                affected = tuple(flushed.refreshed_partitions)
        latency = time.perf_counter() - start
        self.metrics.record("update", latency)
        return UpdateResponse(
            op=request.op,
            structural_change=structural,
            affected_partitions=affected,
            vertex=vertex,
            latency_seconds=latency,
        )

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Serving metrics, cache counters and queue state in one dict."""
        combined = self.metrics.as_dict()
        # Both kinds always present, even before the first hit: a dashboard
        # diffing full queries against cache hits should never KeyError.
        combined.setdefault("query_count", 0)
        combined.setdefault("query_cached_count", 0)
        combined["queue_depth"] = self.queue_depth
        combined["workers"] = len(self._workers)
        combined["epoch"] = self.engine.epoch
        combined["epoch_flush"] = getattr(self.engine, "epoch_flush", "inline")
        combined["executor"] = self.engine.cluster.executor.name
        maintainer = self.engine.maintainer
        error = maintainer.background_flush_error if maintainer is not None else None
        combined["maintenance_error"] = repr(error) if error is not None else None
        combined["pending_maintenance"] = (
            maintainer.has_pending_changes if maintainer is not None else False
        )
        if maintainer is not None:
            combined["maintenance"] = maintainer.maintenance_stats()
        if self.cache is not None:
            combined["cache"] = self.cache.stats.as_dict()
            combined["cache_entries"] = len(self.cache)
        elif self._replica_caches is not None:
            # Fleet mode: one cache per replica — the top-level section sums
            # them so dashboards keep one hit/miss stream either way.
            merged: Dict[str, Any] = {}
            entries = 0
            for cache in self._replica_caches:
                for key, value in cache.stats.as_dict().items():
                    if key != "hit_rate":
                        merged[key] = merged.get(key, 0) + value
                entries += len(cache)
            lookups = merged.get("hits", 0) + merged.get("misses", 0)
            merged["hit_rate"] = (
                round(merged.get("hits", 0) / lookups, 4) if lookups else 0.0
            )
            combined["cache"] = merged
            combined["cache_entries"] = entries
        if self.health is not None:
            combined["health"] = self.health.stats()
        if self._fleet is not None:
            # Per-replica strategy/epoch/routes, routing-table size, workload
            # classes and the last retune round — the fleet control plane.
            combined["fleet"] = self._fleet.stats()
            if self._replica_caches is not None:
                for row, cache in zip(
                    combined["fleet"]["replicas"], self._replica_caches
                ):
                    row["cache_entries"] = len(cache)
                    row["cache_hits"] = cache.stats.hits
                    row["cache_misses"] = cache.stats.misses
        return combined

    def metrics_text(self) -> str:
        """Prometheus text exposition of the serving + engine registries.

        Combines this service's own registry (``dsr_service_*``) with the
        process-global engine registry (step counters, shard-task timings,
        epoch/flush instrumentation — including deltas shipped back from
        executor worker processes).  A few point-in-time gauges are refreshed
        on the way out.
        """
        registry = self.metrics.registry
        registry.set_gauge("dsr_service_queue_depth", float(self.queue_depth))
        registry.set_gauge("dsr_service_workers", float(len(self._workers)))
        if self.cache is not None:
            registry.set_gauge("dsr_service_cache_entries", float(len(self.cache)))
        elif self._replica_caches is not None:
            registry.set_gauge(
                "dsr_service_cache_entries",
                float(sum(len(cache) for cache in self._replica_caches)),
            )
        age = self.engine.index.epoch_age_seconds()
        if age is not None:
            # Epoch lag: how stale the published epoch is, in wall seconds.
            registry.set_gauge("dsr_epoch_age_seconds", age)
        parts = [registry.to_prometheus(), global_registry().to_prometheus()]
        return "\n".join(part for part in parts if part)

    def close(self) -> None:
        """Drain the workers and detach the cache."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._workers:
                self._queue.put(None)
        if self.health is not None:
            self.health.stop()
        for worker in self._workers:
            worker.join(timeout=5.0)
        # A worker wedged past its join timeout (e.g. stuck on a dead peer)
        # must be visible, not silently abandoned.
        _count_stuck_threads(self._workers, "DSRService.close")
        if self._background_epochs:
            # Let an in-flight epoch build finish so nothing runs after close.
            self.engine.wait_for_maintenance(timeout=5.0)
        if self.cache is not None:
            self.cache.detach()
        if self._replica_caches is not None:
            for cache in self._replica_caches:
                cache.detach()

    def __enter__(self) -> "DSRService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# socket transport
# ---------------------------------------------------------------------- #
class DSRSocketServer:
    """Serves a :class:`DSRService` over newline-delimited JSON on TCP.

    ``max_line_bytes`` bounds one request line: a peer sending a longer
    frame gets a clean ``OversizedFrameError`` response and its connection
    closed, instead of this server buffering the line without limit.
    """

    def __init__(
        self,
        service: DSRService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        self.service = service
        self.max_requests = max_requests
        self.max_line_bytes = max_line_bytes
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((host, port))
        self._socket.listen()
        self.address: Tuple[str, int] = self._socket.getsockname()
        self._stopped = threading.Event()
        self._requests_served = 0
        self._count_lock = threading.Lock()
        self._acceptor: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def start(self) -> "DSRSocketServer":
        """Start accepting connections on a background thread."""
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="dsr-acceptor", daemon=True
        )
        self._acceptor.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                connection, _ = self._socket.accept()
            except OSError:
                break  # listening socket closed by stop()
            with self._connections_lock:
                self._connections.add(connection)
            threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            self._serve_connection_inner(connection)
        finally:
            with self._connections_lock:
                self._connections.discard(connection)

    def _serve_connection_inner(self, connection: socket.socket) -> None:
        with connection:
            # Separate read/write streams: a single makefile("rw") wraps one
            # TextIOWrapper over both directions, and TextIOWrapper discards
            # its read-ahead buffer on write for non-seekable streams — a
            # pipelining client's buffered requests would be silently lost.
            reader = connection.makefile("r", encoding="utf-8", newline="\n")
            writer = connection.makefile("w", encoding="utf-8", newline="\n")
            while not self._stopped.is_set():
                # Answer each request at the version its frame was encoded
                # at, so version-2 clients keep working against a version-3
                # server (newer optional fields are stripped from replies).
                reply_version = PROTOCOL_VERSION
                try:
                    framed = recv_message_versioned(
                        reader, max_bytes=self.max_line_bytes
                    )
                except OversizedFrameError as exc:
                    # The stream is mid-frame: after reporting the cap the
                    # only safe continuation is closing the connection.
                    try:
                        send_message(
                            writer, ErrorResponse("OversizedFrameError", str(exc))
                        )
                    except (OSError, ValueError):
                        pass
                    break
                except ProtocolError as exc:
                    send_message(writer, ErrorResponse("ProtocolError", str(exc)))
                    continue
                except (OSError, ValueError):
                    break
                if framed is None:
                    break
                request, reply_version = framed
                if not isinstance(request, REQUEST_TYPES):
                    response = ErrorResponse(
                        "ProtocolError",
                        f"{type(request).__name__} is not a request message",
                    )
                else:
                    try:
                        response = self.service.submit(request).result()
                    except ServiceOverloadedError as exc:
                        response = ErrorResponse("ServiceOverloadedError", str(exc))
                # Count before replying so a client that has its response in
                # hand never observes a stale requests_served — but stop()
                # only after the reply flushed, since stop() now closes live
                # connections and would otherwise eat this final response.
                limit_reached = self._count_request()
                try:
                    send_message(writer, response, version=reply_version)
                except (OSError, ValueError):
                    break
                if limit_reached:
                    self.stop()
                    break

    def _count_request(self) -> bool:
        """Count one served request; True when max_requests is reached."""
        with self._count_lock:
            self._requests_served += 1
            return (
                self.max_requests is not None
                and self._requests_served >= self.max_requests
            )

    @property
    def requests_served(self) -> int:
        with self._count_lock:
            return self._requests_served

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (returns False on timeout)."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        try:
            # shutdown() wakes an acceptor thread blocked in accept();
            # close() alone leaves the kernel socket listening (the blocked
            # syscall pins it), which keeps the port bound after stop().
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        # Close live connections too: a stopped server must look stopped to
        # its clients (EOF ⇒ DSRClient's retry logic reconnects), not keep
        # serving from lingering per-connection threads.
        with self._connections_lock:
            connections, self._connections = set(self._connections), set()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        acceptor = self._acceptor
        if acceptor is not None and acceptor is not threading.current_thread():
            acceptor.join(timeout=5.0)
            _count_stuck_threads([acceptor], "DSRSocketServer.stop")

    def __enter__(self) -> "DSRSocketServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class DSRClient:
    """Blocking client for :class:`DSRSocketServer` (one request at a time).

    Timeouts and retries make a restarting server a bounded inconvenience
    instead of a hung caller:

    * ``connect_timeout`` bounds each TCP connect (defaults to ``timeout``);
    * ``request_timeout`` bounds each request's round trip — on expiry the
      connection is closed (the stream may be mid-frame, so it cannot be
      reused) and :class:`TimeoutError` is raised without retrying, because
      the server may still execute the request;
    * a connection reset or EOF mid-request is retried up to ``retries``
      times with a fresh connection and a short linear backoff, which rides
      out a server restart between requests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 10.0,
        connect_timeout: Optional[float] = None,
        request_timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff_seconds: float = 0.05,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._host = host
        self._port = port
        self._connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self._request_timeout = (
            request_timeout if request_timeout is not None else timeout
        )
        self._retries = retries
        self._retry_backoff_seconds = retry_backoff_seconds
        self._lock = threading.Lock()
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._writer = None
        self._reconnects = 0
        self._connect()

    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._socket.settimeout(self._request_timeout)
        # Split streams: a combined makefile("rw") TextIOWrapper drops its
        # read-ahead buffer on every write (non-seekable stream), losing any
        # server bytes that arrived early.
        self._reader = self._socket.makefile("r", encoding="utf-8", newline="\n")
        self._writer = self._socket.makefile("w", encoding="utf-8", newline="\n")

    def _drop_connection(self) -> None:
        for stream in (self._reader, self._writer):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self._reader = None
        self._writer = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None

    @property
    def reconnects(self) -> int:
        """How many times the client re-established its connection."""
        return self._reconnects

    def request(self, message):
        """Send one request message and return the response message.

        Only **idempotent** requests (queries, stats, snapshot, metrics)
        are re-sent after a failure that may have reached the server.  An
        :class:`UpdateRequest` that failed *after its send began* is never
        retried — the server may have applied it, and a blind re-send would
        risk applying the update twice.  An update whose connect failed
        before any bytes left is still safe to retry.
        """
        idempotent = not isinstance(message, UpdateRequest)
        with self._lock:
            last_error: Optional[BaseException] = None
            for attempt in range(self._retries + 1):
                if attempt:
                    time.sleep(self._retry_backoff_seconds * attempt)
                sent = False
                try:
                    if self._socket is None:
                        self._connect()
                        self._reconnects += 1
                    # From here on bytes may reach the server even if we
                    # error out mid-call.
                    sent = True
                    send_message(self._writer, message)
                    response = recv_message(self._reader)
                except socket.timeout as exc:
                    # The stream may now be mid-frame and the server may
                    # still run the request — never retry, just fail fast.
                    self._drop_connection()
                    raise TimeoutError(
                        f"no response from {self._host}:{self._port} within "
                        f"{self._request_timeout}s"
                    ) from exc
                except (ConnectionError, OSError) as exc:
                    self._drop_connection()
                    if sent and not idempotent:
                        raise ConnectionError(
                            f"update request to {self._host}:{self._port} "
                            f"failed after it may have reached the server; "
                            f"not retrying (it could apply twice): {exc}"
                        ) from exc
                    last_error = exc
                    continue
                if response is None:
                    # EOF before a reply: the server went away (restart,
                    # max_requests shutdown) — retriable like a reset, but
                    # only for idempotent requests (the server may have
                    # applied an update before dying).
                    last_error = ConnectionResetError(
                        "server closed the connection before replying"
                    )
                    self._drop_connection()
                    if not idempotent:
                        raise ConnectionError(
                            f"update request to {self._host}:{self._port} "
                            f"got no reply; not retrying (it could apply "
                            f"twice): {last_error}"
                        ) from last_error
                    continue
                return response
            raise ConnectionError(
                f"request to {self._host}:{self._port} failed after "
                f"{self._retries + 1} attempt(s): {last_error}"
            ) from last_error

    # Convenience wrappers -------------------------------------------- #
    def query(
        self,
        sources,
        targets,
        direction: str = "auto",
        use_cache: bool = True,
        trace: bool = False,
        deadline_ms: Optional[float] = None,
    ):
        return self.request(
            QueryRequest(
                tuple(sources), tuple(targets), direction, use_cache,
                trace=trace, deadline_ms=deadline_ms,
            )
        )

    def insert_edge(self, u: int, v: int):
        return self.request(UpdateRequest("insert-edge", u, v))

    def delete_edge(self, u: int, v: int):
        return self.request(UpdateRequest("delete-edge", u, v))

    def delete_vertex(self, vertex: int):
        return self.request(UpdateRequest("delete-vertex", vertex))

    def flush(self):
        return self.request(UpdateRequest("flush"))

    def stats(self):
        return self.request(StatsRequest())

    def snapshot(self):
        return self.request(SnapshotRequest())

    def metrics(self):
        """Prometheus text exposition (:class:`MetricsResponse`)."""
        return self.request(MetricsRequest())

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "DSRClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DSRClient",
    "DSRService",
    "DSRSocketServer",
    "ServiceMetrics",
    "ServiceOverloadedError",
]
