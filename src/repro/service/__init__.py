"""Online query service over the DSR engine.

Contract: the serving layer — plans each request (direction + batching, cost
model fed by boundary-entry and CSR degree statistics), consults an
exact-answer result cache wired to the engine's update listeners, and
executes on a thread-pool service exposed in-process or over JSON/TCP.
Sits strictly above :mod:`repro.api` (see ``docs/ARCHITECTURE.md``).

The :mod:`repro.service` package is the serving layer of the reproduction: it
wraps a built :class:`~repro.core.engine.DSREngine` behind a planner, an
exact-answer result cache and a concurrent request loop, and exposes the
whole thing in-process or over a local socket.

>>> from repro.api import DSRConfig, ReachQuery, open_engine
>>> from repro.graph import generators
>>> from repro.service import DSRService
>>> graph = generators.social_graph(300, avg_degree=5, seed=1)
>>> service = DSRService(open_engine(graph, DSRConfig(num_partitions=3)))
>>> response = service.handle(ReachQuery((0, 1), (100, 200)))
>>> service.close()

The wire-form :class:`QueryRequest` is a thin serialisation of the same
:class:`~repro.api.query.ReachQuery` object, so in-process callers can submit
either.
"""

from repro.service.aio import DSRAsyncClient, DSRAsyncServer, RateLimitedError, TokenBucket
from repro.service.cache import CacheStats, ResultCache
from repro.service.planner import QueryPlan, QueryPlanner
from repro.service.protocol import (
    BINARY_FRAMING_MIN_VERSION,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ErrorResponse,
    OversizedFrameError,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    SnapshotRequest,
    SnapshotResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
)
from repro.service.server import (
    DSRClient,
    DSRService,
    DSRSocketServer,
    ServiceMetrics,
    ServiceOverloadedError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "BINARY_FRAMING_MIN_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_LINE_BYTES",
    "OversizedFrameError",
    "DSRAsyncClient",
    "DSRAsyncServer",
    "RateLimitedError",
    "TokenBucket",
    "CacheStats",
    "ResultCache",
    "QueryPlan",
    "QueryPlanner",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "UpdateRequest",
    "UpdateResponse",
    "StatsRequest",
    "StatsResponse",
    "SnapshotRequest",
    "SnapshotResponse",
    "MetricsRequest",
    "MetricsResponse",
    "ErrorResponse",
    "DSRClient",
    "DSRService",
    "DSRSocketServer",
    "ServiceMetrics",
    "ServiceOverloadedError",
]
