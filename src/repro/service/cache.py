"""LRU + TTL result cache for the DSR query service.

Entries map a normalised query key — ``(frozenset(S), frozenset(T))`` — to
the exact answer ``{(s, t)}``.  The processing direction is deliberately not
part of the key: forward and backward evaluation compute the same exact pair
set, so either may serve a hit for the other.

Staleness under updates
-----------------------
The cache registers itself on the engine's
:class:`~repro.core.updates.IncrementalMaintainer` via
:meth:`ResultCache.attach`:

* every applied update is observed *immediately* (before the batched flush),
  and any **structural** update — one that marks partitions dirty — clears
  the cache.  Invalidation cannot wait for the flush: the engine only folds
  pending updates into the index right before its next query, so a cache that
  invalidated at flush time would happily serve stale answers in between.
* **non-structural** updates (inserting an edge inside an existing SCC,
  re-inserting a present edge, deleting an absent edge, adding an isolated
  vertex) provably cannot change any reachable pair, so cached entries
  survive them — this is the precise part of the invalidation.
* flushes are also observed, which covers maintainers driven directly (not
  through the engine) and keeps a per-flush counter for introspection.

Whole-cache invalidation (rather than per-partition) is the *correct*
granularity for reachability: refreshing partition ``p`` can change the
answer of a pair ``(s, t)`` whose endpoints live in two other partitions
whenever some path threads through ``p``, so no sound per-entry filter exists
short of re-evaluating the query.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.updates import FlushResult, IncrementalMaintainer, UpdateResult

CacheKey = Tuple[FrozenSet[int], FrozenSet[int]]


@dataclass
class CacheStats:
    """Cumulative cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    flushes_observed: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "flushes_observed": self.flushes_observed,
        }


@dataclass
class _Entry:
    pairs: FrozenSet[Tuple[int, int]]
    stored_at: float = 0.0


class ResultCache:
    """Thread-safe LRU cache with optional TTL and update-driven invalidation."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.stats = CacheStats()
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._maintainers: list = []

    # ------------------------------------------------------------------ #
    # key handling
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(sources: Iterable[int], targets: Iterable[int]) -> CacheKey:
        """Normalise a query into its cache key (order-insensitive)."""
        return frozenset(sources), frozenset(targets)

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Optional[Set[Tuple[int, int]]]:
        """Return the cached answer or ``None`` (counts a hit/miss)."""
        key = self.make_key(sources, targets)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return set(entry.pairs)

    def put(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        pairs: Iterable[Tuple[int, int]],
    ) -> None:
        """Store the exact answer of ``S ⇝ T``."""
        key = self.make_key(sources, targets)
        with self._lock:
            self._entries[key] = _Entry(
                pairs=frozenset(pairs), stored_at=self._clock()
            )
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate_all(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def attach(self, maintainer: IncrementalMaintainer) -> None:
        """Subscribe to a maintainer's update/flush stream."""
        maintainer.add_update_listener(self._on_update)
        maintainer.add_flush_listener(self._on_flush)
        self._maintainers.append(maintainer)

    def detach(self) -> None:
        """Unsubscribe from every attached maintainer."""
        for maintainer in self._maintainers:
            maintainer.remove_listener(self._on_update)
            maintainer.remove_listener(self._on_flush)
        self._maintainers.clear()

    def _on_update(self, result: UpdateResult) -> None:
        if result.structural_change:
            self.invalidate_all()

    def _on_flush(self, result: FlushResult) -> None:
        with self._lock:
            self.stats.flushes_observed += 1
        # Structural updates already cleared the cache when they were applied;
        # a flush of previously recorded dirt must still never leave entries
        # behind (e.g. a maintainer attached after updates were queued).
        if result.refreshed_partitions:
            self.invalidate_all()


__all__ = ["CacheKey", "CacheStats", "ResultCache"]
