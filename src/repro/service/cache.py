"""LRU + TTL result cache for the DSR query service.

Entries map a normalised query key — ``(frozenset(S), frozenset(T))`` — to
the exact answer ``{(s, t)}``.  The processing direction is deliberately not
part of the key: forward and backward evaluation compute the same exact pair
set, so either may serve a hit for the other.

Staleness under updates
-----------------------
The cache registers itself on the engine's
:class:`~repro.core.updates.IncrementalMaintainer` via
:meth:`ResultCache.attach`, in one of two modes matching the engine's
``epoch_flush`` mode:

* ``invalidate_on="update"`` (for ``epoch_flush="inline"`` engines): every
  applied update is observed *immediately* (before the batched flush), and
  any **structural** update — one that marks partitions dirty — clears the
  cache.  Invalidation cannot wait for the flush here: an inline engine only
  folds pending updates into the index right before its next query, so a
  cache that invalidated at flush time would happily serve stale answers in
  between.
* ``invalidate_on="flush"`` (for ``epoch_flush="background"`` engines):
  structural updates do **not** clear the cache — the engine keeps serving
  the published epoch ``N`` until the background flush swaps in ``N+1``, so
  epoch-``N`` entries stay exactly right until that swap.  The flush
  listener invalidates at the swap.  Entries are additionally tagged with
  the epoch they were computed at, and lookups carry the caller's current
  epoch: an entry from another epoch is rejected (and evicted) even if a
  flush listener ever fired late — invalidation is *by epoch*, not by
  update.
* **non-structural** updates (inserting an edge inside an existing SCC,
  re-inserting a present edge, deleting an absent edge, adding an isolated
  vertex) provably cannot change any reachable pair, so cached entries
  survive them in both modes — this is the precise part of the invalidation.

Whole-cache invalidation (rather than per-partition) is the *correct*
granularity for reachability: refreshing partition ``p`` can change the
answer of a pair ``(s, t)`` whose endpoints live in two other partitions
whenever some path threads through ``p``, so no sound per-entry filter exists
short of re-evaluating the query.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.updates import FlushResult, IncrementalMaintainer, UpdateResult

CacheKey = Tuple[FrozenSet[int], FrozenSet[int]]


@dataclass
class CacheStats:
    """Cumulative cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    flushes_observed: int = 0
    epoch_rejections: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "flushes_observed": self.flushes_observed,
            "epoch_rejections": self.epoch_rejections,
        }


@dataclass
class _Entry:
    pairs: FrozenSet[Tuple[int, int]]
    stored_at: float = 0.0
    #: Index epoch the answer was computed at (-1 when untagged).
    epoch: int = -1


class ResultCache:
    """Thread-safe LRU cache with optional TTL and update-driven invalidation."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.stats = CacheStats()
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._maintainers: list = []
        self._invalidate_on = "update"

    # ------------------------------------------------------------------ #
    # key handling
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(sources: Iterable[int], targets: Iterable[int]) -> CacheKey:
        """Normalise a query into its cache key (order-insensitive)."""
        return frozenset(sources), frozenset(targets)

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        epoch: Optional[int] = None,
    ) -> Optional[Set[Tuple[int, int]]]:
        """Return the cached answer or ``None`` (counts a hit/miss).

        With ``epoch`` given, an entry tagged with a *different* epoch is
        rejected and evicted — the epoch-precise half of invalidation-by-
        epoch (untagged entries are rejected too: they cannot prove their
        version).
        """
        key = self.make_key(sources, targets)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            if epoch is not None and entry.epoch != epoch:
                del self._entries[key]
                self.stats.epoch_rejections += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return set(entry.pairs)

    def put(
        self,
        sources: Iterable[int],
        targets: Iterable[int],
        pairs: Iterable[Tuple[int, int]],
        epoch: int = -1,
    ) -> None:
        """Store the exact answer of ``S ⇝ T`` (tagged with its epoch)."""
        key = self.make_key(sources, targets)
        with self._lock:
            self._entries[key] = _Entry(
                pairs=frozenset(pairs), stored_at=self._clock(), epoch=epoch
            )
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate_all(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def attach(
        self, maintainer: IncrementalMaintainer, invalidate_on: str = "update"
    ) -> None:
        """Subscribe to a maintainer's update/flush stream.

        ``invalidate_on="update"`` clears on every structural update (inline
        engines); ``"flush"`` clears only at the epoch swap (background
        engines, where the published epoch stays correct until the swap).
        """
        if invalidate_on not in ("update", "flush"):
            raise ValueError(
                f"invalidate_on must be 'update' or 'flush', got {invalidate_on!r}"
            )
        self._invalidate_on = invalidate_on
        maintainer.add_update_listener(self._on_update)
        maintainer.add_flush_listener(self._on_flush)
        self._maintainers.append(maintainer)

    def detach(self) -> None:
        """Unsubscribe from every attached maintainer."""
        for maintainer in self._maintainers:
            maintainer.remove_listener(self._on_update)
            maintainer.remove_listener(self._on_flush)
        self._maintainers.clear()

    def _on_update(self, result: UpdateResult) -> None:
        if self._invalidate_on == "flush":
            # Epoch mode: the published epoch is still the one every entry
            # was computed at — entries stay valid until the swap.
            return
        if result.structural_change:
            self.invalidate_all()

    def _on_flush(self, result: FlushResult) -> None:
        with self._lock:
            self.stats.flushes_observed += 1
        # Structural updates already cleared the cache when they were applied;
        # a flush of previously recorded dirt must still never leave entries
        # behind (e.g. a maintainer attached after updates were queued).
        if result.refreshed_partitions:
            self.invalidate_all()


__all__ = ["CacheKey", "CacheStats", "ResultCache"]
