"""Cost-based planning of DSR service queries.

The planner decides, per request, *how* a set-reachability query should hit
the engine:

* **Direction** (Section 3.3.2, "Forward vs. Backward Processing").  A
  forward query starts one local traversal per source and ships handles of
  partitions that hold unresolved targets; a backward query mirrors this from
  the target side.  The planner weighs both using the query cardinalities and
  the index's boundary statistics: partitions with many forward entry handles
  make forward traversals touch more virtual vertices, and symmetrically for
  backward entries.  The per-vertex traversal cost is scaled by the data
  graph's average degree, read from the cached CSR snapshot's degree
  statistics (:meth:`repro.graph.csr.CSRGraph.degree_stats`) rather than
  recomputed per query; planning runs outside the service's engine lock, so
  the planner never *builds* a snapshot and falls back to the graph's O(1)
  counters when none is cached.  The backward direction is only eligible
  when the engine was built with ``enable_backward=True``.

* **Batching.**  The one-round protocol evaluates ``S ⇝ T`` as a whole, and
  its local phases grow with ``|S|`` (traversal frontiers) while the answer
  can grow with ``|S| · |T|``.  For very large requests the planner splits the
  bigger side of the query into chunks so that no single engine call exceeds
  ``max_batch_pairs`` source×target pairs, keeping per-call latency (and the
  window during which the engine lock is held) bounded.  Splitting only one
  side keeps the decomposition lossless::

      S ⇝ T  =  ⋃_i (S_i ⇝ T)        (S = ⊎ S_i)

  so :meth:`QueryPlanner.merge` is a plain union of the per-batch pair sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api.query import ReachQuery, as_reach_query
from repro.core.engine import DSREngine
from repro.core.query import choose_representation
from repro.reachability.factory import strategy_class


@dataclass(frozen=True)
class QueryPlan:
    """An executable plan for one set-reachability request."""

    direction: str  # "forward" or "backward"
    batches: Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...]
    estimated_cost: float
    reason: str
    split_axis: str = "none"  # "none" | "sources" | "targets"
    #: Evaluation currency every batch runs in ("bits" | "sets"): packed
    #: rows whenever there is batching to amortise, plain sets for tiny
    #: queries over very sparse graphs — resolved once per plan from the
    #: cached CSR degree statistics (see
    #: :func:`repro.core.query.choose_representation`).
    representation: str = "bits"
    #: The index epoch whose statistics informed this plan (-1 pre-build).
    #: Planning never takes the engine lock: the cost model reads one
    #: published epoch state, so a concurrent background flush can at worst
    #: make a plan one epoch stale — never torn.
    epoch: int = -1

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def is_empty(self) -> bool:
        return not self.batches


class QueryPlanner:
    """Chooses direction and batching for queries against one engine."""

    def __init__(self, engine: DSREngine, max_batch_pairs: int = 4096) -> None:
        if max_batch_pairs < 1:
            raise ValueError("max_batch_pairs must be positive")
        self.engine = engine
        self.max_batch_pairs = max_batch_pairs
        #: (epoch_state, stats) memo for :meth:`_entry_stats`.  Epoch states
        #: are immutable, so identity is a sound cache key; a cost-routed
        #: fleet prices every query on several planners, which made the
        #: per-call summary walk the dominant routing cost.
        self._entry_stats_memo: Optional[Tuple[Any, Tuple[float, float]]] = None

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def _entry_stats(self) -> Tuple[float, float]:
        """Average forward/backward entry handles per partition.

        Computed once per published epoch state and memoised: the walk over
        every partition summary is far too slow to repeat on each of the
        thousands of cost estimates a router issues between epoch swaps.
        A racing recompute is benign — both threads derive the same value
        from the same immutable state.
        """
        index = self.engine.index
        if not index.is_built:
            return 1.0, 1.0
        state = index.current_state()
        memo = self._entry_stats_memo
        if memo is not None and memo[0] is state:
            return memo[1]
        summaries = state.summaries
        forward = sum(len(s.forward_handles()) for s in summaries.values())
        backward = sum(len(s.backward_handles()) for s in summaries.values())
        num_partitions = max(1, index.num_partitions)
        stats = (forward / num_partitions, backward / num_partitions)
        self._entry_stats_memo = (state, stats)
        return stats

    def _edge_factor(self) -> float:
        """Per-frontier-vertex expansion cost, from CSR degree statistics.

        Read off the data graph's cached :class:`~repro.graph.csr.CSRGraph`
        snapshot when one is live: the stats are computed once per snapshot
        and reused for every planned query, instead of being recomputed per
        request.  Planning runs *outside* the service's engine lock, so this
        deliberately never **builds** a snapshot (building iterates the live
        adjacency and would race concurrent updates); with no snapshot
        cached it falls back to the graph's O(1) vertex/edge counters, which
        yield the same average degree.
        """
        snapshot = self.engine.graph.csr_if_cached()
        if snapshot is not None:
            return 1.0 + snapshot.degree_stats()["avg_degree"]
        num_vertices = self.engine.graph.num_vertices
        if not num_vertices:
            return 1.0
        return 1.0 + self.engine.graph.num_edges / num_vertices

    def estimate_cost(self, num_sources: int, num_targets: int, direction: str) -> float:
        """Relative cost of one engine call in the given direction.

        The dominant step-1 work is one multi-source traversal from the query
        side it starts at: per frontier vertex it pays the graph's average
        degree (CSR degree statistics), over a compound graph whose
        virtual-vertex count scales with the entry handles of the *opposite*
        side's partitions; the step-3 work scales with the other cardinality.
        """
        forward_entries, backward_entries = self._entry_stats()
        edge_factor = self._edge_factor()
        if direction == "backward":
            return num_targets * (1.0 + forward_entries) * edge_factor + num_sources
        return num_sources * (1.0 + backward_entries) * edge_factor + num_targets

    def estimate_query_cost(
        self, query: ReachQuery, local_index: Optional[str] = None
    ) -> float:
        """Modeled cost of answering ``query`` on this planner's engine.

        This is the **stable public cost entry point** for routers and
        tuners — the one place where the planner's traversal model meets the
        local strategy's :meth:`~repro.reachability.base.ReachabilityIndex.local_cost_factor`.

        Contract
        --------
        * Input is any valid :class:`~repro.api.query.ReachQuery`; only its
          source/target cardinalities and ``direction`` influence the cost
          (never the concrete vertex ids, ``tenant`` or cache options).
        * ``local_index`` overrides the engine's current local strategy with
          a *hypothetical* one by registry name, so a tuner can cost a
          rebuild candidate without building it.  ``None`` costs the
          strategy the engine is running now.
        * Returns a finite non-negative float in the planner's relative
          cost currency.  Callers must only compare these values against
          other ``estimate_query_cost`` results (same or different
          ``local_index``); the absolute scale carries no unit.
        * Deterministic: identical engine statistics and arguments yield
          an identical cost, so argmin routing over replicas is stable.
        * Lock-free: reads only published epoch statistics and the cached
          CSR degree stats, never building snapshots or taking engine
          locks (safe on a serving hot path).

        A ``direction="auto"`` query is costed at the cheapest eligible
        direction, mirroring what :meth:`plan` would pick.
        """
        num_sources = len(set(query.sources))
        num_targets = len(set(query.targets))
        if not num_sources or not num_targets:
            return 0.0
        if local_index is None:
            local_index = getattr(self.engine.index, "local_strategy", "dfs")
        strategy = strategy_class(local_index)
        avg_degree = self._edge_factor() - 1.0

        def directed(direction: str) -> float:
            num_roots = num_targets if direction == "backward" else num_sources
            factor = strategy.local_cost_factor(num_roots, avg_degree)
            return self.estimate_cost(num_sources, num_targets, direction) * factor

        if query.direction == "auto":
            directions = ["forward"]
            if self.engine.enable_backward and self.engine.is_built:
                directions.append("backward")
            return min(directed(direction) for direction in directions)
        return directed(query.direction)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(
        self,
        sources: "ReachQuery | Iterable[int]",
        targets: Optional[Iterable[int]] = None,
        direction: Optional[str] = None,
    ) -> QueryPlan:
        """Build a :class:`QueryPlan` for ``S ⇝ T``.

        Accepts either one :class:`~repro.api.query.ReachQuery` or the legacy
        positional ``(sources, targets, direction)`` spread.  A query's
        ``max_batch_pairs`` overrides the planner-wide batching budget for
        that request.
        """
        query = as_reach_query(sources, targets, direction)
        direction = query.direction
        max_batch_pairs = query.max_batch_pairs or self.max_batch_pairs
        source_list = sorted(set(query.sources))
        target_list = sorted(set(query.targets))
        plan_epoch = self.engine.index.epoch
        if not source_list or not target_list:
            return QueryPlan(
                direction="forward",
                batches=(),
                estimated_cost=0.0,
                reason="empty source or target set",
                epoch=plan_epoch,
            )

        backward_available = self.engine.enable_backward and self.engine.is_built
        if direction == "auto":
            forward_cost = self.estimate_cost(
                len(source_list), len(target_list), "forward"
            )
            if backward_available:
                backward_cost = self.estimate_cost(
                    len(source_list), len(target_list), "backward"
                )
                if backward_cost < forward_cost:
                    chosen, cost = "backward", backward_cost
                    reason = (
                        f"auto: backward {backward_cost:.1f} < forward {forward_cost:.1f}"
                    )
                else:
                    chosen, cost = "forward", forward_cost
                    reason = (
                        f"auto: forward {forward_cost:.1f} <= backward {backward_cost:.1f}"
                    )
            else:
                chosen, cost = "forward", forward_cost
                reason = "auto: backward index not available"
        else:
            chosen = direction
            cost = self.estimate_cost(len(source_list), len(target_list), chosen)
            reason = f"explicit {chosen} request"

        batches, split_axis = self._split(source_list, target_list, max_batch_pairs)
        return QueryPlan(
            direction=chosen,
            batches=batches,
            estimated_cost=cost,
            reason=reason,
            split_axis=split_axis,
            epoch=plan_epoch,
            representation=self._choose_representation(
                query, len(source_list), len(target_list)
            ),
        )

    def _choose_representation(
        self, query: ReachQuery, num_sources: int, num_targets: int
    ) -> str:
        """Resolve the query's evaluation currency for every batch.

        An explicit ``query.representation`` wins; ``"auto"`` consults the
        shared heuristic with the average degree off the cached CSR
        snapshot's statistics (``_edge_factor`` is ``1 + avg_degree`` and
        never builds a snapshot — planning stays lock-free).
        """
        if query.representation != "auto":
            return query.representation
        return choose_representation(
            num_sources, num_targets, self._edge_factor() - 1.0
        )

    def _split(
        self, sources: List[int], targets: List[int], max_batch_pairs: int
    ) -> Tuple[Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...], str]:
        """Chunk the larger query side so every batch fits the pair budget."""
        if len(sources) * len(targets) <= max_batch_pairs:
            return ((tuple(sources), tuple(targets)),), "none"
        if len(sources) >= len(targets):
            fixed, split, axis = targets, sources, "sources"
        else:
            fixed, split, axis = sources, targets, "targets"
        chunk = max(1, max_batch_pairs // len(fixed))
        batches = []
        for start in range(0, len(split), chunk):
            piece = tuple(split[start : start + chunk])
            if axis == "sources":
                batches.append((piece, tuple(fixed)))
            else:
                batches.append((tuple(fixed), piece))
        return tuple(batches), axis

    # ------------------------------------------------------------------ #
    # result merging
    # ------------------------------------------------------------------ #
    @staticmethod
    def merge(results: Sequence[Set[Tuple[int, int]]]) -> Set[Tuple[int, int]]:
        """Union the per-batch pair sets back into one answer."""
        merged: Set[Tuple[int, int]] = set()
        for pairs in results:
            merged |= pairs
        return merged


__all__ = ["QueryPlan", "QueryPlanner"]
