"""Abstract interface shared by all centralized reachability strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Optional, Set

from repro.graph.digraph import DiGraph
from repro.reachability.packed import VertexRank


class ReachabilityIndex(ABC):
    """A (possibly indexed) reachability oracle over a single directed graph.

    Implementations answer single-pair queries (:meth:`reachable`) and
    set-reachability queries (:meth:`set_reachability`), which is exactly the
    ``localSetReachability(.)`` abstraction of Algorithms 1 and 2.

    The index is built eagerly in ``__init__`` (or lazily on first use for
    index-free strategies); :meth:`rebuild` must be called after the
    underlying graph has been mutated.
    """

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @abstractmethod
    def reachable(self, source: int, target: int) -> bool:
        """Return ``True`` iff ``source ⇝ target``."""

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        """Return ``{source: {targets reachable from source}}``.

        The default implementation loops over :meth:`reachable`; concrete
        strategies override it with something smarter (shared traversals,
        interval pruning, ...).  Sources and targets may overlap; a vertex is
        always considered reachable from itself.
        """
        target_set = set(targets)
        result: Dict[int, Set[int]] = {}
        for source in sources:
            reached = {
                target for target in target_set if self.reachable(source, target)
            }
            result[source] = reached
        return result

    def set_reachability_bits(
        self,
        sources: Iterable[int],
        rank: VertexRank,
        target_mask: Optional[int] = None,
    ) -> Dict[int, int]:
        """Return ``{source: packed row}`` over the given vertex-rank numbering.

        Bit ``r`` of a returned row is set iff the vertex ``rank.ids[r]`` is
        reachable from the source.  ``target_mask`` optionally restricts the
        rows to the masked target vertices (an ``AND`` against the mask);
        ``None`` means "all vertices of the rank".

        This default implementation bridges through :meth:`set_reachability`
        (unpack the mask, query sets, re-pack), so every index-style strategy
        (ferrari, grail, closure) participates in the packed pipeline without
        changes; the traversal strategies override it with native kernels
        that never materialise the intermediate sets.
        """
        if target_mask is None:
            targets: Iterable[int] = rank.ids
        else:
            targets = rank.unpack(target_mask)
        sets = self.set_reachability(sources, targets)
        return {source: rank.pack(reached) for source, reached in sets.items()}

    def reachable_pairs(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Set[tuple]:
        """Convenience wrapper returning the flat ``{(s, t)}`` pair set."""
        pairs = set()
        for source, reached in self.set_reachability(sources, targets).items():
            for target in reached:
                pairs.add((source, target))
        return pairs

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    @classmethod
    def local_cost_factor(cls, num_roots: int, avg_degree: float) -> float:
        """Modeled cost of this strategy *relative to* one root-by-root DFS.

        The service planner's baseline traversal cost is
        ``num_roots × (1 + entries) × (1 + avg_degree)`` — one full frontier
        expansion per traversal root.  Each strategy scales that term by a
        multiplicative factor in ``(0, 1]`` describing how much of the
        per-root traversal it actually performs (shared frontiers, interval
        pruning, precomputed closures...).  The factors are deterministic,
        depend only on the query cardinality and the graph's average degree,
        and only their *relative order* matters: they let a router compare
        heterogeneous replicas with one cost currency.

        The base class is the plain per-root traversal: factor ``1.0``.
        """
        del num_roots, avg_degree
        return 1.0

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def rebuild(self) -> None:
        """Rebuild any internal structures after the graph changed.

        Index-free strategies do not need to do anything.
        """

    def index_size(self) -> int:
        """A rough count of index entries (0 for index-free strategies)."""
        return 0

    @property
    def name(self) -> str:
        return type(self).__name__
