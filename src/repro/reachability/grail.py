"""GRAIL-style reachability index (Yildirim et al. [36]).

GRAIL assigns each vertex ``d`` independent random interval labels obtained
from randomised post-order DFS traversals of the condensed DAG.  Containment
of *all* labels is a necessary condition for reachability, so label
disjointness gives immediate negative answers; positives are confirmed by a
pruned online search.

The paper lists GRAIL among the centralized indexes that could be plugged into
the DSR framework; we include it as an additional local strategy for the
ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.reachability.base import ReachabilityIndex


class GrailIndex(ReachabilityIndex):
    """Randomised interval labelling with online search confirmation."""

    def __init__(self, graph: DiGraph, num_labels: int = 3, seed: int = 0) -> None:
        super().__init__(graph)
        self.num_labels = max(1, num_labels)
        self.seed = seed
        self._build()

    @classmethod
    def local_cost_factor(cls, num_roots: int, avg_degree: float) -> float:
        """Randomised labels only filter; positives re-run a pruned search.

        GRAIL's containment test rejects quickly but must confirm positives
        with an online search, so its modeled fraction of a DFS sits above
        FERRARI's deterministic intervals.
        """
        del num_roots, avg_degree
        return 0.5

    def _build(self) -> None:
        self._dag, self._vertex_to_component = condense(self.graph)
        self._labels: List[Dict[int, Tuple[int, int]]] = []
        rng = random.Random(self.seed)
        for _ in range(self.num_labels):
            self._labels.append(self._one_labelling(rng))

    def _one_labelling(self, rng: random.Random) -> Dict[int, Tuple[int, int]]:
        """One randomised post-order labelling label[v] = (min_rank, rank)."""
        rank = 0
        labels: Dict[int, Tuple[int, int]] = {}
        visited: Set[int] = set()
        roots = [v for v in self._dag.vertices() if self._dag.in_degree(v) == 0]
        others = [v for v in self._dag.vertices() if v not in roots]
        rng.shuffle(roots)
        rng.shuffle(others)
        for start in roots + others:
            if start in visited:
                continue
            # Iterative randomised DFS with post-order ranks.
            stack: List[Tuple[int, bool]] = [(start, False)]
            while stack:
                vertex, expanded = stack.pop()
                if expanded:
                    rank += 1
                    children_min = [labels[c][0] for c in self._dag.successors(vertex) if c in labels]
                    low = min(children_min + [rank])
                    labels[vertex] = (low, rank)
                    continue
                if vertex in visited:
                    continue
                visited.add(vertex)
                stack.append((vertex, True))
                children = list(self._dag.successors(vertex))
                rng.shuffle(children)
                for child in children:
                    if child not in visited:
                        stack.append((child, False))
        return labels

    def rebuild(self) -> None:
        self._build()

    def index_size(self) -> int:
        return sum(len(labelling) for labelling in self._labels)

    def _maybe_reachable(self, source_comp: int, target_comp: int) -> bool:
        """Necessary condition: target label contained in source label, all labellings."""
        for labelling in self._labels:
            s_low, s_high = labelling[source_comp]
            t_low, t_high = labelling[target_comp]
            if not (s_low <= t_low and t_high <= s_high):
                return False
        return True

    def reachable(self, source: int, target: int) -> bool:
        if not self.graph.has_vertex(source) or not self.graph.has_vertex(target):
            return False
        source_comp = self._vertex_to_component[source]
        target_comp = self._vertex_to_component[target]
        if source_comp == target_comp:
            return True
        if not self._maybe_reachable(source_comp, target_comp):
            return False
        # Pruned online DFS over the DAG.
        visited = {source_comp}
        stack = [source_comp]
        while stack:
            current = stack.pop()
            for succ in self._dag.successors(current):
                if succ in visited:
                    continue
                if succ == target_comp:
                    return True
                visited.add(succ)
                if self._maybe_reachable(succ, target_comp):
                    stack.append(succ)
        return False

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        target_list = list(targets)
        result: Dict[int, Set[int]] = {}
        for source in sources:
            result[source] = {
                target
                for target in target_list
                if self.graph.has_vertex(source)
                and self.graph.has_vertex(target)
                and self.reachable(source, target)
            }
        return result
