"""Bitset multi-source BFS kernel over CSR snapshots.

This is the batched traversal kernel behind every ``localSetReachability(.)``
hot path: instead of running ``W`` separate BFS traversals for a ``W``-source
set-reachability query, one pass propagates a *W-wide frontier* — every dense
vertex carries one arbitrary-width Python ``int`` whose bit ``p`` means
"source number ``p`` reaches this vertex".  A BFS level ORs the parent's bits
into each successor and only re-enqueues vertices that gained *new* bits, so
each edge is relaxed a handful of times for the whole batch instead of once
per source (the memoisation the paper observes for large query sets, Fig. 7;
cf. Then et al. [30]).

The kernel operates on the flat ``array('q')`` adjacency of a
:class:`~repro.graph.csr.CSRGraph` (see :mod:`repro.graph.csr`) with the
per-vertex bitsets in a dense Python list — no per-visit hashing, no set
boxing.  :class:`~repro.reachability.msbfs.MultiSourceBFS` is a thin
:class:`~repro.reachability.base.ReachabilityIndex` wrapper around it; the
partition summaries, the compound-graph expansion in the DSR engine and the
``benchmarks/bench_csr_kernel.py`` micro-benchmark all call into this module
through that wrapper or directly.

Batches wider than ``batch_size`` sources are split so the per-vertex ints
stay small; 512-bit ints are still cheap to OR/AND in CPython.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.graph.csr import CSRGraph
from repro.reachability import kernels as _kernels
from repro.reachability.packed import iter_bits

#: Default number of sources propagated per kernel pass.
DEFAULT_BATCH_SIZE = 512


def propagate(csr: CSRGraph, seed_bits: Dict[int, int], reverse: bool = False) -> List[int]:
    """Run the bitset frontier to fixpoint and return the ``seen`` table.

    ``seed_bits`` maps *dense* vertex indices to their initial bitsets;
    the returned list maps every dense vertex index to the OR of all source
    bits that reach it (seeds included).  With ``reverse=True`` the frontier
    follows in-edges instead (useful for backward processing).

    The sweep dispatches to the vectorized backend when one is selected
    (see :mod:`repro.reachability.kernels`); both backends return
    byte-identical tables.
    """
    if _kernels.kernel_backend() == "numpy":
        return _kernels.np_propagate(csr, seed_bits, reverse=reverse)
    seen = [0] * csr.num_vertices
    if reverse:
        offsets, targets = csr.rev_offsets, csr.rev_targets
    else:
        offsets, targets = csr.fwd_offsets, csr.fwd_targets

    frontier: Dict[int, int] = {}
    for vertex, bits in seed_bits.items():
        seen[vertex] |= bits
        frontier[vertex] = frontier.get(vertex, 0) | bits

    while frontier:
        next_frontier: Dict[int, int] = {}
        for vertex, bits in frontier.items():
            for succ in targets[offsets[vertex] : offsets[vertex + 1]]:
                new_bits = bits & ~seen[succ]
                if new_bits:
                    seen[succ] |= new_bits
                    if succ in next_frontier:
                        next_frontier[succ] |= new_bits
                    else:
                        next_frontier[succ] = new_bits
        frontier = next_frontier
    return seen


def set_reachability(
    csr: CSRGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Dict[int, Set[int]]:
    """Batched ``{source: {targets reachable from source}}`` over a snapshot.

    Sources and targets are *original* vertex ids; ids absent from the
    snapshot yield empty result sets (sources) or are ignored (targets).
    A source that is also a target reaches itself.  Sources are processed in
    chunks of ``batch_size`` bits per pass.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    source_list = list(sources)
    result: Dict[int, Set[int]] = {source: set() for source in source_list}
    dense_targets = [
        (target, csr.index_of(target)) for target in set(targets) if csr.has_vertex(target)
    ]
    valid_sources = [source for source in source_list if csr.has_vertex(source)]
    if not valid_sources or not dense_targets:
        return result

    for start in range(0, len(valid_sources), batch_size):
        batch = valid_sources[start : start + batch_size]
        _run_batch(csr, batch, dense_targets, result)
    return result


def _run_batch(
    csr: CSRGraph,
    batch: Sequence[int],
    dense_targets: Sequence[tuple],
    result: Dict[int, Set[int]],
) -> None:
    """Propagate one ≤``batch_size``-source chunk and harvest target bits."""
    seeds: Dict[int, int] = {}
    for position, source in enumerate(batch):
        index = csr.index_of(source)
        seeds[index] = seeds.get(index, 0) | (1 << position)
    seen = propagate(csr, seeds)
    for position, source in enumerate(batch):
        bit = 1 << position
        reached = result[source]
        for target, target_index in dense_targets:
            if seen[target_index] & bit:
                reached.add(target)


def set_reachability_rows(
    csr: CSRGraph,
    sources: Iterable[int],
    target_mask: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Dict[int, int]:
    """Packed ``{source: row}`` over the snapshot's dense vertex numbering.

    Bit ``r`` of a row is set iff dense vertex ``r`` is reachable from the
    source; ``target_mask`` restricts the rows to the masked dense indices
    (``None`` keeps every reached vertex).  This is the bits-native sibling
    of :func:`set_reachability`: the same W-wide frontier propagates once
    per batch, but the harvest walks only the *reached* target bits —
    ``O(hits)`` big-int work — instead of probing every (source, target)
    combination, which is what makes covering all ``B`` boundary vertices
    cost ``ceil(B/W)`` kernel passes rather than per-source scans.

    Sources are original vertex ids; ids absent from the snapshot yield
    all-zero rows.  A source covered by the mask always reaches itself.
    """
    if _kernels.kernel_backend() == "numpy":
        return _kernels.np_set_reachability_rows(csr, sources, target_mask, batch_size)
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    source_list = list(sources)
    rows: Dict[int, int] = {source: 0 for source in source_list}
    valid_sources = [source for source in source_list if csr.has_vertex(source)]
    if not valid_sources or target_mask == 0:
        return rows

    # Per-source rows accumulate as bit marks in bytearrays and become ints
    # with one from_bytes each at the end — a growing-bigint ``row |= bit``
    # per hit would cost O(hits · width/64) in reallocation copies.
    width = (csr.num_vertices + 7) >> 3
    buffers: Dict[int, bytearray] = {}
    for start in range(0, len(valid_sources), batch_size):
        batch = valid_sources[start : start + batch_size]
        seeds: Dict[int, int] = {}
        for position, source in enumerate(batch):
            index = csr.index_of(source)
            seeds[index] = seeds.get(index, 0) | (1 << position)
        seen = propagate(csr, seeds)
        # Harvest: per reached target index, distribute its source bits.
        if target_mask is None:
            indices: Iterable[int] = range(csr.num_vertices)
        else:
            indices = iter_bits(target_mask)
        for target_index in indices:
            bits = seen[target_index]
            if not bits:
                continue
            byte_index = target_index >> 3
            byte_bit = 1 << (target_index & 7)
            for position in iter_bits(bits):
                source = batch[position]
                buffer = buffers.get(source)
                if buffer is None:
                    buffer = bytearray(width)
                    buffers[source] = buffer
                buffer[byte_index] |= byte_bit
    for source, buffer in buffers.items():
        rows[source] = int.from_bytes(buffer, "little")
    return rows


def reachable(csr: CSRGraph, source: int, target: int) -> bool:
    """Single-pair convenience wrapper over :func:`set_reachability`."""
    return target in set_reachability(csr, [source], [target]).get(source, set())
