"""Fully materialised transitive closure.

The classical O(1)-query / O(|V|^2)-space end of the reachability trade-off
spectrum discussed in Section 5.  It is practical only for small graphs but is
invaluable as the ground truth for the test suite and as the fastest local
strategy for tiny partitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.graph.traversal import topological_order
from repro.reachability.base import ReachabilityIndex


class TransitiveClosureIndex(ReachabilityIndex):
    """Materialises reachable component sets over the condensed DAG."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._build()

    @classmethod
    def local_cost_factor(cls, num_roots: int, avg_degree: float) -> float:
        """Per-root set membership over the materialised closure.

        A query never expands a frontier — each root costs a component
        lookup plus target membership tests — so the modeled fraction of a
        DFS is a small constant.  It stays above the large-root-set MS-BFS
        amortisation (``1/64`` per root) because the per-root constant never
        shrinks with the root count: closure wins small, repeated queries;
        shared-frontier sweeps win huge root sets.
        """
        del num_roots, avg_degree
        return 0.12

    def _build(self) -> None:
        self._dag, self._vertex_to_component = condense(self.graph)
        order = topological_order(self._dag)
        # closure[c] = set of components reachable from c (including c).
        self._closure: Dict[int, Set[int]] = {}
        for component in reversed(order):
            reach = {component}
            for succ in self._dag.successors(component):
                reach |= self._closure[succ]
            self._closure[component] = reach

    def rebuild(self) -> None:
        self._build()

    def index_size(self) -> int:
        return sum(len(reach) for reach in self._closure.values())

    def reachable(self, source: int, target: int) -> bool:
        if not self.graph.has_vertex(source) or not self.graph.has_vertex(target):
            return False
        source_comp = self._vertex_to_component[source]
        target_comp = self._vertex_to_component[target]
        return target_comp in self._closure[source_comp]

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        target_list = list(targets)
        result: Dict[int, Set[int]] = {}
        for source in sources:
            if not self.graph.has_vertex(source):
                result[source] = set()
                continue
            source_comp = self._vertex_to_component[source]
            closure = self._closure[source_comp]
            result[source] = {
                target
                for target in target_list
                if self.graph.has_vertex(target)
                and self._vertex_to_component[target] in closure
            }
        return result
