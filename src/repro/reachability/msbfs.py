"""Multi-source BFS (Then et al. [30], the "DSR-MSBFS" local strategy).

All sources are traversed simultaneously: every vertex carries a bitset of the
sources that have reached it so far, and a BFS level only propagates the
*newly arrived* source bits.  Each edge is therefore relaxed at most a handful
of times for the whole source set instead of once per source, which is the
memoisation benefit the paper observes for large query sets (Figure 7).

Since PR 3 the actual propagation lives in the CSR kernel
(:mod:`repro.reachability.bitset_msbfs`): this class fetches the graph's
cached :class:`~repro.graph.csr.CSRGraph` snapshot (rebuilt lazily after
mutations — see :meth:`repro.graph.digraph.DiGraph.csr`) and runs the dense
bitset frontier over its flat adjacency arrays, instead of walking the
``dict``/``set`` adjacency one vertex at a time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.graph.digraph import DiGraph
from repro.reachability import bitset_msbfs
from repro.reachability.base import ReachabilityIndex
from repro.reachability.packed import VertexRank


class MultiSourceBFS(ReachabilityIndex):
    """Shared-frontier multi-source BFS over the graph's CSR snapshot."""

    def __init__(self, graph: DiGraph, batch_size: int = 512) -> None:
        super().__init__(graph)
        self.batch_size = batch_size

    @classmethod
    def local_cost_factor(cls, num_roots: int, avg_degree: float) -> float:
        """Shared frontiers amortise roots in machine words.

        One bitset sweep serves up to 64 roots at once, so the per-root
        traversal cost collapses to ``ceil(roots / 64) / roots`` of a DFS:
        ~1.0 for a single root (a full frontier sweep regardless), ~1/64th
        for large root sets.
        """
        del avg_degree
        if num_roots <= 0:
            return 1.0
        return -(-num_roots // 64) / num_roots

    def reachable(self, source: int, target: int) -> bool:
        reached = self.set_reachability([source], [target])
        return target in reached.get(source, set())

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        return bitset_msbfs.set_reachability(
            self.graph.csr(), list(sources), targets, batch_size=self.batch_size
        )

    def set_reachability_bits(
        self,
        sources: Iterable[int],
        rank: VertexRank,
        target_mask: Optional[int] = None,
    ) -> Dict[int, int]:
        """Packed rows straight off the bitset kernel (no set boxing).

        Native only when the caller's rank numbering *is* the snapshot's
        dense numbering (the epoch pipeline always passes exactly that);
        a foreign numbering falls back to the generic set↔bits bridge.
        """
        csr = self.graph.csr()
        if rank.ids != csr.ids:
            return super().set_reachability_bits(sources, rank, target_mask)
        return bitset_msbfs.set_reachability_rows(
            csr, list(sources), target_mask, batch_size=self.batch_size
        )
