"""Multi-source BFS (Then et al. [30], the "DSR-MSBFS" local strategy).

All sources are traversed simultaneously: every vertex carries a bitset of the
sources that have reached it so far, and a BFS level only propagates the
*newly arrived* source bits.  Each edge is therefore relaxed at most a handful
of times for the whole source set instead of once per source, which is the
memoisation benefit the paper observes for large query sets (Figure 7).

Python integers are used as arbitrary-width bitsets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex


class MultiSourceBFS(ReachabilityIndex):
    """Shared-frontier multi-source BFS."""

    def __init__(self, graph: DiGraph, batch_size: int = 512) -> None:
        super().__init__(graph)
        self.batch_size = batch_size

    def reachable(self, source: int, target: int) -> bool:
        reached = self.set_reachability([source], [target])
        return target in reached.get(source, set())

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        source_list = [s for s in sources]
        target_set = set(targets)
        result: Dict[int, Set[int]] = {source: set() for source in source_list}
        valid_sources = [s for s in source_list if self.graph.has_vertex(s)]
        for start in range(0, len(valid_sources), self.batch_size):
            batch = valid_sources[start : start + self.batch_size]
            self._run_batch(batch, target_set, result)
        return result

    def _run_batch(
        self,
        batch: List[int],
        target_set: Set[int],
        result: Dict[int, Set[int]],
    ) -> None:
        bit_of = {source: 1 << position for position, source in enumerate(batch)}
        # seen[v] = bitset of batch sources that reach v.
        seen: Dict[int, int] = {}
        frontier: Dict[int, int] = {}
        for source in batch:
            seen[source] = seen.get(source, 0) | bit_of[source]
            frontier[source] = frontier.get(source, 0) | bit_of[source]

        while frontier:
            next_frontier: Dict[int, int] = {}
            for vertex, bits in frontier.items():
                for succ in self.graph.successors(vertex):
                    new_bits = bits & ~seen.get(succ, 0)
                    if new_bits:
                        seen[succ] = seen.get(succ, 0) | new_bits
                        next_frontier[succ] = next_frontier.get(succ, 0) | new_bits
            frontier = next_frontier

        for position, source in enumerate(batch):
            bit = 1 << position
            reached = {
                vertex
                for vertex in target_set
                if seen.get(vertex, 0) & bit
            }
            result[source] |= reached
