"""Centralized reachability indexes.

These are the pluggable ``localSetReachability(.)`` strategies of Section 3.3:
any of them can be used by the DSR engine for its per-partition computations.

* :class:`~repro.reachability.dfs.DFSReachability` — plain DFS, no index
  ("DSR-DFS" in the paper).
* :class:`~repro.reachability.msbfs.MultiSourceBFS` — shared-frontier
  multi-source BFS of Then et al. [30] ("DSR-MSBFS").
* :class:`~repro.reachability.ferrari.FerrariIndex` — FERRARI-style interval
  index [28] ("DSR-FERRARI").
* :class:`~repro.reachability.grail.GrailIndex` — GRAIL-style random interval
  labels [36] (extra local strategy, used for ablations).
* :class:`~repro.reachability.transitive_closure.TransitiveClosureIndex` —
  fully materialised closure; the ground truth used by the test suite.
"""

from repro.reachability.base import ReachabilityIndex
from repro.reachability.dfs import DFSReachability
from repro.reachability.factory import available_strategies, make_reachability_index
from repro.reachability.ferrari import FerrariIndex
from repro.reachability.grail import GrailIndex
from repro.reachability.msbfs import MultiSourceBFS
from repro.reachability.transitive_closure import TransitiveClosureIndex

__all__ = [
    "ReachabilityIndex",
    "DFSReachability",
    "MultiSourceBFS",
    "FerrariIndex",
    "GrailIndex",
    "TransitiveClosureIndex",
    "make_reachability_index",
    "available_strategies",
]
