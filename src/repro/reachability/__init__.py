"""Centralized reachability strategies — the ``localSetReachability(.)`` layer.

Contract: answers single-pair and set-reachability questions over ONE graph,
with no knowledge of partitions, clusters or queries-as-objects.  Every
strategy implements :class:`~repro.reachability.base.ReachabilityIndex` and
is constructed by name through :func:`make_reachability_index`; the
traversal-based strategies run on the graph's cached CSR snapshot, so an
instance stays correct across graph updates (see ``docs/ARCHITECTURE.md``).

Strategies (Section 3.3 of the paper):

* :class:`~repro.reachability.dfs.DFSReachability` — per-source DFS over CSR
  arrays, no index ("DSR-DFS").
* :class:`~repro.reachability.msbfs.MultiSourceBFS` — shared-frontier
  multi-source BFS ("DSR-MSBFS"), a thin wrapper over the bitset kernel in
  :mod:`repro.reachability.bitset_msbfs` (also registered as ``"bitset"``).
* :class:`~repro.reachability.ferrari.FerrariIndex` — FERRARI-style interval
  index [28] ("DSR-FERRARI").
* :class:`~repro.reachability.grail.GrailIndex` — GRAIL-style random interval
  labels [36] (extra local strategy, used for ablations).
* :class:`~repro.reachability.transitive_closure.TransitiveClosureIndex` —
  fully materialised closure; the ground truth used by the test suite.
"""

from repro.reachability import bitset_msbfs, packed
from repro.reachability.base import ReachabilityIndex
from repro.reachability.packed import VertexRank
from repro.reachability.dfs import DFSReachability
from repro.reachability.factory import available_strategies, make_reachability_index
from repro.reachability.ferrari import FerrariIndex
from repro.reachability.grail import GrailIndex
from repro.reachability.msbfs import MultiSourceBFS
from repro.reachability.transitive_closure import TransitiveClosureIndex

__all__ = [
    "ReachabilityIndex",
    "DFSReachability",
    "MultiSourceBFS",
    "FerrariIndex",
    "GrailIndex",
    "TransitiveClosureIndex",
    "VertexRank",
    "bitset_msbfs",
    "packed",
    "make_reachability_index",
    "available_strategies",
]
